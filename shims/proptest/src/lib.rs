//! Offline shim for the `proptest` crate.
//!
//! This build environment cannot reach crates.io, so the workspace carries a
//! minimal, dependency-free reimplementation of the proptest API surface its
//! test suites actually use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * range strategies for the primitive numeric types (`a..b`, `a..=b`);
//! * tuple strategies up to arity 10;
//! * [`collection::vec`], [`option::of`], [`any`], [`Just`];
//! * `&str` regex-subset strategies for random strings;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Generation is **deterministic**: every test function derives its RNG seed
//! from its own name, so failures reproduce without a persistence file.
//! There is no shrinking — the failing case is reported as-is. That loses
//! minimality but keeps the dependency surface at zero, which is the
//! constraint this environment imposes.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit RNG (splitmix64) used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds from test names.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references generate like the strategy itself.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-width range: any value.
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span as u64) as i128) as $t
                }
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // Occasionally hit the endpoints exactly.
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * rng.unit_f64(),
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (Range { start: self.start as f64, end: self.end as f64 }).generate(rng) as f32
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`] for primitive types.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `&str` regex-subset strategies: generates strings matching the pattern.
///
/// Supported syntax: literal characters, `\`-escapes, character classes
/// `[a-z0-9-]`, groups `(...)`, alternation `|`, and the quantifiers `{n}`,
/// `{m,n}`, `?`, `*`, `+` (unbounded quantifiers cap at 8 repeats).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_gen::parse(self);
        let mut out = String::new();
        regex_gen::emit(&ast, rng, &mut out);
        out
    }
}

mod regex_gen {
    use super::TestRng;

    #[derive(Debug)]
    pub enum Node {
        /// Sequence of nodes.
        Seq(Vec<Node>),
        /// One of several alternatives.
        Alt(Vec<Node>),
        /// A single literal character.
        Lit(char),
        /// A set of candidate characters (expanded from a class).
        Class(Vec<char>),
        /// Repetition of a node between `min` and `max` times.
        Repeat(Box<Node>, usize, usize),
    }

    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, used) = parse_alt(&chars, 0);
        assert!(used == chars.len(), "unsupported regex pattern: {pattern:?}");
        node
    }

    fn parse_alt(chars: &[char], mut i: usize) -> (Node, usize) {
        let mut alts = Vec::new();
        let (first, ni) = parse_seq(chars, i);
        alts.push(first);
        i = ni;
        while i < chars.len() && chars[i] == '|' {
            let (next, ni) = parse_seq(chars, i + 1);
            alts.push(next);
            i = ni;
        }
        if alts.len() == 1 {
            (alts.pop().unwrap(), i)
        } else {
            (Node::Alt(alts), i)
        }
    }

    fn parse_seq(chars: &[char], mut i: usize) -> (Node, usize) {
        let mut seq = Vec::new();
        while i < chars.len() && chars[i] != '|' && chars[i] != ')' {
            let (atom, ni) = parse_atom(chars, i);
            i = ni;
            let (node, ni) = parse_quantifier(atom, chars, i);
            i = ni;
            seq.push(node);
        }
        (Node::Seq(seq), i)
    }

    fn parse_atom(chars: &[char], i: usize) -> (Node, usize) {
        match chars[i] {
            '(' => {
                let (inner, ni) = parse_alt(chars, i + 1);
                assert!(ni < chars.len() && chars[ni] == ')', "unclosed group");
                (inner, ni + 1)
            }
            '[' => parse_class(chars, i + 1),
            '\\' => (Node::Lit(chars[i + 1]), i + 2),
            '.' => (Node::Class(('a'..='z').chain('0'..='9').collect()), i + 1),
            c => (Node::Lit(c), i + 1),
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Node, usize) {
        let mut set = Vec::new();
        while chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                for x in c..=hi {
                    set.push(x);
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        (Node::Class(set), i + 1)
    }

    fn parse_quantifier(node: Node, chars: &[char], i: usize) -> (Node, usize) {
        if i >= chars.len() {
            return (node, i);
        }
        match chars[i] {
            '?' => (Node::Repeat(Box::new(node), 0, 1), i + 1),
            '*' => (Node::Repeat(Box::new(node), 0, 8), i + 1),
            '+' => (Node::Repeat(Box::new(node), 1, 8), i + 1),
            '{' => {
                let close = (i..chars.len()).find(|&j| chars[j] == '}').expect("unclosed {}");
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => {
                        let lo = a.trim().parse().expect("bad quantifier");
                        let hi =
                            if b.trim().is_empty() { lo + 8 } else { b.trim().parse().unwrap() };
                        (lo, hi)
                    }
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (Node::Repeat(Box::new(node), lo, hi), close + 1)
            }
            _ => (node, i),
        }
    }

    pub fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(nodes) => {
                for n in nodes {
                    emit(n, rng, out);
                }
            }
            Node::Alt(alts) => {
                let pick = rng.below(alts.len() as u64) as usize;
                emit(&alts[pick], rng, out);
            }
            Node::Lit(c) => out.push(*c),
            Node::Class(set) => {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Asserts a condition inside a `proptest!` case, reporting the formatted
/// message on failure. Without shrinking, this is `assert!` plus context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` deterministic random
/// inputs (seeded from the test's name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let x = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (-2.5f64..4.0).generate(&mut rng);
            assert!((-2.5..4.0).contains(&y));
            let z = (1u16..=256).generate(&mut rng);
            assert!((1..=256).contains(&z));
        }
    }

    #[test]
    fn vec_and_option_strategies() {
        let mut rng = crate::TestRng::new(9);
        let s = prop::collection::vec(prop::option::of(0.0f64..1.0), 1..20);
        let mut saw_none = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            saw_none |= v.iter().any(|o| o.is_none());
        }
        assert!(saw_none, "option::of never produced None");
    }

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = crate::TestRng::new(11);
        let pat = "[a-z0-9-]{0,20}(\\.[a-z]{2,8}){0,3}";
        for _ in 0..200 {
            let s = pat.generate(&mut rng);
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-.".contains(c)),
                "unexpected char in {s:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let a: Vec<_> = (0..10).map(|i| strat.generate(&mut crate::TestRng::new(i))).collect();
        let b: Vec<_> = (0..10).map(|i| strat.generate(&mut crate::TestRng::new(i))).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, ys in prop::collection::vec(any::<u64>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
