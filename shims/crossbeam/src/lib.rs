//! Offline shim for the `crossbeam` crate.
//!
//! Only the `crossbeam::thread::scope` API the workspace uses is provided,
//! implemented over `std::thread::scope` (stable since Rust 1.63). The one
//! behavioural difference: a panicking child thread propagates its panic when
//! the scope exits instead of surfacing as `Err` — callers here `.expect()`
//! the result anyway, so the failure mode is the same abort-with-message.

#![forbid(unsafe_code)]

/// Scoped threads (shim over [`std::thread::scope`]).
pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, allowing
        /// nested spawns, exactly like crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_borrowing_threads() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        super::thread::scope(|s| {
            for &x in &data {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(x, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
