//! Offline shim for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with genuine wall-clock measurement:
//! a warm-up phase sizes the iteration count, then several sample batches
//! are timed and the per-iteration mean, median-of-batches, and min are
//! reported. There are no plots, no statistical regression tests, and no
//! saved baselines; output goes to stdout in a stable parseable format:
//!
//! ```text
//! bench-name              time: [min 1.234 µs  med 1.301 µs  mean 1.310 µs]  (N iters)
//! ```
//!
//! CLI behaviour: a non-flag argument filters benchmarks by substring
//! (like Criterion); `--test` (passed by `cargo test --benches`) runs each
//! benchmark body once without measurement; other flags are ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(400);
/// Number of timed batches per benchmark.
const BATCHES: usize = 10;

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| name.contains(f))
    }

    /// Benchmarks `f` under `id` (a string or [`BenchmarkId`]).
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().full_name;
        if self.enabled(&name) {
            run_one(&name, self.test_mode, &mut f);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    fn qualified(&self, id: BenchmarkId) -> String {
        format!("{}/{}", self.group, id.full_name)
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = self.qualified(id.into());
        if self.criterion.enabled(&name) {
            run_one(&name, self.criterion.test_mode, &mut f);
        }
        self
    }

    /// Benchmarks `f` with an input value threaded through.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let name = self.qualified(id.into());
        if self.criterion.enabled(&name) {
            run_one(&name, self.criterion.test_mode, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full_name: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { full_name: format!("{name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { full_name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full_name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full_name: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] measures the routine.
pub struct Bencher {
    mode: Mode,
    report: Option<Report>,
}

enum Mode {
    /// Run the routine once, unmeasured (`--test`).
    Smoke,
    /// Measure properly.
    Measure,
}

struct Report {
    iters_per_batch: u64,
    min: Duration,
    median: Duration,
    mean: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure => {
                // Warm-up: find an iteration count filling the target time.
                let mut iters: u64 = 1;
                let per_iter = loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(50) || iters >= (1 << 30) {
                        break elapsed / iters.max(1) as u32;
                    }
                    iters = iters.saturating_mul(4);
                };
                let batch_iters = (TARGET_SAMPLE_TIME.as_nanos() / BATCHES as u128)
                    .checked_div(per_iter.as_nanos().max(1))
                    .unwrap_or(1)
                    .max(1) as u64;

                let mut samples: Vec<Duration> = (0..BATCHES)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..batch_iters {
                            black_box(routine());
                        }
                        start.elapsed() / batch_iters as u32
                    })
                    .collect();
                samples.sort();
                let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
                self.report = Some(Report {
                    iters_per_batch: batch_iters,
                    min: samples[0],
                    median: samples[samples.len() / 2],
                    mean,
                });
            }
        }
    }
}

fn run_one(name: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mode: if test_mode { Mode::Smoke } else { Mode::Measure }, report: None };
    f(&mut b);
    match b.report {
        Some(r) => println!(
            "{name:<44} time: [min {}  med {}  mean {}]  ({} iters/batch)",
            fmt_dur(r.min),
            fmt_dur(r.median),
            fmt_dur(r.mean),
            r.iters_per_batch,
        ),
        None => println!("{name:<44} ok (smoke)"),
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_smoke_runs_once() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut count = 0;
        c.bench_function("counted", |b| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("match-me".into()), test_mode: true };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
        c.bench_function("match-me/42", |b| {
            b.iter(|| ran = true);
        });
        assert!(ran);
    }

    #[test]
    fn group_qualifies_names_and_measures() {
        let mut c = Criterion { filter: None, test_mode: false };
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("fft", 2048).full_name, "fft/2048");
        assert_eq!(BenchmarkId::from_parameter(7).full_name, "7");
        assert_eq!(BenchmarkId::from("plain").full_name, "plain");
    }
}
