//! Offline shim for the `parking_lot` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! supplies the minimal API surface it actually uses — `Mutex` and `RwLock`
//! with non-poisoning, non-`Result` lock methods — implemented over
//! `std::sync`. Poisoned locks are recovered (`into_inner`) rather than
//! propagated, matching parking_lot's behaviour of not having poisoning at
//! all.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (shim over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (shim over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        let l = RwLock::new(1);
        let r = l.read();
        assert!(l.try_read().is_some());
        drop(r);
    }
}
