//! When does the Internet sleep? Phase vs longitude (§5.2, Fig. 14).
//!
//! The phase of the daily FFT component tells *when* a block's activity
//! peaks relative to measurement start. Plotted against longitude, diurnal
//! blocks line up with their timezones. This example measures a world,
//! unrolls the phases, prints a coarse density plot and the correlation,
//! and shows the phase→longitude predictor.
//!
//! Run with: `cargo run --release --example phase_longitude [blocks]`

use sleepwatch::core::{analyze_world, AnalysisConfig};
use sleepwatch::simnet::{World, WorldConfig};
use sleepwatch::stats::DensityGrid;
use std::f64::consts::PI;

fn main() {
    let blocks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let days = 14.0;

    let world = World::generate(WorldConfig {
        seed: 3,
        num_blocks: blocks,
        span_days: days,
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, days);
    println!("analyzing {blocks} blocks…");
    let analysis = analyze_world(&world, &cfg, 4, None);

    let pairs = analysis.phase_longitude_pairs(true);
    println!("{} diurnal, geolocated blocks with a phase\n", pairs.len());

    // Coarse ASCII density: longitude on x, unrolled phase on y.
    let mut grid = DensityGrid::new(-180.0, 180.0, 72, -PI - PI, PI + PI, 24);
    for &(lon, phase) in &pairs {
        grid.add(lon, phase);
    }
    const SHADES: &[u8] = b" .:+#@";
    println!("unrolled phase (y) vs longitude (x):");
    for iy in (0..grid.ny()).rev() {
        let mut line = String::new();
        for ix in 0..grid.nx() {
            let c = grid.count(ix, iy);
            let max = grid.max_count().max(1);
            let lvl = if c == 0 {
                0
            } else {
                (((c as f64).ln_1p() / (max as f64).ln_1p()) * (SHADES.len() - 1) as f64).ceil()
                    as usize
            };
            line.push(SHADES[lvl.min(SHADES.len() - 1)] as char);
        }
        println!("|{line}|");
    }

    let r_strict = analysis.phase_longitude_correlation(false).unwrap_or(0.0);
    let r_relaxed = analysis.phase_longitude_correlation(true).unwrap_or(0.0);
    println!("\ncorrelation (strict diurnal):  r = {r_strict:.3}  (paper: 0.835)");
    println!("correlation (relaxed diurnal): r = {r_relaxed:.3}  (paper: 0.763)");

    println!("\nphase → longitude predictor (Fig. 14c):");
    println!("{:>12} {:>12} {:>10} {:>8}", "phase (rad)", "mean lon", "σ lon", "blocks");
    for (phase, mean_lon, sd, n) in analysis.phase_longitude_predictor(12) {
        println!("{phase:>12.2} {mean_lon:>12.1} {sd:>10.1} {n:>8}");
    }
}
