//! Validate the lightweight estimators against full-survey ground truth.
//!
//! Generates a small survey world (every address probed every 11 minutes,
//! like the paper's `S51w`), runs the adaptive pipeline beside it, and
//! reports estimator quality and the diurnal-detection confusion matrix —
//! a miniature of the paper's §3.1–3.2 validation.
//!
//! Run with: `cargo run --release --example survey_validation [blocks]`

use sleepwatch::availability::cleaning::clean_series;
use sleepwatch::core::analyze_series;
use sleepwatch::probing::{survey_block, TrinocularConfig, TrinocularProber};
use sleepwatch::simnet::{World, WorldConfig, ROUND_SECONDS, S51W_START};
use sleepwatch::spectral::DiurnalConfig;
use sleepwatch::stats::pearson;

fn main() {
    let blocks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(150);
    let rounds = 1_833u64; // two weeks of 11-minute rounds

    let world = World::generate(WorldConfig {
        seed: 7,
        num_blocks: blocks,
        start_time: S51W_START,
        span_days: 14.0,
        ..Default::default()
    });
    println!("surveying {blocks} blocks × {rounds} rounds (this probes every address)…");

    let mut all_truth = Vec::new();
    let mut all_est = Vec::new();
    let mut confusion = [[0usize; 2]; 2];

    for block in &world.blocks {
        // Ground truth: the full survey.
        let survey = survey_block(block, world.cfg.start_time, rounds);
        let truth = survey.availability_series();

        // The lightweight path: adaptive probing + EWMA estimation.
        let mut prober = TrinocularProber::new(block, TrinocularConfig::default());
        let run = prober.run(block, world.cfg.start_time, rounds);
        let (a_s, _) = clean_series(
            &run.a_short_observations(),
            rounds as usize,
            world.cfg.start_time,
            ROUND_SECONDS,
        );

        let n = truth.len().min(a_s.len());
        // Subsample the correlation cloud to keep memory flat.
        for i in (0..n).step_by(5) {
            all_truth.push(truth[i]);
            all_est.push(a_s[i]);
        }

        let cfg = DiurnalConfig::default();
        let (truth_rep, _) = analyze_series(&truth[..n], &cfg);
        let (pred_rep, _) = analyze_series(&a_s[..n], &cfg);
        confusion[truth_rep.class.is_strict() as usize][pred_rep.class.is_strict() as usize] += 1;
    }

    let corr = pearson(&all_truth, &all_est).unwrap_or(0.0);
    let (tn, fp, fneg, tp) = (confusion[0][0], confusion[0][1], confusion[1][0], confusion[1][1]);
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let accuracy = (tp + tn) as f64 / blocks as f64;

    println!("\ncorrelation(Âs, A) over all rounds : {corr:.4}  (paper: 0.957)");
    println!("\ndiurnal confusion (truth × prediction):");
    println!("  d→d̂ {tp:>5}   d→n̂ {fneg:>5}");
    println!("  n→d̂ {fp:>5}   n→n̂ {tn:>5}");
    println!(
        "precision {:.1}%  accuracy {:.1}%  (paper: 82.5% / 91.0%)",
        100.0 * precision,
        100.0 * accuracy
    );
}
