//! Quickstart: detect diurnal behaviour in a single /24 block.
//!
//! Builds a block whose addresses follow a working-day schedule, probes it
//! for two weeks at the paper's 11-minute cadence with Trinocular-style
//! adaptive probing, and prints what the pipeline concluded.
//!
//! Run with: `cargo run --release --example quickstart`

use sleepwatch::core::{analyze_block, AnalysisConfig};
use sleepwatch::simnet::{BlockProfile, BlockSpec};

fn main() {
    // A block with 40 always-on hosts (servers, routers) and 160 hosts
    // that are up ~9 hours a day starting around 08:00 local (UTC+2),
    // with half-hour day-to-day jitter.
    let block = BlockSpec::bare(
        1,
        2024,
        BlockProfile {
            n_stable: 40,
            n_diurnal: 160,
            stable_avail: 0.92,
            diurnal_avail: 0.85,
            onset_hours: 8.0,
            onset_spread: 2.0,
            duration_hours: 9.0,
            duration_spread: 1.5,
            sigma_start: 0.5,
            sigma_duration: 0.5,
            utc_offset_hours: 2.0,
        },
    );

    // Probe for 14 days from midnight UTC and run the full §2 pipeline:
    // adaptive probing → Âs estimation → cleaning → FFT → classification.
    let cfg = AnalysisConfig::over_days(0, 14.0);
    let analysis = analyze_block(&block, &cfg);

    println!("block #{}", analysis.block_id);
    println!("  rounds observed      : {}", analysis.run.records.len());
    println!("  probes sent          : {}", analysis.run.total_probes);
    println!("  probes/hour          : {:.1}", analysis.run.probes_per_hour());
    println!("  mean Âs              : {:.3}", analysis.mean_a_short);
    println!("  diurnal class        : {:?}", analysis.diurnal.class);
    println!("  fundamental bin      : {}", analysis.diurnal.fundamental_bin);
    println!("  dominance ratio      : {:.2}", analysis.diurnal.dominance_ratio());
    if let Some(phase) = analysis.diurnal.phase {
        println!("  phase                : {phase:.3} rad");
    }
    println!(
        "  stationary           : {} ({:+.2} addr/day)",
        analysis.trend.stationary, analysis.trend.addresses_per_day
    );

    assert!(analysis.diurnal.class.is_diurnal(), "a 160/200 diurnal block must be detected");
    println!(
        "\nThe block sleeps at night — detected from ~{:.0} probes/hour.",
        analysis.run.probes_per_hour()
    );
}
