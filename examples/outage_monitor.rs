//! Outage monitoring: the system sleepwatch's estimators were built for.
//!
//! Bootstraps a prober from a census (discovering which addresses to walk,
//! like the real Trinocular), injects an outage, and shows detection —
//! plus the diurnal failure mode that motivated the paper: a block that
//! "sleeps" at night can look like an outage to a prober that assumes
//! stationary availability.
//!
//! Run with: `cargo run --release --example outage_monitor`

use sleepwatch::probing::{run_census, CensusConfig, TrinocularConfig, TrinocularProber};
use sleepwatch::simnet::{BlockProfile, BlockSpec, ROUND_SECONDS};

fn main() {
    // --- A healthy block that suffers a 4-hour outage on day 3 ---
    let mut block = BlockSpec::bare(1, 99, BlockProfile::always_on(120, 0.85));
    let outage_start = 3 * 131 + 40; // round index
    block.outage = Some((
        outage_start * ROUND_SECONDS,
        (outage_start + 22) * ROUND_SECONDS, // ~4 hours
    ));

    // Bootstrap exactly like the real system: census first.
    let census_cfg = CensusConfig::default();
    let census = run_census(&block, 0, &census_cfg);
    println!(
        "census discovered {} ever-active addresses, historical A ≈ {:.2}",
        census.discovered(),
        census.hist_avail
    );

    let mut prober =
        TrinocularProber::from_census(&block, &census, &census_cfg, TrinocularConfig::default())
            .expect("block is analyzable");
    let run = prober.run(&block, 0, 7 * 131);

    println!(
        "\nweek of monitoring ({} probes, {:.1}/hour):",
        run.total_probes,
        run.probes_per_hour()
    );
    for o in &run.outages {
        let end = o.end_round.map(|e| e.to_string()).unwrap_or_else(|| "ongoing".into());
        println!("  outage: rounds {}..{} (injected at {})", o.start_round, end, outage_start);
    }
    assert!(!run.outages.is_empty(), "the injected outage must be found");

    // --- The diurnal failure mode ---
    let night_block = BlockSpec::bare(
        2,
        99,
        BlockProfile {
            n_stable: 6, // barely any always-on core
            n_diurnal: 180,
            stable_avail: 0.8,
            diurnal_avail: 0.9,
            onset_hours: 8.0,
            onset_spread: 1.5,
            duration_hours: 10.0,
            duration_spread: 1.0,
            sigma_start: 0.5,
            sigma_duration: 0.5,
            utc_offset_hours: 0.0,
        },
    );
    let census2 = run_census(&night_block, 0, &census_cfg);
    let mut prober2 = TrinocularProber::from_census(
        &night_block,
        &census2,
        &census_cfg,
        TrinocularConfig::default(),
    )
    .expect("analyzable");
    let run2 = prober2.run(&night_block, 0, 7 * 131);

    println!(
        "\ndiurnal block with a thin always-on core: {} apparent 'outages' in one week",
        run2.outages.len()
    );
    for o in run2.outages.iter().take(5) {
        let hour = (o.start_round * ROUND_SECONDS % 86_400) / 3_600;
        println!("  down at round {} (~{:02}:00 UTC)", o.start_round, hour);
    }
    println!(
        "\nThese night-time false alarms are exactly why the paper separates\n\
         *diurnal* blocks from *down* blocks before interpreting outages."
    );
}
