//! Where does the Internet sleep?
//!
//! Generates a synthetic world, runs the full measurement pipeline over
//! every block, and prints the country league table (Table-3 style), the
//! region view (Table 4), and the GDP correlation with an ANOVA screen
//! (§5.1, §5.4) — entirely from measured quantities.
//!
//! Run with: `cargo run --release --example where_sleeps [blocks]`

use sleepwatch::core::{analyze_world, AnalysisConfig};
use sleepwatch::probing::TrinocularConfig;
use sleepwatch::simnet::{World, WorldConfig};
use sleepwatch::stats::linfit;

fn main() {
    let blocks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1_500);
    let days = 14.0;

    let world = World::generate(WorldConfig {
        seed: 11,
        num_blocks: blocks,
        span_days: days,
        ..Default::default()
    });
    let mut cfg = AnalysisConfig::over_days(world.cfg.start_time, days);
    cfg.trinocular = TrinocularConfig::a12w();

    println!("analyzing {blocks} blocks over {days} days…");
    let analysis = analyze_world(&world, &cfg, 4, None);

    let (strict, strict_frac) = analysis.strict_fraction();
    println!("\nstrictly diurnal: {strict} blocks ({:.1}%)", 100.0 * strict_frac);

    let stats = analysis.country_stats(10);
    println!("\ntop countries by diurnal fraction (≥10 geolocated blocks):");
    println!("{:<6}{:>8}{:>10}{:>12}", "code", "blocks", "diurnal", "GDP (US$)");
    for s in stats.iter().take(12) {
        println!("{:<6}{:>8}{:>10.3}{:>12.0}", s.code, s.blocks, s.frac_diurnal, s.gdp);
    }
    if let Some(us) = stats.iter().find(|s| s.code == "US") {
        println!(
            "{:<6}{:>8}{:>10.3}{:>12.0}   (comparison)",
            us.code, us.blocks, us.frac_diurnal, us.gdp
        );
    }

    println!("\nby region (ascending):");
    for (region, n, frac) in analysis.region_stats() {
        println!("  {:<20} {:>6} blocks  {:>6.3}", region.name(), n, frac);
    }

    // The paper's headline correlation: GDP vs diurnalness.
    let xs: Vec<f64> = stats.iter().map(|s| s.gdp).collect();
    let ys: Vec<f64> = stats.iter().map(|s| s.frac_diurnal).collect();
    if let Some(fit) = linfit(&xs, &ys) {
        println!("\nGDP vs diurnal fraction: r = {:.3} (paper: −0.526)", fit.r);
    }

    // And the Table-5 single-factor ANOVA screen.
    let factors = analysis.anova_factors(5);
    println!("\nANOVA single-factor p-values over {} countries:", factors.countries);
    for i in 0..factors.factors.len() {
        let name = factors.factors[i].0;
        match factors.single_p(i) {
            Ok(p) => {
                let sig = if p < 0.05 { "  *significant*" } else { "" };
                println!("  {name:<16} p = {p:.3e}{sig}");
            }
            Err(e) => println!("  {name:<16} (unavailable: {e})"),
        }
    }
}
