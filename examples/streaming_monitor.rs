//! Operational monitoring: online diurnal detection over a live probe
//! stream, with the Goertzel pre-screen keeping per-round cost flat.
//!
//! Feeds three blocks round by round — one diurnal, one flat, one that
//! *becomes* diurnal mid-stream (an ISP turning on nightly pool shutdowns)
//! — and prints verdict changes as they happen.
//!
//! Run with: `cargo run --release --example streaming_monitor`

use sleepwatch::core::{OnlineConfig, OnlineDetector};
use sleepwatch::probing::{TrinocularConfig, TrinocularProber};
use sleepwatch::simnet::{BlockProfile, BlockSpec};
use sleepwatch::spectral::DiurnalClass;

fn diurnal_profile() -> BlockProfile {
    BlockProfile {
        n_stable: 40,
        n_diurnal: 160,
        stable_avail: 0.9,
        diurnal_avail: 0.85,
        onset_hours: 8.0,
        onset_spread: 2.0,
        duration_hours: 9.0,
        duration_spread: 1.0,
        sigma_start: 0.5,
        sigma_duration: 0.5,
        utc_offset_hours: 0.0,
    }
}

fn main() {
    let rounds_per_day = (86_400 / 660) as u64;
    let total_rounds = 21 * rounds_per_day; // three weeks

    // The mid-stream change: same addresses, but after day 10 the ISP
    // starts powering the pool down at night. Model as two specs probed in
    // sequence.
    let scenarios: Vec<(&str, Vec<(BlockSpec, u64)>)> = vec![
        ("always diurnal", vec![(BlockSpec::bare(1, 7, diurnal_profile()), total_rounds)]),
        (
            "always flat",
            vec![(BlockSpec::bare(2, 7, BlockProfile::always_on(150, 0.8)), total_rounds)],
        ),
        (
            "turns diurnal on day 10",
            vec![
                (BlockSpec::bare(3, 7, BlockProfile::always_on(200, 0.85)), 10 * rounds_per_day),
                (BlockSpec::bare(3, 7, diurnal_profile()), total_rounds - 10 * rounds_per_day),
            ],
        ),
    ];

    let cfg = OnlineConfig {
        window_rounds: (7 * rounds_per_day) as usize,
        // Two consecutive agreeing verdicts before announcing a change.
        hysteresis: 2,
        ..Default::default()
    };

    for (name, phases) in scenarios {
        println!("\n== {name} ==");
        let mut detector = OnlineDetector::new(cfg);
        let mut last = DiurnalClass::NonDiurnal;
        let mut round = 0u64;
        for (block, span) in &phases {
            let mut prober = TrinocularProber::new(block, TrinocularConfig::default());
            for _ in 0..*span {
                if let Some(rec) = prober.round(block, round, round * 660) {
                    let class = detector.push_value(rec.a_short);
                    if class != last {
                        println!(
                            "  day {:>5.1}: {:?} → {:?}",
                            round as f64 / rounds_per_day as f64,
                            last,
                            class
                        );
                        last = class;
                    }
                }
                round += 1;
            }
        }
        println!(
            "  final: {:?} after {} rounds ({} full FFTs, {} skipped by the screen)",
            detector.class(),
            detector.rounds_seen(),
            detector.classifications(),
            detector.screens_skipped()
        );
    }
}
