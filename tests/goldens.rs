//! Golden conformance for experiment reports: cheap, world-free
//! experiments render byte-identically against recorded goldens, so the
//! figure/table generators can't drift silently.

use sleepwatch_experiments::{run, Context, ExperimentOutput, Options};
use sleepwatch_testkit::assert_golden;

fn ctx() -> Context {
    Context::new(Options {
        seed: 5,
        scale: 0.01,
        threads: 2,
        out_dir: None,
        journal: None,
        ..Default::default()
    })
}

/// Canonical rendering of a full experiment output: report, headline
/// metrics and CSV in one file.
fn render(out: &ExperimentOutput) -> String {
    let mut s = String::new();
    s.push_str("== report ==\n");
    s.push_str(&out.report);
    if !out.report.ends_with('\n') {
        s.push('\n');
    }
    s.push_str("== headline ==\n");
    for (k, v) in &out.headline {
        s.push_str(&format!("{k}\t{v}\n"));
    }
    s.push_str("== csv ==\n");
    s.push_str(&out.csv);
    s
}

#[test]
fn fig1_report_matches_golden() {
    let out = run("fig1", &ctx()).expect("fig1 exists");
    assert_golden("experiment_fig1.txt", &render(&out));
}

#[test]
fn ablate_gaps_report_matches_golden() {
    let out = run("ablate-gaps", &ctx()).expect("ablate-gaps exists");
    assert_golden("experiment_ablate_gaps.txt", &render(&out));
}

/// Observability inertness: the same experiment reports reproduce
/// byte-for-byte with the metrics registry disabled. (Safe to toggle
/// concurrently — every test here is metrics-state independent.)
#[test]
fn experiment_goldens_hold_with_metrics_disabled() {
    sleepwatch::obs::set_global_enabled(false);
    let fig1 = run("fig1", &ctx()).expect("fig1 exists");
    let gaps = run("ablate-gaps", &ctx()).expect("ablate-gaps exists");
    sleepwatch::obs::set_global_enabled(true);
    assert_golden("experiment_fig1.txt", &render(&fig1));
    assert_golden("experiment_ablate_gaps.txt", &render(&gaps));
}
