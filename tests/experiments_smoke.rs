//! Smoke tests for the experiment harness: every table/figure generator
//! runs at a tiny scale and produces sane headline metrics.

use sleepwatch_experiments::{run, Context, Options, ALL_IDS};

fn tiny_ctx() -> Context {
    Context::new(Options { seed: 5, scale: 0.01, threads: 2, out_dir: None })
}

#[test]
fn every_experiment_id_is_runnable() {
    // Shared context so the expensive world/survey runs happen once.
    let ctx = tiny_ctx();
    for id in ALL_IDS {
        let out = run(id, &ctx).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(&out.id, id);
        assert!(!out.report.is_empty(), "{id}: empty report");
        assert!(!out.csv.is_empty(), "{id}: empty CSV");
        assert!(out.csv.lines().count() >= 2, "{id}: CSV has no data rows");
    }
}

#[test]
fn unknown_id_is_rejected() {
    let ctx = tiny_ctx();
    assert!(run("fig99", &ctx).is_none());
}

#[test]
fn world_metrics_are_in_range_at_small_scale() {
    let ctx = Context::new(Options { seed: 9, scale: 0.05, threads: 2, out_dir: None });
    let out = run("fig10", &ctx).unwrap();
    let strict: f64 = out.metric("strict_frac").unwrap().parse().unwrap();
    assert!((0.02..0.35).contains(&strict), "strict fraction {strict}");
    let stationary: f64 = out.metric("stationary_frac").unwrap().parse().unwrap();
    assert!(stationary > 0.6, "stationary {stationary}");

    let t3 = run("table3", &ctx).unwrap();
    assert_eq!(t3.metric("top_country"), Some("CN"), "China tops the league table");

    let t4 = run("table4", &ctx).unwrap();
    let most = t4.metric("most_diurnal").unwrap();
    assert!(
        ["Eastern Asia", "Central Asia", "W. Asia", "South America", "Southern Asia"]
            .contains(&most),
        "most diurnal region {most}"
    );
}

#[test]
fn gdp_correlation_is_negative() {
    let ctx = Context::new(Options { seed: 9, scale: 0.05, threads: 2, out_dir: None });
    let out = run("fig16", &ctx).unwrap();
    let r: f64 = out.metric("r").unwrap().parse().unwrap();
    assert!(r < -0.2, "GDP correlation should be clearly negative, got {r}");
}
