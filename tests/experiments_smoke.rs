//! Smoke tests for the experiment harness: every table/figure generator
//! runs at a tiny scale and produces sane headline metrics.

use sleepwatch_experiments::{run, Context, Options, ALL_IDS};

fn tiny_ctx() -> Context {
    Context::new(Options {
        seed: 5,
        scale: 0.01,
        threads: 2,
        out_dir: None,
        journal: None,
        ..Default::default()
    })
}

#[test]
fn every_experiment_id_is_runnable() {
    // Shared context so the expensive world/survey runs happen once.
    let ctx = tiny_ctx();
    for id in ALL_IDS {
        let out = run(id, &ctx).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(&out.id, id);
        assert!(!out.report.is_empty(), "{id}: empty report");
        assert!(!out.csv.is_empty(), "{id}: empty CSV");
        assert!(out.csv.lines().count() >= 2, "{id}: CSV has no data rows");
    }
}

#[test]
fn unknown_id_is_rejected() {
    let ctx = tiny_ctx();
    assert!(run("fig99", &ctx).is_none());
}

/// With `--format bin`, `ext-dataset` grows a binary twin: the seed-joined
/// container must land next to the TSV and decode back to byte-identical
/// TSV — the differential oracle, end to end through the harness.
#[test]
fn ext_dataset_binary_twin_matches_the_tsv() {
    use sleepwatch_experiments::extensions::write_dataset_bin;
    use sleepwatch_experiments::DatasetFormat;

    let dir = std::env::temp_dir().join(format!("swtest-extbin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ctx = Context::new(Options {
        seed: 5,
        scale: 0.01,
        threads: 2,
        out_dir: Some(dir.clone()),
        journal: None,
        format: DatasetFormat::Bin,
    });
    let out = run("ext-dataset", &ctx).expect("ext-dataset runs");
    let bin_path = write_dataset_bin(&ctx, &dir).expect("binary twin written");
    assert_eq!(bin_path, dir.join("ext-dataset.bin"));

    let bytes = std::fs::read(&bin_path).expect("binary artifact exists");
    assert!(bytes.len() < out.csv.len() / 4, "binary twin should be far smaller than the TSV");
    let (world, _) = ctx.world_run();
    let rows = sleepwatch::core::decode_dataset(&bytes, Some(&world.cfg)).expect("decodes");
    let mut tsv = Vec::new();
    sleepwatch::core::write_dataset_rows(&mut tsv, &rows).expect("serialize");
    assert_eq!(tsv, out.csv.as_bytes(), "decoded binary diverged from the TSV artifact");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn world_metrics_are_in_range_at_small_scale() {
    let ctx = Context::new(Options {
        seed: 9,
        scale: 0.05,
        threads: 2,
        out_dir: None,
        journal: None,
        ..Default::default()
    });
    let out = run("fig10", &ctx).unwrap();
    let strict: f64 = out.metric("strict_frac").unwrap().parse().unwrap();
    assert!((0.02..0.35).contains(&strict), "strict fraction {strict}");
    let stationary: f64 = out.metric("stationary_frac").unwrap().parse().unwrap();
    assert!(stationary > 0.6, "stationary {stationary}");

    let t3 = run("table3", &ctx).unwrap();
    assert_eq!(t3.metric("top_country"), Some("CN"), "China tops the league table");

    let t4 = run("table4", &ctx).unwrap();
    let most = t4.metric("most_diurnal").unwrap();
    assert!(
        ["Eastern Asia", "Central Asia", "W. Asia", "South America", "Southern Asia"]
            .contains(&most),
        "most diurnal region {most}"
    );
}

#[test]
fn gdp_correlation_is_negative() {
    let ctx = Context::new(Options {
        seed: 9,
        scale: 0.05,
        threads: 2,
        out_dir: None,
        journal: None,
        ..Default::default()
    });
    let out = run("fig16", &ctx).unwrap();
    let r: f64 = out.metric("r").unwrap().parse().unwrap();
    assert!(r < -0.2, "GDP correlation should be clearly negative, got {r}");
}

/// Parse a headline metric as a float, failing with the id and key.
fn m(out: &sleepwatch_experiments::ExperimentOutput, key: &str) -> f64 {
    out.metric(key)
        .unwrap_or_else(|| panic!("{}: missing headline metric {key}", out.id))
        .parse()
        .unwrap_or_else(|e| panic!("{}: metric {key} is not a number: {e}", out.id))
}

fn frac(out: &sleepwatch_experiments::ExperimentOutput, key: &str) -> f64 {
    let v = m(out, key);
    assert!((0.0..=1.0).contains(&v), "{}: {key} = {v} is not a fraction", out.id);
    v
}

#[test]
fn extension_metrics_are_sane_at_small_scale() {
    let ctx = tiny_ctx();

    // usc: the census policy excludes most wireless, detects dynamic
    // pools and pockets, and never flags servers as strictly diurnal.
    let usc = run("usc", &ctx).unwrap();
    assert!(m(&usc, "wireless_excluded") <= m(&usc, "wireless_total"));
    assert!(frac(&usc, "dynamic_detected_frac") >= 0.8, "dynamic pools go undetected");
    assert!(frac(&usc, "pocket_detected_frac") >= 0.8, "dynamic pockets go undetected");
    assert_eq!(m(&usc, "server_strict"), 0.0, "a server block classified strictly diurnal");

    // ext-orgs: clustering yields at least one named organization.
    let orgs = run("ext-orgs", &ctx).unwrap();
    assert!(m(&orgs, "orgs") >= 1.0);
    assert!(!orgs.metric("top_org").unwrap().is_empty());

    // ext-size: diurnal-aware population estimate with a bounded
    // relative uncertainty.
    let size = run("ext-size", &ctx).unwrap();
    assert!(m(&size, "mean_active") > 0.0);
    let ru = m(&size, "relative_uncertainty");
    assert!(ru.is_finite() && (0.0..1.0).contains(&ru), "relative uncertainty {ru}");

    // ext-timeofday: peaks land in local working hours (§5.2).
    let tod = run("ext-timeofday", &ctx).unwrap();
    assert!(frac(&tod, "daytime_share") >= 0.5, "most peaks should be in daytime");
    assert!(m(&tod, "blocks") > 0.0);

    // ext-outages: consensus over vantages removes false positives, so
    // its precision can only match or beat a single site.
    let out = run("ext-outages", &ctx).unwrap();
    let single_p = frac(&out, "single_precision");
    frac(&out, "single_recall");
    frac(&out, "consensus_recall");
    assert!(frac(&out, "consensus_precision") >= single_p, "consensus precision below single-site");

    // ext-dataset: a non-empty TSV with at least one byte per row.
    let ds = run("ext-dataset", &ctx).unwrap();
    let rows = m(&ds, "rows");
    assert!(rows > 0.0);
    assert!(m(&ds, "bytes") > rows, "dataset rows can't be sub-byte");

    // ext-weekend: detection never improves as the weekend signal
    // weakens, and weekly dips alone rarely read as daily-diurnal.
    let wk = run("ext-weekend", &ctx).unwrap();
    assert!(frac(&wk, "det@1") >= frac(&wk, "det@0.4"));
    assert!(frac(&wk, "weekly_fp@1") <= 0.2, "weekly dips misread as daily diurnality");

    // ext-lease: only the 24 h lease period aliases into a diurnal
    // verdict; shorter cycles peak more often per day and stay unflagged.
    let lease = run("ext-lease", &ctx).unwrap();
    assert!(frac(&lease, "strict@24h") >= 0.9, "24 h leases should read as diurnal");
    assert!(frac(&lease, "strict@6h") <= 0.1);
    assert!(frac(&lease, "strict@8h") <= 0.1);
    let cpd6 = m(&lease, "peak_cpd@6h");
    assert!((3.5..=4.5).contains(&cpd6), "6 h lease should peak ~4×/day, got {cpd6}");
}

#[test]
fn ablation_metrics_are_sane_at_small_scale() {
    let ctx = tiny_ctx();

    // ablate-ewma: the paper's estimator is less biased than the direct
    // variant at every truth level (§2.1.2).
    let ewma = run("ablate-ewma", &ctx).unwrap();
    for t in ["0.15", "0.3", "0.5", "0.7", "0.9"] {
        let paper = m(&ewma, &format!("paper_bias@{t}")).abs();
        let direct = m(&ewma, &format!("direct_bias@{t}")).abs();
        assert!(paper <= direct + 1e-9, "paper bias {paper} exceeds direct bias {direct} at A={t}");
    }

    // ablate-strict: raising the dominance ratio trades detection for
    // false positives monotonically at the extremes.
    let strict = run("ablate-strict", &ctx).unwrap();
    assert!(frac(&strict, "det@1.25") >= frac(&strict, "det@4"));
    assert!(frac(&strict, "fp@1.25") >= frac(&strict, "fp@4"));
    assert!(frac(&strict, "fp@4") <= 0.05, "a strict ratio of 4 still false-positives");

    // ablate-probes: more probes per round buy accuracy at probe cost.
    let probes = run("ablate-probes", &ctx).unwrap();
    assert!(m(&probes, "rmse@1") >= m(&probes, "rmse@15"), "extra probes made RMSE worse");
    assert!(m(&probes, "pph@15") >= m(&probes, "pph@1"), "probe budget not spent");

    // ablate-gaps: FFT detection decays with loss; Lomb–Scargle, which
    // consumes the gappy series directly, never does worse.
    let gaps = run("ablate-gaps", &ctx).unwrap();
    assert!(frac(&gaps, "fft@0") >= 0.9, "clean-series FFT detection too low");
    let mut prev = f64::INFINITY;
    for loss in ["0", "0.25", "0.5", "0.75", "0.9"] {
        let fft = frac(&gaps, &format!("fft@{loss}"));
        assert!(fft <= prev + 1e-9, "FFT detection rose as loss grew to {loss}");
        prev = fft;
        assert!(
            frac(&gaps, &format!("ls@{loss}")) >= fft - 1e-9,
            "Lomb–Scargle fell below FFT at loss {loss}"
        );
    }

    // ablate-acf: both detectors reject flat blocks; FFT keeps finding
    // the minority-diurnal signal the ACF detector loses in noise.
    let acf = run("ablate-acf", &ctx).unwrap();
    assert!(frac(&acf, "fft@clean_diurnal") >= 0.9);
    assert!(frac(&acf, "fft@flat") <= 0.1);
    assert!(frac(&acf, "acf@flat") <= 0.1);
    assert!(
        frac(&acf, "fft@noisy_minority_diurnal") >= frac(&acf, "acf@noisy_minority_diurnal"),
        "ACF should not beat FFT on noisy minority-diurnal blocks"
    );

    // ablate-trim: midnight trimming never hurts detection, whatever
    // the measurement start time.
    let trim = run("ablate-trim", &ctx).unwrap();
    for start in ["17:18", "23:50", "midnight"] {
        assert!(
            frac(&trim, &format!("trim@{start}")) >= frac(&trim, &format!("raw@{start}")),
            "trimming lost detections for the {start} start"
        );
    }
}
