//! Cross-crate integration tests: the full measurement pipeline from the
//! synthetic world down to aggregated, paper-shaped results.

use sleepwatch::core::{analyze_block, analyze_world, AnalysisConfig};
use sleepwatch::probing::{survey_block, TrinocularConfig, TrinocularProber};
use sleepwatch::simnet::{BlockProfile, BlockSpec, World, WorldConfig};
use sleepwatch::spectral::DiurnalClass;

fn diurnal_profile(offset: f64) -> BlockProfile {
    BlockProfile {
        n_stable: 30,
        n_diurnal: 170,
        stable_avail: 0.9,
        diurnal_avail: 0.85,
        onset_hours: 8.0,
        onset_spread: 2.0,
        duration_hours: 9.0,
        duration_spread: 1.0,
        sigma_start: 0.5,
        sigma_duration: 0.5,
        utc_offset_hours: offset,
    }
}

#[test]
fn survey_and_adaptive_paths_agree_on_diurnality() {
    let block = BlockSpec::bare(5, 99, diurnal_profile(0.0));
    let rounds = 1_833u64;

    // Ground truth via survey.
    let survey = survey_block(&block, 0, rounds);
    let truth = survey.availability_series();
    let (truth_rep, _) = sleepwatch::core::analyze_series(&truth, &Default::default());
    assert!(truth_rep.class.is_diurnal(), "survey path: {:?}", truth_rep.class);

    // Lightweight path via the pipeline.
    let analysis = analyze_block(&block, &AnalysisConfig::over_days(0, 14.0));
    assert!(analysis.diurnal.class.is_diurnal(), "adaptive path: {:?}", analysis.diurnal.class);

    // The adaptive path spends ~2 orders of magnitude fewer probes.
    assert!(analysis.run.total_probes * 20 < survey.total_probes);
}

#[test]
fn world_analysis_recovers_planted_country_gradient() {
    let world = World::generate(WorldConfig {
        num_blocks: 900,
        seed: 31,
        span_days: 7.0,
        country_filter: Some(vec!["US", "CN"]),
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, 7.0);
    let analysis = analyze_world(&world, &cfg, 2, None);

    let stats = analysis.country_stats(30);
    let us = stats.iter().find(|s| s.code == "US").expect("US present");
    let cn = stats.iter().find(|s| s.code == "CN").expect("CN present");
    assert!(
        cn.frac_diurnal > us.frac_diurnal + 0.2,
        "CN ({:.3}) must dwarf US ({:.3})",
        cn.frac_diurnal,
        us.frac_diurnal
    );
}

#[test]
fn detection_scores_well_against_planted_labels() {
    let world = World::generate(WorldConfig {
        num_blocks: 400,
        seed: 8,
        span_days: 7.0,
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, 7.0);
    let analysis = analyze_world(&world, &cfg, 2, None);
    let (tp, fp, fneg, tn) = analysis.confusion_vs_planted();
    assert_eq!(tp + fp + fneg + tn, 400);
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let accuracy = (tp + tn) as f64 / 400.0;
    // The paper reports 82 % precision / 91 % accuracy on two-week data.
    assert!(precision > 0.6, "precision {precision}");
    assert!(accuracy > 0.8, "accuracy {accuracy}");
}

#[test]
fn phase_orders_blocks_by_timezone() {
    // Three identical blocks at UTC, UTC+8 (Asia) and UTC−8 (US west):
    // activity peaks 8 hours apart must yield distinct, ordered phases.
    let cfg = AnalysisConfig::over_days(0, 14.0);
    let phase_at = |offset: f64| {
        let mut block = BlockSpec::bare(77, 400, diurnal_profile(offset));
        block.perm_offset = 3;
        block.perm_step = 7;
        analyze_block(&block, &cfg).diurnal.phase.expect("diurnal phase")
    };
    let p_east = phase_at(8.0);
    let p_mid = phase_at(0.0);
    let p_west = phase_at(-8.0);
    // Eastern activity happens earlier in UTC; unrolled ordering holds up
    // to 2π wrap. Map all phases relative to p_mid into (−π, π].
    let rel = |p: f64| {
        let mut d = p - p_mid;
        while d > std::f64::consts::PI {
            d -= std::f64::consts::TAU;
        }
        while d < -std::f64::consts::PI {
            d += std::f64::consts::TAU;
        }
        d
    };
    assert!(rel(p_east) > 0.5, "east phase ahead: {}", rel(p_east));
    assert!(rel(p_west) < -0.5, "west phase behind: {}", rel(p_west));
}

#[test]
fn outage_injection_flows_to_summary() {
    let mut block = BlockSpec::bare(9, 123, BlockProfile::always_on(120, 0.9));
    block.outage = Some((500 * 660, 540 * 660));
    let mut prober = TrinocularProber::new(&block, TrinocularConfig::default());
    let run = prober.run(&block, 0, 1_000);
    assert_eq!(run.outages.len(), 1);
    let o = run.outages[0];
    assert!(o.start_round >= 500 && o.start_round < 505);
    assert!(o.end_round.is_some());
}

#[test]
fn deterministic_end_to_end() {
    let mk = || {
        let world = World::generate(WorldConfig {
            num_blocks: 50,
            seed: 2_024,
            span_days: 4.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 3, None)
            .reports
            .iter()
            .map(|r| (r.summary.class, r.summary.total_probes, r.link_features.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk(), "same seed ⇒ identical analysis, any thread count");
}

#[test]
fn non_diurnal_world_yields_low_fractions() {
    // A US/Germany/Japan-only world should be almost entirely always-on.
    let world = World::generate(WorldConfig {
        num_blocks: 300,
        seed: 77,
        span_days: 7.0,
        country_filter: Some(vec!["US", "DE", "JP"]),
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, 7.0);
    let analysis = analyze_world(&world, &cfg, 2, None);
    let (_, frac) = analysis.strict_fraction();
    assert!(frac < 0.05, "always-on world measured {frac}");
}

#[test]
fn strict_implies_relaxed_everywhere() {
    let world = World::generate(WorldConfig {
        num_blocks: 200,
        seed: 4,
        span_days: 5.0,
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, 5.0);
    let analysis = analyze_world(&world, &cfg, 2, None);
    for r in &analysis.reports {
        if r.summary.class == DiurnalClass::Strict {
            assert!(r.summary.class.is_diurnal());
            assert!(r.summary.phase.is_some());
        }
        if r.summary.class == DiurnalClass::NonDiurnal {
            assert!(r.summary.phase.is_none());
        }
    }
}
