//! End-to-end tests of the two binaries, driven as real processes.

use std::process::Command;

/// Locates a workspace binary next to the test executable, or `None` when
/// it hasn't been built (e.g. a narrow `cargo test -p` invocation that
/// doesn't cover the sibling package) — callers skip in that case.
fn bin(name: &str) -> Option<Command> {
    // Cargo puts test binaries in target/<profile>/deps; the package
    // binaries live one directory up.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.push(name);
    if !path.exists() {
        eprintln!("skipping: {} not built (run `cargo test --workspace`)", path.display());
        return None;
    }
    Some(Command::new(path))
}

#[test]
fn sleepwatch_info_runs() {
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.arg("info").output().expect("spawn sleepwatch");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IMC 2014"));
    assert!(text.contains("660"));
}

#[test]
fn sleepwatch_countries_lists_the_table() {
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.arg("countries").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("China"));
    assert!(text.contains("United States"));
    assert!(text.contains("countries modeled"));
}

#[test]
fn sleepwatch_block_classifies() {
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.args(["block", "--days", "7"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class"), "{text}");
    assert!(text.contains("probes/hour"));
}

/// `analyze --format bin` writes a seed-joined container, and `convert`
/// turns it back into exactly the TSV the same analysis would have
/// written directly — then round-trips that TSV into a self-contained
/// binary and back, byte-identically.
#[test]
fn sleepwatch_convert_round_trips_both_formats() {
    let dir = std::env::temp_dir().join(format!("swtest-cli-fmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let world = ["--blocks", "120", "--days", "3", "--seed", "9"];

    let tsv_path = dir.join("direct.tsv");
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["analyze", "--dataset"])
        .arg(&tsv_path)
        .args(world)
        .output()
        .expect("spawn analyze tsv");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let want = std::fs::read(&tsv_path).expect("direct tsv");

    let bin_path = dir.join("direct.bin");
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["analyze", "--format", "bin", "--dataset"])
        .arg(&bin_path)
        .args(world)
        .output()
        .expect("spawn analyze bin");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bin_bytes = std::fs::read(&bin_path).expect("binary dataset");
    assert_eq!(&bin_bytes[..8], b"SLPWBIN1");
    assert!(bin_bytes.len() < want.len(), "binary should be smaller than TSV");

    // Seed-joined binary -> TSV needs the producing world's parameters.
    let from_bin = dir.join("from_bin.tsv");
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .arg("convert")
        .args([&bin_path, &from_bin])
        .args(world)
        .output()
        .expect("spawn convert bin->tsv");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(want, std::fs::read(&from_bin).expect("converted tsv"));

    // ...and without them the identity check refuses, with a typed error.
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out =
        cmd.arg("convert").args([&bin_path, &from_bin]).output().expect("spawn convert no-world");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("different run"));

    // TSV -> self-contained binary -> TSV, byte-identical, no world flags.
    let self_bin = dir.join("roundtrip.bin");
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.arg("convert").args([&tsv_path, &self_bin]).output().expect("spawn tsv->bin");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let back = dir.join("back.tsv");
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.arg("convert").args([&self_bin, &back]).output().expect("spawn bin->tsv");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(want, std::fs::read(&back).expect("round-tripped tsv"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// `feed --to-file` then `ingest --from-file` round-trips a small world
/// over the wire format and finalizes every block cleanly.
#[test]
fn sleepwatch_feed_file_round_trips_into_ingest() {
    let dir = std::env::temp_dir().join(format!("swtest-cli-feed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let world = ["--blocks", "16", "--days", "1", "--seed", "11"];
    let feed_path = dir.join("world.feed");

    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out =
        cmd.args(["feed", "--to-file"]).arg(&feed_path).args(world).output().expect("spawn feed");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&feed_path).expect("feed written");
    assert_eq!(&bytes[..8], b"SLPWFEED");

    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["ingest", "--from-file"])
        .arg(&feed_path)
        .args(world)
        .output()
        .expect("spawn ingest");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("blocks finalized    : 16"), "{text}");
    assert!(text.contains("wire frames"), "{text}");

    // A different world refuses the feed as foreign, with a readable
    // cause and a nonzero exit.
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["ingest", "--from-file"])
        .arg(&feed_path)
        .args(["--blocks", "16", "--days", "1", "--seed", "12"])
        .output()
        .expect("spawn foreign ingest");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("different run"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed or out-of-range transport flag values exit 2 and name the
/// offending flag on stderr — no panics across the CLI boundary.
#[test]
fn sleepwatch_transport_flags_reject_malformed_values() {
    for (flag, value) in [
        ("--read-timeout-ms", "banana"),
        ("--read-timeout-ms", "0"),
        ("--reconnect-attempts", "-3"),
        ("--reconnect-attempts", "0"),
        ("--backoff-ms", "1.5"),
    ] {
        let Some(mut cmd) = bin("sleepwatch") else { return };
        let out = cmd.args(["ingest", flag, value]).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{flag} {value}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(flag), "stderr does not name {flag}: {err}");
        assert!(!err.contains("panic"), "{err}");
    }
    // Missing value at end of argv.
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.args(["ingest", "--connect"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--connect"), "{err}");

    // Mutually exclusive sources are refused readably.
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["ingest", "--listen", "127.0.0.1:0", "--connect", "127.0.0.1:1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

/// A dead upstream drains the reconnect budget: nonzero exit with a
/// human-readable exhaustion cause, not a hang or a panic.
#[test]
fn sleepwatch_ingest_reports_budget_exhaustion() {
    let Some(mut cmd) = bin("sleepwatch") else { return };
    // Port 1 is never listening; keep the budget tiny so the test is fast.
    let out = cmd
        .args(["ingest", "--blocks", "4", "--days", "1", "--connect", "127.0.0.1:1"])
        .args(["--reconnect-attempts", "2", "--backoff-ms", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("connection budget exhausted"), "{err}");
    assert!(err.contains("2 attempts"), "{err}");
    assert!(!err.contains("panic"), "{err}");
}

/// `serve` end to end: analyze a world into a binary dataset, serve it
/// on an ephemeral port, and query it over real TCP with a bare-hands
/// HTTP client.
#[test]
fn sleepwatch_serve_answers_queries_end_to_end() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join(format!("swtest-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let world = ["--blocks", "24", "--days", "1", "--seed", "9"];
    let data = dir.join("world.bin");

    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["analyze", "--format", "bin", "--dataset"])
        .arg(&data)
        .args(world)
        .output()
        .expect("spawn analyze");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let Some(mut cmd) = bin("sleepwatch") else { return };
    let mut child = cmd
        .args(["serve", "--listen", "127.0.0.1:0", "--dataset"])
        .arg(&data)
        .args(world)
        .args(["--threads", "2", "--lru-capacity", "32"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The server prints its bound address once it is accepting.
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read serve banner");
    assert!(line.contains("serving 24 blocks on http://"), "{line}");
    let addr = line.split("http://").nth(1).expect("addr in banner");
    let addr = addr.split_whitespace().next().expect("addr token").to_string();

    // A tiny std TCP client: one request, one response.
    let fetch = |path: &str| -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").expect("send");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw[9..12].parse().expect("status code");
        let body = raw.split("\r\n\r\n").nth(1).expect("body").to_string();
        (status, body)
    };

    let (status, body) = fetch("/v1/summary");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"blocks\":24,"), "{body}");
    assert!(body.contains("\"diurnal_fraction\":"), "{body}");

    let (status, body) = fetch("/v1/country");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"countries\":["), "{body}");

    let (status, body) = fetch("/v1/block/0");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"block\":0,\"class\":"), "{body}");

    let (status, body) = fetch("/v1/nope");
    assert_eq!(status, 404);
    assert_eq!(body, "{\"error\":\"no such route\"}");

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed serve flag values exit 2 and name the offending flag;
/// incoherent flag combinations fail readably.
#[test]
fn sleepwatch_serve_flags_reject_malformed_values() {
    for (flag, value) in
        [("--lru-capacity", "banana"), ("--lru-capacity", "-1"), ("--read-timeout-ms", "0")]
    {
        let Some(mut cmd) = bin("sleepwatch") else { return };
        let out = cmd.args(["serve", flag, value]).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{flag} {value}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(flag), "stderr does not name {flag}: {err}");
        assert!(!err.contains("panic"), "{err}");
    }

    // No listen address.
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.args(["serve", "--dataset", "x.bin"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--listen"));

    // Zero or two sources.
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.args(["serve", "--listen", "127.0.0.1:0"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one of --dataset or --journal"));
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["serve", "--listen", "127.0.0.1:0", "--dataset", "a", "--journal", "b"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one of --dataset or --journal"));
}

/// A seed-joined dataset produced by one world refuses to be served as
/// another: identity is checked at load, before any socket is opened.
#[test]
fn sleepwatch_serve_refuses_foreign_datasets() {
    let dir = std::env::temp_dir().join(format!("swtest-cli-serve-foreign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let data = dir.join("world.bin");

    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["analyze", "--format", "bin", "--dataset"])
        .arg(&data)
        .args(["--blocks", "24", "--days", "1", "--seed", "9"])
        .output()
        .expect("spawn analyze");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd
        .args(["serve", "--listen", "127.0.0.1:0", "--dataset"])
        .arg(&data)
        .args(["--blocks", "24", "--days", "1", "--seed", "10"])
        .output()
        .expect("spawn foreign serve");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("could not load"), "{err}");
    assert!(err.contains("different run"), "{err}");
    assert!(!err.contains("panic"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sleepwatch_rejects_unknown_commands() {
    let Some(mut cmd) = bin("sleepwatch") else { return };
    let out = cmd.arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn experiments_list_covers_the_paper() {
    let Some(mut cmd) = bin("experiments") else { return };
    let out = cmd.arg("--list").output().expect("spawn experiments");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Assert the stable paper set rather than the full current id list:
    // `cargo test` does not refresh sibling packages' bin artifacts, so a
    // stale binary may predate recently added extension ids (run
    // `cargo build --workspace` first for the full check).
    for fig in 1..=17 {
        let id = format!("fig{fig}");
        assert!(text.lines().any(|l| l == id), "missing {id}");
    }
    for table in 1..=5 {
        let id = format!("table{table}");
        assert!(text.lines().any(|l| l == id), "missing {id}");
    }
    // And every listed id is one the current library knows *or* newer —
    // at minimum the list is non-empty and line-per-id shaped.
    assert!(text.lines().count() >= 22);
}

#[test]
fn experiments_runs_a_figure_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("swtest-{}", std::process::id()));
    let Some(mut cmd) = bin("experiments") else { return };
    let out = cmd.args(["--scale", "0.02", "--out"]).arg(&dir).arg("fig1").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Fig. 1"), "{text}");
    let csv = std::fs::read_to_string(dir.join("fig1.csv")).expect("csv written");
    assert!(csv.starts_with("round,"));
    assert!(csv.lines().count() > 100);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiments_format_bin_writes_both_artifacts() {
    let dir = std::env::temp_dir().join(format!("swtest-fmt-{}", std::process::id()));
    let Some(mut cmd) = bin("experiments") else { return };
    let out = cmd
        .args(["--scale", "0.02", "--format", "bin", "--out"])
        .arg(&dir)
        .arg("ext-dataset")
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let tsv = std::fs::read(dir.join("ext-dataset.csv")).expect("tsv artifact");
    let bin = std::fs::read(dir.join("ext-dataset.bin")).expect("binary artifact");
    assert_eq!(&bin[..8], b"SLPWBIN1");
    assert!(bin.len() < tsv.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn experiments_rejects_unknown_ids() {
    let Some(mut cmd) = bin("experiments") else { return };
    let out = cmd.args(["--out", "-", "fig99"]).output().expect("spawn");
    assert!(!out.status.success());
}
