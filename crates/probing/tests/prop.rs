//! Property-based tests for the probing substrate.

use proptest::prelude::*;
use sleepwatch_probing::{
    run_census, survey_block, CensusConfig, TrinocularConfig, TrinocularProber,
};
use sleepwatch_simnet::{BlockProfile, BlockSpec};

fn arb_block() -> impl Strategy<Value = BlockSpec> {
    (1u16..=256, 0.05f64..=1.0, 0u64..1_000).prop_map(|(n, avail, seed)| {
        BlockSpec::bare(seed.wrapping_mul(31), seed, BlockProfile::always_on(n, avail))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rounds_respect_probe_budget(block in arb_block(), rounds in 1u64..200) {
        let mut p = TrinocularProber::new(&block, TrinocularConfig::default());
        for r in 0..rounds {
            if let Some(rec) = p.round(&block, r, r * 660) {
                prop_assert!(rec.probes >= 1);
                prop_assert!(rec.probes <= 15);
                prop_assert!(rec.positives <= rec.probes);
                prop_assert!((0.0..=1.0).contains(&rec.a_short));
                prop_assert!((0.0..=1.0).contains(&rec.a_operational));
            }
        }
    }

    #[test]
    fn run_records_sorted_and_within_bounds(block in arb_block(), rounds in 1u64..300) {
        let mut p = TrinocularProber::new(&block, TrinocularConfig::a12w());
        let run = p.run(&block, 0, rounds);
        prop_assert!(run.records.len() <= rounds as usize);
        prop_assert!(run.records.windows(2).all(|w| w[0].round < w[1].round));
        prop_assert!(run.records.iter().all(|r| r.round < rounds));
        let sum: u64 = run.records.iter().map(|r| r.probes as u64).sum();
        prop_assert_eq!(sum, run.total_probes);
    }

    #[test]
    fn outage_events_are_well_formed(block in arb_block(), rounds in 10u64..300) {
        let mut p = TrinocularProber::new(&block, TrinocularConfig::default());
        let run = p.run(&block, 0, rounds);
        for o in &run.outages {
            prop_assert!(o.start_round < rounds);
            if let Some(end) = o.end_round {
                prop_assert!(end > o.start_round);
            }
        }
        // At most one ongoing outage, and only the last can be open.
        let open = run.outages.iter().filter(|o| o.end_round.is_none()).count();
        prop_assert!(open <= 1);
        if open == 1 {
            prop_assert!(run.outages.last().unwrap().end_round.is_none());
        }
    }

    #[test]
    fn census_subset_of_ever_active(block in arb_block(), passes in 1u32..20) {
        let cfg = CensusConfig { passes, ..Default::default() };
        let c = run_census(&block, 1_000_000, &cfg);
        let truth: std::collections::HashSet<u8> =
            block.ever_active_addrs().into_iter().collect();
        for a in &c.ever_active {
            prop_assert!(truth.contains(a), "census invented address {a}");
        }
        prop_assert!((0.0..=1.0).contains(&c.hist_avail));
        prop_assert!(c.ever_active.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
        prop_assert_eq!(c.ever_active.len(), c.response_counts.len());
    }

    #[test]
    fn survey_counts_bounded_by_population(block in arb_block(), rounds in 1u64..60) {
        let s = survey_block(&block, 0, rounds);
        let e = block.ever_active_count() as u32;
        prop_assert!(s.responders.iter().all(|&r| r <= e));
        prop_assert!(s.ever_count() <= e as usize);
        for a in s.availability_series() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&a));
        }
    }

    #[test]
    fn prober_is_deterministic(block in arb_block()) {
        let mk = || {
            let mut p = TrinocularProber::new(&block, TrinocularConfig::a12w());
            let run = p.run(&block, 0, 120);
            run.records.iter().map(|r| (r.round, r.probes, r.positives)).collect::<Vec<_>>()
        };
        prop_assert_eq!(mk(), mk());
    }
}
