//! Property-based tests for the `SLPWFEED` wire codec.
//!
//! The decoder's contract is *totality*: arbitrary byte soup must never
//! panic, never read out of bounds, and never be trusted — every
//! malformation surfaces as `Damaged`, `NeedMore`, or a refused
//! handshake. On top of that, every single-byte flip anywhere in a feed
//! must be detected (strict mode refuses, lenient mode skips and
//! counts), truncation must heal to a valid prefix of the original
//! event sequence, and sequence gaps must be detected and accounted.

use proptest::prelude::*;
use sleepwatch_framing::{RunIdentity, PRELUDE_LEN};
use sleepwatch_probing::stream::RoundEvent;
use sleepwatch_probing::transport::{
    decode_frame, encode_frame, write_feed, EventSource, FileSource, Frame, FrameDecode,
    TransportError, TransportStats,
};

fn ident() -> RunIdentity {
    RunIdentity { world_seed: 0x5EED, num_blocks: 9, rounds: 64, start_time: 7_200 }
}

/// A deterministic mixed feed: rounds for a few blocks, finishes last.
fn mk_events(n: usize) -> Vec<RoundEvent> {
    let mut out: Vec<RoundEvent> = (0..n as u64)
        .map(|i| RoundEvent::Round { block_id: i % 9, round: i / 9, a_short: (i as f64) / 97.0 })
        .collect();
    for b in 0..3u64 {
        out.push(RoundEvent::Finish { block_id: b, outages: b as u32, total_probes: 11 * b });
    }
    out
}

fn feed_bytes(events: &[RoundEvent], frame_events: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_feed(&mut bytes, events, &ident(), frame_events).expect("write feed");
    bytes
}

/// Drains a file source to completion, collecting everything it yields.
fn drain<R: std::io::Read>(
    mut fs: FileSource<R>,
) -> (Vec<RoundEvent>, TransportStats, Option<TransportError>) {
    let mut out = Vec::new();
    loop {
        match fs.next_event() {
            Ok(Some(ev)) => out.push(ev),
            Ok(None) => return (out, fs.stats(), None),
            Err(e) => return (out, fs.stats(), Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totality: `decode_frame` on arbitrary bytes and an arbitrary
    /// session chain never panics, and whatever it reports stays inside
    /// the buffer it was given.
    #[test]
    fn decode_frame_is_total(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        chain in any::<u32>(),
    ) {
        match decode_frame(&bytes, chain) {
            FrameDecode::Frame { consumed, .. } => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(consumed >= 4);
            }
            FrameDecode::NeedMore { need } => {
                prop_assert!(need > bytes.len());
            }
            FrameDecode::Damaged { skip, .. } => {
                if let Some(n) = skip {
                    prop_assert!(n >= 4);
                }
            }
        }
    }

    /// Byte soup after a valid handshake never panics the reader, in
    /// either mode; strict mode refuses the first damage with a typed
    /// error.
    #[test]
    fn byte_soup_after_hello_is_survived(
        soup in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let mut bytes = feed_bytes(&[], 8);
        bytes.truncate(PRELUDE_LEN); // keep only the hello
        bytes.extend_from_slice(&soup);
        let id = ident();
        let (_, _, err) = drain(FileSource::new(&bytes[..], &id, false).expect("handshake"));
        prop_assert!(err.is_none(), "lenient mode errored on soup: {err:?}");
        let fs = FileSource::new(&bytes[..], &id, true).expect("handshake");
        let (_, _, err) = drain(fs);
        // Anything undecodable after the hello is damage, and strict
        // mode must say so (a chained-CRC-valid frame arising from
        // random bytes is a 2^-32 event the fixed proptest seeds never
        // hit).
        if !soup.is_empty() {
            prop_assert!(err.is_some(), "strict mode swallowed {} soup bytes", soup.len());
        }
    }

    /// Every single-byte corruption of the handshake prelude is refused
    /// before any event is decoded.
    #[test]
    fn every_hello_flip_is_refused(pos in 0usize..PRELUDE_LEN, mask in 1u8..=255) {
        let mut bytes = feed_bytes(&mk_events(40), 8);
        bytes[pos] ^= mask;
        let id = ident();
        prop_assert!(
            FileSource::new(&bytes[..], &id, false).is_err(),
            "flipped hello byte {pos} accepted"
        );
    }

    /// Every single-byte flip in the framed stream is detected: lenient
    /// mode skips and counts, strict mode refuses with a typed error —
    /// no flip is ever silently absorbed into the event stream.
    #[test]
    fn every_frame_flip_is_detected_or_counted(
        n in 1usize..160,
        frame_events in 1usize..24,
        pick in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let events = mk_events(n);
        let clean = feed_bytes(&events, frame_events);
        let pos = PRELUDE_LEN + (pick as usize) % (clean.len() - PRELUDE_LEN);
        let mut bytes = clean;
        bytes[pos] ^= mask;
        let id = ident();

        let (got, stats, err) = drain(FileSource::new(&bytes[..], &id, false).expect("handshake"));
        prop_assert!(err.is_none(), "lenient mode errored: {err:?}");
        prop_assert!(
            stats.skipped_corrupt + stats.lost_events > 0,
            "flip at {pos} went uncounted (got {} of {} events)",
            got.len(),
            events.len()
        );
        prop_assert!(got.len() <= events.len(), "corruption conjured events");

        let (_, _, err) = drain(FileSource::new(&bytes[..], &id, true).expect("handshake"));
        prop_assert!(
            matches!(err, Some(TransportError::Corrupt { .. })),
            "strict mode did not refuse the flip at {pos}: {err:?}"
        );
    }

    /// Truncation at any point heals to a valid prefix: the lenient
    /// reader yields exactly the leading events that survived the cut,
    /// in order, with no error — and claims a clean end only when the
    /// end marker itself survived.
    #[test]
    fn truncation_heals_to_a_valid_prefix(
        n in 1usize..160,
        frame_events in 1usize..24,
        pick in any::<u64>(),
    ) {
        let events = mk_events(n);
        let clean = feed_bytes(&events, frame_events);
        let cut = PRELUDE_LEN + (pick as usize) % (clean.len() - PRELUDE_LEN + 1);
        let bytes = &clean[..cut];
        let id = ident();
        let (got, stats, err) = drain(FileSource::new(bytes, &id, false).expect("handshake"));
        prop_assert!(err.is_none(), "lenient truncation errored: {err:?}");
        prop_assert!(got.len() <= events.len());
        prop_assert_eq!(
            &got[..],
            &events[..got.len()],
            "truncated feed is not a prefix of the original"
        );
        if stats.clean_end {
            prop_assert_eq!(got.len(), events.len(), "clean end without the whole stream");
        }
        if cut == clean.len() {
            prop_assert!(stats.clean_end, "untruncated feed lost its end marker");
        }
    }

    /// A missing frame is a detected sequence gap: lenient mode accounts
    /// every lost event and still delivers everything else in order;
    /// strict mode refuses.
    #[test]
    fn sequence_gaps_are_detected_and_accounted(
        n in 24usize..200,
        frame_events in 1usize..16,
        pick in any::<u64>(),
    ) {
        let events = mk_events(n);
        let id = ident();
        let hello = {
            let mut bytes = feed_bytes(&[], frame_events);
            bytes.truncate(PRELUDE_LEN);
            bytes
        };
        let arr: &[u8; PRELUDE_LEN] = hello.as_slice().try_into().expect("prelude length");
        let chain = sleepwatch_probing::transport::header_crc_of(arr);
        let chunks: Vec<&[RoundEvent]> = events.chunks(frame_events).collect();
        prop_assert!(chunks.len() >= 2);
        let skip_at = (pick as usize) % chunks.len();
        let mut bytes = hello;
        let mut seq = 0u64;
        for (i, chunk) in chunks.iter().enumerate() {
            if i != skip_at {
                encode_frame(
                    &mut bytes,
                    &Frame::Events { seq, events: chunk.to_vec() },
                    chain,
                );
            }
            seq += chunk.len() as u64;
        }
        encode_frame(&mut bytes, &Frame::End { total: events.len() as u64 }, chain);

        let lost = chunks[skip_at].len() as u64;
        let want: Vec<RoundEvent> = chunks
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip_at)
            .flat_map(|(_, c)| c.iter().copied())
            .collect();
        let (got, stats, err) = drain(FileSource::new(&bytes[..], &id, false).expect("handshake"));
        prop_assert!(err.is_none(), "lenient gap errored: {err:?}");
        prop_assert_eq!(stats.lost_events, lost, "gap size misaccounted");
        prop_assert_eq!(got, want, "surviving events diverged");

        let (_, _, err) = drain(FileSource::new(&bytes[..], &id, true).expect("handshake"));
        prop_assert!(
            matches!(err, Some(TransportError::Corrupt { .. })),
            "strict mode did not refuse the gap: {err:?}"
        );
    }
}
