//! Trinocular-style adaptive probing (the substrate of §2.1).
//!
//! Reimplements the outage-detection prober of Quan et al., SIGCOMM 2013,
//! that the paper's estimators consume:
//!
//! * per block, a Bayesian belief `B(U)` that the block is up;
//! * probes drawn by walking the block's ever-active addresses `E(b)` in a
//!   pseudorandom order (the world model already scatters `E(b)` across the
//!   /24, so walking slots in sequence realizes the pseudorandom walk);
//! * likelihoods `P(response⁺ | up) = Â_o` (the conservative operational
//!   estimate — the reason §2.1 demands `Â_o` not exceed truth) and
//!   `P(response⁺ | down) = ε` (stray/spoofed responses);
//! * probing stops at the first conclusive belief (`≥ 0.9` either way), at
//!   most 15 probes per 11-minute round — which biases observations toward
//!   positive responses, the bias §2.1.2's separate (p, t) tracking
//!   corrects;
//! * beliefs are capped below 1 so the prober can always change its mind.

use crate::faults::FaultPlan;
use crate::record::{BlockRun, RoundRecord};
use sleepwatch_availability::{AvailabilityEstimator, EwmaConfig};
use sleepwatch_geoecon::rng::KeyedRng;
use sleepwatch_simnet::{BlockSpec, ProbeOutcome, ROUND_SECONDS};

/// Reachability verdict for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Believed reachable.
    Up,
    /// Believed down (an outage if previously up).
    Down,
    /// Probing budget exhausted without a conclusive belief.
    Unknown,
}

/// Prober configuration; defaults are Trinocular's published parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrinocularConfig {
    /// Maximum probes per block per round (paper: 15).
    pub max_probes_per_round: u32,
    /// Belief threshold to conclude up/down (paper: 0.9).
    pub belief_threshold: f64,
    /// Beliefs are clamped to `[1 − cap, cap]` (paper: 0.99).
    pub belief_cap: f64,
    /// `P(response⁺ | block down)`: stray responses (small, non-zero).
    pub p_response_down: f64,
    /// Estimator gains.
    pub ewma: EwmaConfig,
    /// Prober restarts every this many rounds (`None` = never). The paper's
    /// `A12w` prober restarted every 5.5 hours = 30 rounds, producing the
    /// 4.3-cycles/day artifact of Fig. 10.
    pub restart_interval_rounds: Option<u64>,
    /// On a restart round, probability that a block's observation is lost
    /// entirely (its probe was in flight during the restart).
    pub restart_loss_chance: f64,
    /// On a restart round that is *not* lost, probability that one probe's
    /// response is dropped while the prober bounces (counted as an extra
    /// negative). This periodic dip is the source of the 4.3-cycles/day
    /// line in Fig. 10.
    pub restart_negative_chance: f64,
    /// Probability that a genuinely positive response is lost in transit
    /// (probe or reply dropped on the path). The estimators absorb this as
    /// a small multiplicative bias on measured availability, exactly as in
    /// live measurement.
    pub transit_loss_rate: f64,
    /// `P(ICMP unreachable | block up)`: stray router errors on a healthy
    /// path (small).
    pub p_unreach_up: f64,
    /// `P(ICMP unreachable | block down)`: a routed outage usually draws
    /// explicit errors from upstream routers, making one unreachable far
    /// stronger down-evidence than a timeout.
    pub p_unreach_down: f64,
    /// Vantage blackout handling. `None` (the default) keeps the legacy
    /// behaviour — every blacked-out round is silently lost — which the
    /// faulted golden pins byte-for-byte. `Some` enables deterministic
    /// retry/backoff against a standby vantage and, past the retry
    /// budget, explicit degraded single-vantage estimation.
    pub vantage_retry: Option<VantageRetryConfig>,
}

/// Deterministic retry/backoff schedule for vantage blackouts.
///
/// While a vantage is dark the prober attempts to fail over to a standby
/// vantage on an exponential-backoff cadence (dark rounds 1, 2, 4, 8, …),
/// each attempt a seed-keyed draw — no wall clock, so replays and resumed
/// runs reproduce the schedule exactly. A successful attempt restores
/// observations for the remainder of that blackout. Once the vantage has
/// stayed dark past `retry_budget_rounds`, the prober stops retrying and
/// switches to degraded mode: it emits an explicit zero-probe round
/// carrying the estimator's current availability values and an `Unknown`
/// state, so the quality loss is accounted rather than silent.
#[derive(Debug, Clone, Copy)]
pub struct VantageRetryConfig {
    /// Fail-over draws per scheduled retry round.
    pub attempts_per_retry: u32,
    /// Per-attempt probability that the standby vantage answers.
    pub recover_chance: f64,
    /// Dark rounds after which retrying stops and degraded mode engages.
    pub retry_budget_rounds: u64,
}

impl Default for VantageRetryConfig {
    fn default() -> Self {
        VantageRetryConfig { attempts_per_retry: 3, recover_chance: 0.25, retry_budget_rounds: 16 }
    }
}

impl Default for TrinocularConfig {
    fn default() -> Self {
        TrinocularConfig {
            max_probes_per_round: 15,
            belief_threshold: 0.9,
            belief_cap: 0.99,
            p_response_down: 0.01,
            ewma: EwmaConfig::default(),
            restart_interval_rounds: None,
            restart_loss_chance: 0.25,
            restart_negative_chance: 0.7,
            transit_loss_rate: 0.01,
            p_unreach_up: 0.005,
            p_unreach_down: 0.5,
            vantage_retry: None,
        }
    }
}

impl TrinocularConfig {
    /// The paper's `A12w` configuration: restarts every 5.5 hours.
    pub fn a12w() -> Self {
        TrinocularConfig { restart_interval_rounds: Some(30), ..Default::default() }
    }
}

/// An outage: consecutive rounds believed down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageEvent {
    /// First round believed down.
    pub start_round: u64,
    /// First round believed up again (exclusive end); `None` while ongoing.
    pub end_round: Option<u64>,
}

/// Adaptive prober for one block.
#[derive(Debug, Clone)]
pub struct TrinocularProber {
    cfg: TrinocularConfig,
    estimator: AvailabilityEstimator,
    belief_up: f64,
    state: BlockState,
    walk: Vec<u8>,
    cursor: usize,
    outages: Vec<OutageEvent>,
    total_probes: u64,
}

/// Reusable buffers for constructing probers without per-block heap
/// allocation (the steady-state world-run path).
///
/// [`TrinocularProber::new_reusing`] takes the buffers out of the scratch
/// (clearing any stale contents) and [`TrinocularProber::recycle`] puts
/// them back, capacities intact — grow-only across blocks. A default
/// (empty) scratch is always valid: the first block simply pays the
/// allocations the scratch exists to amortize.
#[derive(Debug, Default)]
pub struct ProberScratch {
    walk: Vec<u8>,
    outages: Vec<OutageEvent>,
}

impl ProberScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        ProberScratch::default()
    }

    /// Heap bytes currently reserved by the scratch buffers.
    pub fn footprint_bytes(&self) -> usize {
        self.walk.capacity() * std::mem::size_of::<u8>()
            + self.outages.capacity() * std::mem::size_of::<OutageEvent>()
    }

    /// Outages recorded by the most recently recycled prober. Wrappers
    /// that materialize a full [`BlockRun`] take them from here.
    pub fn take_outages(&mut self) -> Vec<OutageEvent> {
        std::mem::take(&mut self.outages)
    }

    /// Fills the buffers with garbage, for tests proving output
    /// independence from prior scratch contents.
    #[doc(hidden)]
    pub fn poison(&mut self, seed: u64) {
        self.walk.clear();
        self.walk.extend((0..97u64).map(|i| (seed.wrapping_mul(31).wrapping_add(i)) as u8));
        self.outages.clear();
        self.outages.push(OutageEvent { start_round: seed, end_round: None });
    }
}

/// Stream tag for the walk shuffle and restart-loss draws.
const STREAM_WALK: u64 = 0x77_616c6b; // "walk"
const STREAM_RESTART: u64 = 0x72_7374; // "rst"
const STREAM_TRANSIT: u64 = 0x74_726e; // "trn"
const STREAM_VRETRY: u64 = 0x76_7274; // "vrt"

impl TrinocularProber {
    /// Creates a prober. The initial availability belief comes from the
    /// block's (possibly stale) historical estimate, exactly as the real
    /// system bootstraps from prior censuses.
    pub fn new(block: &BlockSpec, cfg: TrinocularConfig) -> Self {
        Self::with_targets(block, block.ever_active_addrs(), block.hist_avail, cfg)
    }

    /// [`new`](Self::new), reusing the buffers held by `scratch` instead
    /// of allocating: the walk is refilled in place from the block's
    /// ever-active set and any stale outages are cleared. Behaviour and
    /// output are byte-identical to [`new`](Self::new) — only the buffer
    /// provenance differs. Pair with [`recycle`](Self::recycle) to return
    /// the buffers after the run.
    pub fn new_reusing(
        block: &BlockSpec,
        cfg: TrinocularConfig,
        scratch: &mut ProberScratch,
    ) -> Self {
        let mut walk = std::mem::take(&mut scratch.walk);
        walk.clear();
        walk.extend((0..block.ever_active_count()).map(|s| block.slot_to_addr(s as u8)));
        let mut outages = std::mem::take(&mut scratch.outages);
        outages.clear();
        Self::with_buffers(block, walk, outages, block.hist_avail, cfg)
    }

    /// Returns the prober's buffers to `scratch` for the next block,
    /// keeping their capacities. The recorded outages stay readable
    /// through [`ProberScratch::take_outages`] until the next
    /// [`new_reusing`](Self::new_reusing).
    pub fn recycle(self, scratch: &mut ProberScratch) {
        scratch.walk = self.walk;
        scratch.outages = self.outages;
    }

    /// Creates a prober bootstrapped from a census record — the real
    /// system's path: the walk covers only addresses the census
    /// *discovered*, and the initial availability belief is the census's
    /// historical estimate. Returns `None` when the block fails the
    /// analyzability policy (fewer than `census_cfg.min_ever_active`
    /// discovered addresses — §3.2.4's "policy constraint").
    pub fn from_census(
        block: &BlockSpec,
        census: &crate::census::CensusRecord,
        census_cfg: &crate::census::CensusConfig,
        cfg: TrinocularConfig,
    ) -> Option<Self> {
        if !census.analyzable(census_cfg) {
            return None;
        }
        Some(Self::with_targets(block, census.ever_active.clone(), census.hist_avail, cfg))
    }

    fn with_targets(
        block: &BlockSpec,
        walk: Vec<u8>,
        hist_avail: f64,
        cfg: TrinocularConfig,
    ) -> Self {
        Self::with_buffers(block, walk, Vec::new(), hist_avail, cfg)
    }

    fn with_buffers(
        block: &BlockSpec,
        mut walk: Vec<u8>,
        outages: Vec<OutageEvent>,
        hist_avail: f64,
        cfg: TrinocularConfig,
    ) -> Self {
        debug_assert!(outages.is_empty(), "outage buffer must arrive cleared");
        // Pseudorandom walk order, fixed per block per prober instance.
        let mut rng = KeyedRng::from_parts(&[block.seed, STREAM_WALK, block.id]);
        for i in (1..walk.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            walk.swap(i, j);
        }
        // Building the E(b) walk is the initial refresh.
        sleepwatch_obs::global().probing.eb_refreshes.incr();
        TrinocularProber {
            cfg,
            estimator: AvailabilityEstimator::new(hist_avail, cfg.ewma),
            belief_up: 0.9, // blocks start presumed up, as in Trinocular
            state: BlockState::Up,
            walk,
            cursor: 0,
            outages,
            total_probes: 0,
        }
    }

    /// The current belief that the block is up.
    pub fn belief_up(&self) -> f64 {
        self.belief_up
    }

    /// The most recent state verdict.
    pub fn state(&self) -> BlockState {
        self.state
    }

    /// Outages recorded so far.
    pub fn outages(&self) -> &[OutageEvent] {
        &self.outages
    }

    /// Total probes sent.
    pub fn total_probes(&self) -> u64 {
        self.total_probes
    }

    /// Immutable access to the availability estimator.
    pub fn estimator(&self) -> &AvailabilityEstimator {
        &self.estimator
    }

    /// Bayes update of `B(U)` for one probe outcome, using the three-way
    /// likelihood model: replies favour up, timeouts weakly favour down,
    /// explicit unreachable errors strongly favour down.
    fn update_belief(&mut self, outcome: ProbeOutcome) {
        let a = self.estimator.a_operational();
        let (uu, ud) = (self.cfg.p_unreach_up, self.cfg.p_unreach_down);
        let eps = self.cfg.p_response_down;
        let (l_up, l_down) = match outcome {
            ProbeOutcome::Reply => (a, eps),
            ProbeOutcome::Timeout => (((1.0 - a - uu).max(0.001)), ((1.0 - eps - ud).max(0.001))),
            ProbeOutcome::Unreachable => (uu, ud),
        };
        let num = l_up * self.belief_up;
        let den = num + l_down * (1.0 - self.belief_up);
        self.belief_up = if den > 0.0 { num / den } else { 0.5 };
        let cap = self.cfg.belief_cap;
        self.belief_up = self.belief_up.clamp(1.0 - cap, cap);
    }

    /// Runs one 11-minute round against `block` at absolute `time`,
    /// returning the round's record (or `None` when the block has no
    /// ever-active addresses to probe).
    pub fn round(&mut self, block: &BlockSpec, round: u64, time: u64) -> Option<RoundRecord> {
        self.round_inner(block, round, time, false, None, &mut 0)
    }

    fn round_inner(
        &mut self,
        block: &BlockSpec,
        round: u64,
        time: u64,
        restart_dropped_probe: bool,
        // Injected correlated loss: `(plan seed, loss rate)` when a fault
        // burst covers this round. `None` draws nothing — the fault-free
        // path is bit-identical to the pre-fault-layer code.
        burst_loss: Option<(u64, f64)>,
        // Accumulates responses suppressed by the burst, for the metrics
        // flush at the end of the run.
        burst_lost: &mut u64,
    ) -> Option<RoundRecord> {
        if self.walk.is_empty() {
            return None;
        }
        let mut positives = 0u32;
        let mut probes = 0u32;
        let thr = self.cfg.belief_threshold;
        if restart_dropped_probe {
            // The round's opening probe batch was in flight while the
            // prober bounced: the responses are lost and book as timeouts.
            for _ in 0..2 {
                probes += 1;
                self.total_probes += 1;
                self.update_belief(ProbeOutcome::Timeout);
            }
        }
        while probes < self.cfg.max_probes_per_round.min(self.walk.len() as u32) {
            let addr = self.walk[self.cursor];
            self.cursor = (self.cursor + 1) % self.walk.len();
            let mut outcome = block.probe_outcome(addr, time);
            if outcome == ProbeOutcome::Reply && self.cfg.transit_loss_rate > 0.0 {
                // The reply can die on the path; keyed per (block, addr,
                // time) so replays stay exact.
                let lost = sleepwatch_geoecon::rng::chance_at(
                    self.cfg.transit_loss_rate,
                    &[block.seed, STREAM_TRANSIT, block.id, addr as u64, time],
                );
                if lost {
                    outcome = ProbeOutcome::Timeout;
                }
            }
            if outcome == ProbeOutcome::Reply {
                if let Some((plan_seed, rate)) = burst_loss {
                    if crate::faults::burst_loses_response(plan_seed, rate, block.id, addr, time) {
                        outcome = ProbeOutcome::Timeout;
                        *burst_lost += 1;
                    }
                }
            }
            let positive = outcome.is_positive();
            probes += 1;
            self.total_probes += 1;
            self.update_belief(outcome);
            if positive {
                // "A few or even one positive response is usually sufficient
                // to terminate probing" (§2.1.1): a positive is near-decisive
                // evidence of up (ε ≪ A), so the round ends — the source of
                // the positive-response sampling bias.
                positives += 1;
                break;
            }
            // Negatives are weak evidence individually; keep probing until
            // the belief becomes conclusively down or the budget runs out.
            if self.belief_up <= 1.0 - thr {
                break;
            }
        }

        let new_state = if self.belief_up >= thr {
            BlockState::Up
        } else if self.belief_up <= 1.0 - thr {
            BlockState::Down
        } else {
            BlockState::Unknown
        };

        // Outage bookkeeping: a new outage opens on entering Down; the
        // current outage closes on reaching Up again (recovery may pass
        // through Unknown rounds while belief climbs back).
        if new_state == BlockState::Down
            && self.state != BlockState::Down
            // Down -> Unknown -> Down is one continuing outage, not two:
            // only open a new event once the previous one has closed.
            && self.outages.last().map_or(true, |o| o.end_round.is_some())
        {
            self.outages.push(OutageEvent { start_round: round, end_round: None });
        }
        if new_state == BlockState::Up {
            if let Some(o) = self.outages.last_mut() {
                if o.end_round.is_none() {
                    o.end_round = Some(round);
                }
            }
        }
        self.state = new_state;

        let est = self.estimator.observe(positives, probes);
        Some(RoundRecord {
            round,
            probes,
            positives,
            a_short: est.a_short,
            a_long: est.a_long,
            a_operational: est.a_operational,
            state: new_state,
        })
    }

    /// Drives the prober over `rounds` consecutive rounds starting at
    /// `start_time`, applying the configured restart artifact: on restart
    /// rounds some blocks lose the round's observation entirely (a gap the
    /// §2.2 cleaning must extrapolate over).
    pub fn run(&mut self, block: &BlockSpec, start_time: u64, rounds: u64) -> BlockRun {
        self.run_with_faults(block, start_time, rounds, &FaultPlan::none())
    }

    /// [`run`](Self::run) under an injected fault regime. The empty plan
    /// ([`FaultPlan::none`]) takes the identical code path and draws no
    /// extra randomness, so its output is byte-identical to `run` — the
    /// golden suite pins this.
    pub fn run_with_faults(
        &mut self,
        block: &BlockSpec,
        start_time: u64,
        rounds: u64,
        plan: &FaultPlan,
    ) -> BlockRun {
        let mut records = Vec::new();
        self.run_into_with_faults(block, start_time, rounds, plan, &mut records);
        if plan.mangles_order() {
            // Duplicated/reordered streams legitimately violate the
            // strict-ascending invariant `BlockRun::new` asserts; build
            // the run directly and let downstream cleaning cope.
            BlockRun {
                block_id: block.id,
                rounds,
                records,
                outages: self.outages.clone(),
                total_probes: self.total_probes,
            }
        } else {
            BlockRun::new(block.id, rounds, records, self.outages.clone(), self.total_probes)
        }
    }

    /// [`run_with_faults`](Self::run_with_faults), writing the round
    /// records into a caller-provided buffer instead of building an owned
    /// [`BlockRun`] — the zero-allocation steady-state path. `records` is
    /// cleared first and grows only when this run needs more capacity
    /// than any before it. Outages and the probe total stay readable via
    /// [`outages`](Self::outages) / [`total_probes`](Self::total_probes).
    pub fn run_into_with_faults(
        &mut self,
        block: &BlockSpec,
        start_time: u64,
        rounds: u64,
        plan: &FaultPlan,
        records: &mut Vec<RoundRecord>,
    ) {
        // Fault accounting is accumulated in locals and flushed once at
        // the end of the run: one shared-cache-line touch per run instead
        // of per round/probe keeps worker threads from contending.
        let probes_before = self.total_probes;
        let mut fc = FaultCounts::default();
        let mut in_blackout = false;
        let mut dark_streak = 0u64;
        let mut failed_over = false;
        let mut in_burst = false;
        records.clear();
        records.reserve(rounds as usize);
        for r in 0..rounds {
            if plan.truncates_at(r) {
                fc.truncations += 1;
                fc.truncated_rounds += rounds - r;
                break; // collection died; nothing more arrives
            }
            if let Some(churn) = plan.churn_at(r) {
                self.churn_walk(block, plan, churn.fraction);
            }
            if plan.blacked_out(r) {
                if !in_blackout {
                    fc.blackouts += 1;
                    in_blackout = true;
                    dark_streak = 0;
                    failed_over = false;
                }
                dark_streak += 1;
                match self.cfg.vantage_retry {
                    None => {
                        fc.blackout_rounds += 1;
                        continue; // the vantage saw nothing this round
                    }
                    Some(_) if failed_over => {} // standby vantage carries on
                    Some(vr) => {
                        if self.vantage_retry_round(block, plan, vr, r, dark_streak, &mut fc) {
                            failed_over = true; // probe via the standby below
                        } else if dark_streak > vr.retry_budget_rounds {
                            // Retry budget exhausted: degraded mode. Emit an
                            // explicit zero-probe round carrying the current
                            // estimate so the quality loss is accounted, not
                            // silent.
                            fc.degraded_rounds += 1;
                            if !self.walk.is_empty() {
                                records.push(RoundRecord {
                                    round: r,
                                    probes: 0,
                                    positives: 0,
                                    a_short: self.estimator.a_short(),
                                    a_long: self.estimator.a_long(),
                                    a_operational: self.estimator.a_operational(),
                                    state: BlockState::Unknown,
                                });
                            }
                            continue;
                        } else {
                            fc.blackout_rounds += 1;
                            continue; // still dark; retry again later
                        }
                    }
                }
            } else {
                in_blackout = false;
            }
            // Pure, keyed fault queries, evaluated (and counted) before
            // the private restart draw below: the metrics-invariant suite
            // recomputes the expected counts through the same public
            // `FaultPlan` API, independent of the prober's internal RNG.
            let storm = plan.storm_restart_at(block.id, r);
            if storm.is_some() {
                fc.storm_restarts += 1;
            }
            let burst_rate = plan.loss_at(block.id, r);
            if burst_rate > 0.0 {
                if !in_burst {
                    fc.loss_bursts += 1;
                }
                in_burst = true;
            } else {
                in_burst = false;
            }
            let time = start_time + r * ROUND_SECONDS;
            let restarting = self.cfg.restart_interval_rounds.is_some_and(|k| r > 0 && r % k == 0);
            let mut dropped_probe = false;
            if restarting {
                fc.cfg_restarts += 1;
                // The prober process bounces: belief survives on disk, but
                // this round's observation may be lost for this block, or a
                // probe already in flight loses its response.
                let mut rng = KeyedRng::from_parts(&[block.seed, STREAM_RESTART, block.id, r]);
                if rng.chance(self.cfg.restart_loss_chance) {
                    continue; // missing observation for this round
                }
                dropped_probe = rng.chance(self.cfg.restart_negative_chance);
            }
            if let Some((lost, dropped)) = storm {
                // An extra, unscheduled restart on top of the configured
                // cadence — same loss semantics.
                if lost {
                    fc.storm_lost_rounds += 1;
                    continue;
                }
                dropped_probe |= dropped;
            }
            let burst = if burst_rate > 0.0 { Some((plan.seed, burst_rate)) } else { None };
            if let Some(rec) =
                self.round_inner(block, r, time, dropped_probe, burst, &mut fc.lost_probes)
            {
                records.push(rec);
            }
        }
        let (dups, swaps) = plan.mangle_records(block.id, records);
        fc.duplicates = dups;
        fc.reorders = swaps;
        self.flush_run_metrics(self.total_probes - probes_before, &fc);
    }

    /// One blacked-out round's fail-over attempt: on the exponential
    /// backoff cadence (dark rounds 1, 2, 4, 8, … within the budget) the
    /// prober makes up to `attempts_per_retry` seed-keyed draws against
    /// the standby vantage. Returns true when an attempt succeeds.
    fn vantage_retry_round(
        &mut self,
        block: &BlockSpec,
        plan: &FaultPlan,
        vr: VantageRetryConfig,
        round: u64,
        dark_streak: u64,
        fc: &mut FaultCounts,
    ) -> bool {
        if dark_streak > vr.retry_budget_rounds || !dark_streak.is_power_of_two() {
            return false;
        }
        for attempt in 0..vr.attempts_per_retry {
            fc.vantage_retries += 1;
            let hit = sleepwatch_geoecon::rng::chance_at(
                vr.recover_chance,
                &[plan.seed, STREAM_VRETRY, block.id, round, attempt as u64],
            );
            if hit {
                return true;
            }
        }
        false
    }

    /// Rewrites a keyed fraction of the walk with arbitrary octets,
    /// modelling mid-run `E(b)` churn (renumbering under stale census
    /// data). Replacement octets may be inactive addresses.
    fn churn_walk(&mut self, block: &BlockSpec, plan: &FaultPlan, fraction: f64) {
        if self.walk.is_empty() {
            return;
        }
        let n = ((self.walk.len() as f64 * fraction).round() as usize).min(self.walk.len());
        for draw in 0..n {
            let (slot, octet) = plan.churn_slot(block.id, draw as u64, self.walk.len());
            self.walk[slot] = octet;
        }
        let obs = sleepwatch_obs::global();
        obs.probing.eb_refreshes.incr();
        obs.probing.churned_slots.add(n as u64);
    }

    /// One-shot metrics flush for a completed run (see the batching note
    /// in [`run_with_faults`](Self::run_with_faults)).
    fn flush_run_metrics(&self, probes: u64, fc: &FaultCounts) {
        let obs = sleepwatch_obs::global();
        if !obs.probing.runs.enabled() {
            return;
        }
        obs.probing.runs.incr();
        obs.probing.probes_sent.add(probes);
        let f = &obs.probing.faults;
        f.loss_bursts.add(fc.loss_bursts);
        f.lost_probes.add(fc.lost_probes);
        f.blackouts.add(fc.blackouts);
        f.blackout_rounds.add(fc.blackout_rounds);
        f.storm_restarts.add(fc.storm_restarts);
        f.storm_lost_rounds.add(fc.storm_lost_rounds);
        f.truncations.add(fc.truncations);
        f.truncated_rounds.add(fc.truncated_rounds);
        f.duplicates.add(fc.duplicates);
        f.reorders.add(fc.reorders);
        f.cfg_restarts.add(fc.cfg_restarts);
        obs.probing.vantage_retries.add(fc.vantage_retries);
        obs.probing.degraded_rounds.add(fc.degraded_rounds);
    }
}

/// Per-run fault tallies, accumulated locally and flushed once.
#[derive(Default)]
struct FaultCounts {
    loss_bursts: u64,
    lost_probes: u64,
    blackouts: u64,
    blackout_rounds: u64,
    storm_restarts: u64,
    storm_lost_rounds: u64,
    truncations: u64,
    truncated_rounds: u64,
    duplicates: u64,
    reorders: u64,
    cfg_restarts: u64,
    vantage_retries: u64,
    degraded_rounds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    fn block_with_avail(id: u64, n: u16, avail: f64) -> BlockSpec {
        BlockSpec::bare(id, 1234, BlockProfile::always_on(n, avail))
    }

    #[test]
    fn healthy_block_needs_one_probe_per_round() {
        let b = block_with_avail(1, 100, 1.0);
        let cfg = TrinocularConfig { transit_loss_rate: 0.0, ..Default::default() };
        let mut p = TrinocularProber::new(&b, cfg);
        let mut total = 0;
        for r in 0..100 {
            let rec = p.round(&b, r, r * 660).unwrap();
            total += rec.probes;
            assert_eq!(rec.state, BlockState::Up);
        }
        assert_eq!(total, 100, "one positive probe should settle each round");
    }

    #[test]
    fn transit_loss_costs_occasional_extra_probes() {
        let b = block_with_avail(30, 100, 1.0);
        let cfg = TrinocularConfig { transit_loss_rate: 0.05, ..Default::default() };
        let mut p = TrinocularProber::new(&b, cfg);
        let rounds = 2_000u64;
        let mut total = 0u64;
        for r in 0..rounds {
            total += p.round(&b, r, r * 660).unwrap().probes as u64;
        }
        let mean = total as f64 / rounds as f64;
        // Geometric with p = 0.95: mean 1/0.95 ≈ 1.053 probes/round.
        assert!(mean > 1.02 && mean < 1.12, "mean probes {mean}");
    }

    #[test]
    fn probe_budget_stays_under_paper_bound() {
        // "<20 probes/hour per /24" holds for typical availability; the
        // paper's own A≈0.19 example needs ~5 probes/round (≈28/hour).
        let b = block_with_avail(2, 200, 0.6);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        let rounds = 131 * 7; // a week
        let mut probes = 0u64;
        for r in 0..rounds {
            probes += p.round(&b, r, r * 660).unwrap().probes as u64;
        }
        let hours = rounds as f64 * 660.0 / 3_600.0;
        let per_hour = probes as f64 / hours;
        assert!(per_hour < 20.0, "probes/hour = {per_hour}");
    }

    #[test]
    fn low_availability_block_costs_five_probes_per_round() {
        // Stop-on-first-positive over A≈0.19 is geometric with mean
        // (1 − 0.81¹⁵)/0.19 ≈ 5 — the paper reports 5.08 for this block.
        let b = block_with_avail(20, 245, 0.191);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        let rounds = 1_833u64;
        let mut probes = 0u64;
        for r in 0..rounds {
            probes += p.round(&b, r, r * 660).unwrap().probes as u64;
        }
        let mean = probes as f64 / rounds as f64;
        assert!((mean - 5.0).abs() < 0.6, "mean probes/round = {mean}");
    }

    #[test]
    fn outage_detected_and_bounded() {
        let mut b = block_with_avail(3, 100, 0.9);
        // Outage rounds 200..230.
        b.outage = Some((200 * 660, 230 * 660));
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        for r in 0..400 {
            p.round(&b, r, r * 660).unwrap();
        }
        let outs = p.outages();
        assert_eq!(outs.len(), 1, "exactly one outage: {outs:?}");
        let o = outs[0];
        assert!(o.start_round >= 200 && o.start_round <= 203, "start {}", o.start_round);
        let end = o.end_round.expect("recovered");
        assert!((230..=233).contains(&end), "end {end}");
    }

    #[test]
    fn no_false_outages_on_healthy_block() {
        let b = block_with_avail(4, 150, 0.7);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        for r in 0..131 * 14 {
            p.round(&b, r, r * 660);
        }
        assert!(p.outages().is_empty(), "false outages: {:?}", p.outages());
    }

    #[test]
    fn belief_is_capped() {
        let b = block_with_avail(5, 100, 1.0);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        for r in 0..50 {
            p.round(&b, r, r * 660);
        }
        assert!(p.belief_up() <= 0.99);
        // And a down block pins at the other cap.
        let mut dead = block_with_avail(6, 100, 0.9);
        dead.outage = Some((0, u64::MAX));
        let mut pd = TrinocularProber::new(&dead, TrinocularConfig::default());
        for r in 0..50 {
            pd.round(&dead, r, r * 660);
        }
        assert!(pd.belief_up() >= 0.01);
        assert_eq!(pd.state(), BlockState::Down);
    }

    #[test]
    fn empty_block_yields_no_record() {
        let b = block_with_avail(7, 0, 0.5);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        assert!(p.round(&b, 0, 0).is_none());
    }

    #[test]
    fn estimator_converges_through_prober() {
        let b = block_with_avail(8, 120, 0.4);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        for r in 0..4_000 {
            p.round(&b, r, r * 660);
        }
        let a = p.estimator().a_short();
        // Per-address jitter shifts the block's true mean slightly off 0.4.
        let truth = b.true_availability(0);
        assert!((a - truth).abs() < 0.1, "Âs {a} vs truth {truth}");
    }

    #[test]
    fn run_produces_dense_records_without_restarts() {
        let b = block_with_avail(9, 80, 0.8);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        let run = p.run(&b, 0, 500);
        assert_eq!(run.records.len(), 500);
        assert_eq!(run.rounds, 500);
    }

    #[test]
    fn restarts_drop_some_rounds() {
        let b = block_with_avail(10, 80, 0.8);
        let mut p = TrinocularProber::new(&b, TrinocularConfig::a12w());
        let rounds = 3_000;
        let run = p.run(&b, 0, rounds);
        let missing = rounds as usize - run.records.len();
        // 99 restart rounds × 50 % loss ≈ 50 missing.
        let expected = (rounds / 30) as f64 * 0.5;
        assert!(
            (missing as f64 - expected).abs() < expected * 0.6,
            "missing {missing}, expected ≈{expected}"
        );
        // Missing rounds are exactly at restart multiples.
        let kept: std::collections::HashSet<u64> = run.records.iter().map(|r| r.round).collect();
        for r in 0..rounds {
            if r % 30 != 0 || r == 0 {
                assert!(kept.contains(&r), "round {r} unexpectedly missing");
            }
        }
    }

    #[test]
    fn unreachable_errors_conclude_outages_quickly() {
        // During a routed outage most probes return explicit unreachable
        // errors, so the prober reaches a down verdict within a couple of
        // probes instead of grinding through 15 timeouts.
        let mut b = block_with_avail(40, 150, 0.9);
        b.outage = Some((100 * 660, 200 * 660));
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        for r in 0..100 {
            p.round(&b, r, r * 660);
        }
        let rec = p.round(&b, 100, 100 * 660).unwrap();
        assert!(rec.probes <= 6, "unreachables are decisive, used {}", rec.probes);
        assert_eq!(p.state(), BlockState::Down);
        assert_eq!(p.outages().len(), 1);
    }

    fn blackout_plan(start_round: u64, len_rounds: u64) -> FaultPlan {
        FaultPlan {
            seed: 0xB1AC,
            blackout: Some(crate::faults::Blackout { start_round, len_rounds }),
            ..FaultPlan::none()
        }
    }

    #[test]
    fn degraded_rounds_engage_past_retry_budget() {
        let b = block_with_avail(50, 100, 0.9);
        let cfg = TrinocularConfig {
            vantage_retry: Some(VantageRetryConfig {
                attempts_per_retry: 2,
                recover_chance: 0.0, // the standby never answers
                retry_budget_rounds: 4,
            }),
            ..Default::default()
        };
        let mut p = TrinocularProber::new(&b, cfg);
        let plan = blackout_plan(50, 30);
        let run = p.run_with_faults(&b, 0, 120, &plan);
        let by_round: std::collections::HashMap<u64, &RoundRecord> =
            run.records.iter().map(|r| (r.round, r)).collect();
        // The first 4 dark rounds are lost outright (retry budget).
        for r in 50..54 {
            assert!(!by_round.contains_key(&r), "round {r} should be lost, not recorded");
        }
        // Past the budget every dark round is an explicit degraded record.
        for r in 54..80 {
            let rec = by_round.get(&r).unwrap_or_else(|| panic!("round {r} missing"));
            assert_eq!(rec.probes, 0, "degraded round {r} sends no probes");
            assert_eq!(rec.state, BlockState::Unknown);
        }
        // Normal probing resumes after the blackout.
        assert!(by_round[&80].probes > 0);
    }

    #[test]
    fn successful_failover_restores_observations() {
        let b = block_with_avail(51, 100, 0.9);
        let cfg = TrinocularConfig {
            vantage_retry: Some(VantageRetryConfig {
                recover_chance: 1.0, // the standby answers on the first try
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut p = TrinocularProber::new(&b, cfg);
        let run = p.run_with_faults(&b, 0, 120, &blackout_plan(50, 30));
        // Fail-over succeeds on dark round 1, so every blackout round is
        // observed through the standby vantage.
        assert_eq!(run.records.len(), 120);
        assert!(run.records.iter().all(|r| r.probes > 0));
    }

    #[test]
    fn vantage_retry_is_deterministic() {
        let b = block_with_avail(52, 100, 0.9);
        let cfg = TrinocularConfig {
            vantage_retry: Some(VantageRetryConfig::default()),
            ..Default::default()
        };
        let plan = blackout_plan(40, 50);
        let run_a = TrinocularProber::new(&b, cfg).run_with_faults(&b, 0, 150, &plan);
        let run_b = TrinocularProber::new(&b, cfg).run_with_faults(&b, 0, 150, &plan);
        assert_eq!(run_a.records, run_b.records);
    }

    #[test]
    fn retry_disabled_keeps_legacy_blackout_semantics() {
        let b = block_with_avail(53, 100, 0.9);
        let plan = blackout_plan(50, 30);
        let run = TrinocularProber::new(&b, TrinocularConfig::default())
            .run_with_faults(&b, 0, 120, &plan);
        // Every blacked-out round is silently lost, exactly as before.
        assert!(run.records.iter().all(|r| !(50..80).contains(&r.round)));
        assert_eq!(run.records.len(), 90);
    }

    #[test]
    fn walk_order_varies_by_block() {
        let b1 = block_with_avail(11, 64, 0.9);
        let b2 = block_with_avail(12, 64, 0.9);
        let p1 = TrinocularProber::new(&b1, TrinocularConfig::default());
        let p2 = TrinocularProber::new(&b2, TrinocularConfig::default());
        assert_ne!(p1.walk, p2.walk);
    }

    #[test]
    fn diurnal_block_not_marked_as_outage_when_stable_core_exists() {
        // 50 always-on + 100 diurnal: nights look sparser but the block
        // stays reachable, so no outage should be recorded.
        let b = BlockSpec::bare(
            13,
            77,
            BlockProfile {
                n_stable: 50,
                n_diurnal: 100,
                stable_avail: 0.95,
                diurnal_avail: 0.95,
                onset_hours: 8.0,
                onset_spread: 1.0,
                duration_hours: 8.0,
                duration_spread: 0.0,
                sigma_start: 0.2,
                sigma_duration: 0.2,
                utc_offset_hours: 0.0,
            },
        );
        let mut p = TrinocularProber::new(&b, TrinocularConfig::default());
        for r in 0..131 * 7 {
            p.round(&b, r, r * 660);
        }
        assert!(p.outages().is_empty(), "diurnal nights misread as outages");
    }
}
