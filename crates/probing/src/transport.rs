//! `SLPWFEED`: the fault-tolerant wire transport for [`RoundEvent`]
//! streams.
//!
//! The streaming engine (`sleepwatch_core::ingest`) consumes an event
//! feed; this module puts that feed on a wire that can be cut, corrupted
//! and slowed at any byte. The format reuses the workspace-wide framing
//! toolbox ([`sleepwatch_framing`]):
//!
//! * **Handshake.** The sender opens with the shared 64-byte
//!   [`Prelude`] (magic `SLPWFEED`, version, run identity, total event
//!   count). The receiver answers with the same prelude shape carrying
//!   the sequence number it wants to resume from. Both sides validate
//!   the other's identity, so a feed from a foreign run is refused with
//!   a typed [`DecodeError::IdentityMismatch`] before any event moves.
//! * **Frames.** Everything after the handshake is length-prefixed
//!   frames — events (sequence-numbered), heartbeats, and a terminal
//!   end-of-stream marker — each closed by a CRC32 chained to the
//!   handshake's header CRC so frames cannot be spliced between
//!   sessions. Decoding is total: damage is detected, never trusted.
//! * **Robustness.** The TCP client retries with seed-keyed jittered
//!   exponential backoff, resumes from its last applied sequence after
//!   every reconnect (nothing is lost, duplicates are dropped), treats
//!   any frame damage as a poisoned connection, counts and skips
//!   corruption in lenient mode (refuses in `strict`), and bounds
//!   in-flight memory to one frame — when the consumer stalls the
//!   client stops reading and TCP flow control pushes back on the
//!   sender.
//!
//! Both sources implement [`EventSource`], the one trait the ingest
//! feeder needs; the chaos oracle in `sleepwatch-testkit` proves that
//! verdicts ingested through this wire under severs, flips, stalls,
//! duplicated and reordered frames are Debug-identical to batch
//! analysis.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sleepwatch_framing::{check_identity, Crc32, DecodeError, Prelude, RunIdentity, PRELUDE_LEN};
use sleepwatch_geoecon::rng::hash_parts;

use crate::stream::RoundEvent;

// ---------------------------------------------------------------------------
// Wire constants
// ---------------------------------------------------------------------------

/// Feed magic: `SLPWFEED` as a little-endian u64.
pub const FEED_MAGIC: u64 = u64::from_le_bytes(*b"SLPWFEED");
/// Wire format version this build speaks.
pub const FEED_VERSION: u16 = 1;
/// Prelude `kind` byte for transport handshakes.
pub const FEED_KIND: u8 = b'T';
/// Prelude `mode`: sender's opening hello (`record_count` = total events).
pub const MODE_HELLO: u8 = 0;
/// Prelude `mode`: receiver's resume answer (`record_count` = resume-from
/// sequence).
pub const MODE_RESUME: u8 = 1;

/// Frame kind: a batch of sequence-numbered events.
pub const FRAME_EVENTS: u8 = 1;
/// Frame kind: liveness heartbeat carrying the sender's next sequence.
pub const FRAME_HEARTBEAT: u8 = 2;
/// Frame kind: end of stream, carrying the total event count.
pub const FRAME_END: u8 = 3;

/// Hard cap on a frame's declared body length: bounds in-flight memory
/// and turns corrupt length fields into detected damage instead of an
/// allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Smallest legal frame body: kind + sequence + CRC.
const MIN_FRAME_LEN: usize = 1 + 8 + 4;
/// Cap on events per encoded frame (keeps frames well under
/// [`MAX_FRAME_LEN`]).
pub const MAX_FRAME_EVENTS: usize = 4096;

// ---------------------------------------------------------------------------
// Errors and stats
// ---------------------------------------------------------------------------

/// Everything that can go terminally wrong on a transport.
///
/// Recoverable trouble (a severed connection, a damaged frame in lenient
/// mode) is handled inside the sources; what escapes is typed.
#[derive(Debug)]
pub enum TransportError {
    /// An I/O error the source could not retry past.
    Io(io::Error),
    /// The session handshake was unusable — including
    /// [`DecodeError::IdentityMismatch`], the typed refusal of a feed
    /// from a foreign run.
    Handshake(DecodeError),
    /// A damaged frame under `strict` mode (lenient mode counts and
    /// recovers instead).
    Corrupt {
        /// Frames accepted before the damage.
        frame: u64,
        /// What was malformed.
        detail: String,
    },
    /// The reconnect budget ran out without progress.
    Exhausted {
        /// Connection attempts made since the last applied frame.
        attempts: u32,
        /// Total backoff slept over those attempts, in milliseconds.
        waited_ms: u64,
        /// The last underlying failure.
        cause: String,
    },
}

impl TransportError {
    /// True when this error is the typed refusal of a foreign feed.
    pub fn is_foreign_feed(&self) -> bool {
        matches!(self, TransportError::Handshake(DecodeError::IdentityMismatch { .. }))
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Handshake(e) => write!(f, "transport handshake refused: {e}"),
            TransportError::Corrupt { frame, detail } => {
                write!(f, "corrupt frame after {frame} good frames (strict mode): {detail}")
            }
            TransportError::Exhausted { attempts, waited_ms, cause } => write!(
                f,
                "connection budget exhausted after {attempts} attempts \
                 ({waited_ms} ms of backoff); last error: {cause}"
            ),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Transport-side accounting, mirrored into the global `transport.*`
/// metrics as it accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted (events, heartbeats, end markers).
    pub frames: u64,
    /// Events delivered to the consumer.
    pub events: u64,
    /// Events received again after a resume and dropped.
    pub duplicates: u64,
    /// Connections re-established after the first.
    pub reconnects: u64,
    /// Damaged frames skipped (lenient mode).
    pub skipped_corrupt: u64,
    /// Events irrecoverably lost to skipped damage (file sources only;
    /// TCP re-fetches via resume instead).
    pub lost_events: u64,
    /// Total reconnect backoff slept, in milliseconds.
    pub backoff_ms: u64,
    /// Read timeouts while waiting for the peer.
    pub heartbeats_missed: u64,
    /// True once the terminal end-of-stream frame was consumed; a feed
    /// that ends without it is degraded.
    pub clean_end: bool,
}

// ---------------------------------------------------------------------------
// Handshake codec
// ---------------------------------------------------------------------------

/// Encodes the sender's opening hello.
pub fn encode_hello(identity: &RunIdentity, total_events: u64) -> [u8; PRELUDE_LEN] {
    Prelude {
        magic: FEED_MAGIC,
        version: FEED_VERSION,
        kind: FEED_KIND,
        mode: MODE_HELLO,
        identity: *identity,
        record_count: total_events,
    }
    .encode()
}

/// Encodes the receiver's resume answer.
pub fn encode_resume(identity: &RunIdentity, resume_from: u64) -> [u8; PRELUDE_LEN] {
    Prelude {
        magic: FEED_MAGIC,
        version: FEED_VERSION,
        kind: FEED_KIND,
        mode: MODE_RESUME,
        identity: *identity,
        record_count: resume_from,
    }
    .encode()
}

/// Validates a received handshake prelude: structure, magic/version/kind,
/// expected mode, and run identity. Returns the decoded prelude (whose
/// `record_count` carries the total or the resume sequence).
pub fn decode_handshake(
    bytes: &[u8],
    expected: &RunIdentity,
    want_mode: u8,
) -> Result<Prelude, DecodeError> {
    let p = Prelude::decode(bytes)?;
    p.require(FEED_MAGIC, FEED_VERSION, FEED_KIND)?;
    if p.mode != want_mode {
        return Err(DecodeError::BadMode { found: p.mode });
    }
    check_identity(expected, &p.identity)?;
    Ok(p)
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A batch of events; `seq` numbers the first one, the rest follow
    /// consecutively.
    Events {
        /// Sequence number of `events[0]`.
        seq: u64,
        /// The batch, in stream order.
        events: Vec<RoundEvent>,
    },
    /// Liveness marker carrying the sender's next sequence number.
    Heartbeat {
        /// The sequence the sender will emit next.
        next_seq: u64,
    },
    /// End of stream carrying the total event count.
    End {
        /// Total events the stream held.
        total: u64,
    },
}

/// What [`decode_frame`] found at the head of a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameDecode {
    /// A valid frame and the bytes it consumed.
    Frame {
        /// The decoded frame.
        frame: Frame,
        /// Bytes consumed from the buffer, length prefix included.
        consumed: usize,
    },
    /// The buffer holds an incomplete frame; `need` total bytes would
    /// complete it.
    NeedMore {
        /// Bytes (from the buffer start) required for the next decode.
        need: usize,
    },
    /// The head of the buffer is damaged. When the declared length was
    /// plausible, `skip` tells a file reader how far to jump to try the
    /// next frame; `None` means the stream is unframeable from here.
    Damaged {
        /// Bytes to skip to resynchronise, when the length was usable.
        skip: Option<usize>,
        /// What was malformed.
        detail: &'static str,
    },
}

fn put_event(out: &mut Vec<u8>, ev: &RoundEvent) {
    match *ev {
        RoundEvent::Round { block_id, round, a_short } => {
            out.push(0);
            out.extend_from_slice(&block_id.to_le_bytes());
            out.extend_from_slice(&round.to_le_bytes());
            out.extend_from_slice(&a_short.to_bits().to_le_bytes());
        }
        RoundEvent::Finish { block_id, outages, total_probes } => {
            out.push(1);
            out.extend_from_slice(&block_id.to_le_bytes());
            out.extend_from_slice(&outages.to_le_bytes());
            out.extend_from_slice(&total_probes.to_le_bytes());
        }
    }
}

fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("bounds checked"))
}

fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("bounds checked"))
}

/// Parses an events payload (count-prefixed tagged records). Returns
/// `None` on any malformation.
fn parse_events(payload: &[u8]) -> Option<Vec<RoundEvent>> {
    if payload.len() < 4 {
        return None;
    }
    let count = get_u32(payload, 0) as usize;
    if count > MAX_FRAME_EVENTS {
        return None;
    }
    let mut events = Vec::with_capacity(count);
    let mut at = 4usize;
    for _ in 0..count {
        let tag = *payload.get(at)?;
        at += 1;
        match tag {
            0 => {
                if payload.len() < at + 24 {
                    return None;
                }
                events.push(RoundEvent::Round {
                    block_id: get_u64(payload, at),
                    round: get_u64(payload, at + 8),
                    a_short: f64::from_bits(get_u64(payload, at + 16)),
                });
                at += 24;
            }
            1 => {
                if payload.len() < at + 20 {
                    return None;
                }
                events.push(RoundEvent::Finish {
                    block_id: get_u64(payload, at),
                    outages: get_u32(payload, at + 8),
                    total_probes: get_u64(payload, at + 12),
                });
                at += 20;
            }
            _ => return None,
        }
    }
    if at != payload.len() {
        return None; // trailing bytes: the frame lied about its count
    }
    Some(events)
}

/// Encodes one frame into `out`, chaining its CRC to `chain` (the
/// session's handshake header CRC).
pub fn encode_frame(out: &mut Vec<u8>, frame: &Frame, chain: u32) {
    let mut body = Vec::new();
    match frame {
        Frame::Events { seq, events } => {
            assert!(events.len() <= MAX_FRAME_EVENTS, "frame too large");
            body.push(FRAME_EVENTS);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for ev in events {
                put_event(&mut body, ev);
            }
        }
        Frame::Heartbeat { next_seq } => {
            body.push(FRAME_HEARTBEAT);
            body.extend_from_slice(&next_seq.to_le_bytes());
        }
        Frame::End { total } => {
            body.push(FRAME_END);
            body.extend_from_slice(&total.to_le_bytes());
        }
    }
    let mut crc = Crc32::new();
    crc.update(&chain.to_le_bytes());
    crc.update(&body);
    let crc = crc.finish();
    let len = body.len() + 4;
    debug_assert!(len <= MAX_FRAME_LEN);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes the frame at the head of `buf`. Total: any malformed input is
/// reported as [`FrameDecode::Damaged`] or [`FrameDecode::NeedMore`],
/// never trusted, never panics, never reads past the slice.
pub fn decode_frame(buf: &[u8], chain: u32) -> FrameDecode {
    if buf.len() < 4 {
        return FrameDecode::NeedMore { need: 4 };
    }
    let len = get_u32(buf, 0) as usize;
    if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&len) {
        return FrameDecode::Damaged { skip: None, detail: "implausible frame length" };
    }
    if buf.len() < 4 + len {
        return FrameDecode::NeedMore { need: 4 + len };
    }
    let body = &buf[4..4 + len - 4];
    let declared = get_u32(buf, 4 + len - 4);
    let mut crc = Crc32::new();
    crc.update(&chain.to_le_bytes());
    crc.update(body);
    if crc.finish() != declared {
        return FrameDecode::Damaged { skip: Some(4 + len), detail: "frame crc mismatch" };
    }
    let kind = body[0];
    let seq = get_u64(body, 1);
    let payload = &body[9..];
    let frame = match kind {
        FRAME_EVENTS => match parse_events(payload) {
            Some(events) => Frame::Events { seq, events },
            None => {
                return FrameDecode::Damaged { skip: Some(4 + len), detail: "malformed events" }
            }
        },
        FRAME_HEARTBEAT if payload.is_empty() => Frame::Heartbeat { next_seq: seq },
        FRAME_END if payload.is_empty() => Frame::End { total: seq },
        _ => return FrameDecode::Damaged { skip: Some(4 + len), detail: "unknown frame kind" },
    };
    FrameDecode::Frame { frame, consumed: 4 + len }
}

// ---------------------------------------------------------------------------
// The EventSource trait
// ---------------------------------------------------------------------------

/// A blocking, pull-based source of [`RoundEvent`]s — the one interface
/// the ingest feeder consumes. Pull-based is the backpressure story:
/// while the consumer is not calling [`EventSource::next_event`], a
/// socket-backed source is not reading, and TCP flow control pushes back
/// on the sender with no unbounded buffering anywhere.
pub trait EventSource {
    /// The next event, blocking as needed. `Ok(None)` is end of stream.
    fn next_event(&mut self) -> Result<Option<RoundEvent>, TransportError>;

    /// Transport accounting so far.
    fn stats(&self) -> TransportStats;
}

/// Adapts an in-memory iterator to [`EventSource`] — the zero-transport
/// baseline benches compare the wire against.
pub struct IterSource<I> {
    iter: I,
    stats: TransportStats,
}

impl<I: Iterator<Item = RoundEvent>> IterSource<I> {
    /// Wraps an iterator.
    pub fn new(iter: I) -> Self {
        IterSource { iter, stats: TransportStats { clean_end: true, ..Default::default() } }
    }
}

impl<I: Iterator<Item = RoundEvent>> EventSource for IterSource<I> {
    fn next_event(&mut self) -> Result<Option<RoundEvent>, TransportError> {
        let ev = self.iter.next();
        if ev.is_some() {
            self.stats.events += 1;
        }
        Ok(ev)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Sequence bookkeeping shared by both sources
// ---------------------------------------------------------------------------

/// Applies an events frame against the receiver's cursor: drops the
/// already-seen prefix (resume duplicates), detects gaps.
enum Applied {
    /// The frame was applied; `dupes` already-seen events were dropped.
    Ok { dupes: u64 },
    /// The frame starts past the cursor: events never arrived.
    Gap,
}

fn apply_events(
    next_seq: &mut u64,
    seq: u64,
    events: Vec<RoundEvent>,
    pending: &mut VecDeque<RoundEvent>,
) -> Applied {
    let end = seq + events.len() as u64;
    if seq > *next_seq {
        return Applied::Gap;
    }
    if end <= *next_seq {
        return Applied::Ok { dupes: events.len() as u64 };
    }
    let skip = (*next_seq - seq) as usize;
    pending.extend(events.into_iter().skip(skip));
    *next_seq = end;
    Applied::Ok { dupes: skip as u64 }
}

fn obs() -> &'static sleepwatch_obs::TransportMetrics {
    &sleepwatch_obs::global().transport
}

// ---------------------------------------------------------------------------
// File / pipe source
// ---------------------------------------------------------------------------

/// Serializes a whole feed (hello, event frames, end marker) — the file
/// the [`FileSource`] reads and `sleepwatch feed --to-file` writes.
pub fn write_feed<W: Write>(
    w: &mut W,
    events: &[RoundEvent],
    identity: &RunIdentity,
    frame_events: usize,
) -> io::Result<()> {
    let hello = encode_hello(identity, events.len() as u64);
    let chain = crate::transport::header_crc_of(&hello);
    w.write_all(&hello)?;
    let frame_events = frame_events.clamp(1, MAX_FRAME_EVENTS);
    let mut out = Vec::new();
    let mut seq = 0u64;
    for batch in events.chunks(frame_events) {
        out.clear();
        encode_frame(&mut out, &Frame::Events { seq, events: batch.to_vec() }, chain);
        w.write_all(&out)?;
        seq += batch.len() as u64;
    }
    out.clear();
    encode_frame(&mut out, &Frame::End { total: seq }, chain);
    w.write_all(&out)?;
    w.flush()
}

/// The header CRC a handshake prelude carries (the per-session chain
/// seed for every frame CRC).
pub fn header_crc_of(prelude: &[u8; PRELUDE_LEN]) -> u32 {
    get_u32(prelude, 56)
}

/// Reads a feed from a file or pipe.
///
/// Lenient mode skips damaged frames (counting them, and counting the
/// events lost to the skip), heals a torn tail to the valid prefix, and
/// resynchronises on sequence gaps; `strict` refuses the first damage
/// with a typed error. A file cannot be re-asked for lost bytes, so the
/// skip-and-count here is genuinely lossy — the TCP source instead
/// reconnects and resumes, losing nothing.
pub struct FileSource<R> {
    r: R,
    buf: Vec<u8>,
    start: usize,
    chain: u32,
    next_seq: u64,
    pending: VecDeque<RoundEvent>,
    strict: bool,
    stats: TransportStats,
    done: bool,
    eof: bool,
}

impl<R: Read> FileSource<R> {
    /// Reads and validates the hello handshake; a foreign identity is
    /// refused before any event is decoded.
    pub fn new(mut r: R, expected: &RunIdentity, strict: bool) -> Result<Self, TransportError> {
        let mut hello = [0u8; PRELUDE_LEN];
        r.read_exact(&mut hello).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                TransportError::Handshake(DecodeError::Truncated { need: PRELUDE_LEN, have: 0 })
            }
            _ => TransportError::Io(e),
        })?;
        decode_handshake(&hello, expected, MODE_HELLO).map_err(TransportError::Handshake)?;
        Ok(FileSource {
            r,
            buf: Vec::with_capacity(64 << 10),
            start: 0,
            chain: header_crc_of(&hello),
            next_seq: 0,
            pending: VecDeque::new(),
            strict,
            stats: TransportStats::default(),
            done: false,
            eof: false,
        })
    }

    fn fill(&mut self) -> io::Result<usize> {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 64 << 10];
        let n = self.r.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn corrupt(&mut self, detail: &'static str) -> Result<(), TransportError> {
        self.stats.skipped_corrupt += 1;
        obs().skipped_corrupt.incr();
        if self.strict {
            self.done = true;
            return Err(TransportError::Corrupt {
                frame: self.stats.frames,
                detail: detail.to_string(),
            });
        }
        Ok(())
    }
}

impl<R: Read> EventSource for FileSource<R> {
    fn next_event(&mut self) -> Result<Option<RoundEvent>, TransportError> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                self.stats.events += 1;
                return Ok(Some(ev));
            }
            if self.done {
                return Ok(None);
            }
            match decode_frame(&self.buf[self.start..], self.chain) {
                FrameDecode::NeedMore { .. } if !self.eof => {
                    if self.fill()? == 0 {
                        self.eof = true;
                    }
                }
                FrameDecode::NeedMore { .. } => {
                    // Torn tail: heal to the valid prefix (or refuse).
                    if self.start < self.buf.len() {
                        self.corrupt("torn trailing frame")?;
                    }
                    self.done = true;
                }
                FrameDecode::Damaged { skip, detail } => {
                    self.corrupt(detail)?;
                    match skip {
                        Some(n) => self.start += n.min(self.buf.len() - self.start),
                        // The length field itself is untrustworthy: the
                        // rest of the stream is unframeable.
                        None => self.done = true,
                    }
                }
                FrameDecode::Frame { frame, consumed } => {
                    self.start += consumed;
                    self.stats.frames += 1;
                    obs().frames.incr();
                    match frame {
                        Frame::Events { seq, events } => {
                            if seq > self.next_seq {
                                // A file cannot be re-read past a skip:
                                // account the loss and resync forward.
                                let missing = seq - self.next_seq;
                                if self.strict {
                                    self.done = true;
                                    return Err(TransportError::Corrupt {
                                        frame: self.stats.frames,
                                        detail: format!("sequence gap of {missing} events"),
                                    });
                                }
                                self.stats.lost_events += missing;
                                self.next_seq = seq;
                            }
                            match apply_events(&mut self.next_seq, seq, events, &mut self.pending) {
                                Applied::Ok { dupes, .. } => self.stats.duplicates += dupes,
                                Applied::Gap => unreachable!("gap resynced above"),
                            }
                        }
                        Frame::Heartbeat { .. } => {}
                        Frame::End { total } => {
                            if total > self.next_seq {
                                let missing = total - self.next_seq;
                                if self.strict {
                                    self.done = true;
                                    return Err(TransportError::Corrupt {
                                        frame: self.stats.frames,
                                        detail: format!("stream ended {missing} events short"),
                                    });
                                }
                                self.stats.lost_events += missing;
                            } else {
                                self.stats.clean_end = true;
                            }
                            self.done = true;
                        }
                    }
                }
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Seed-keyed exponential backoff with jitter for reconnect attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First-retry delay, milliseconds.
    pub base_ms: u64,
    /// Cap on any single delay, milliseconds.
    pub max_ms: u64,
    /// Consecutive attempts without progress before giving up.
    pub attempts: u32,
    /// Jitter seed: the same seed replays the same delays.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig { base_ms: 25, max_ms: 800, attempts: 8, seed: 0x5EED_BACC }
    }
}

impl BackoffConfig {
    /// The delay before retry `attempt` (0-based): exponential, capped,
    /// with deterministic jitter in the upper half of the window.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(16)).min(self.max_ms.max(1));
        let jitter = hash_parts(&[self.seed, 0x6A17_7E12, u64::from(attempt)]);
        exp / 2 + jitter % (exp / 2 + 1)
    }

    /// Worst-case total sleep across the whole attempt budget — the
    /// "one backoff budget" the recovery bench gates against.
    pub fn budget_ms(&self) -> u64 {
        (0..self.attempts)
            .map(|a| self.base_ms.saturating_mul(1u64 << a.min(16)).min(self.max_ms.max(1)))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// TCP source
// ---------------------------------------------------------------------------

/// Where a TCP endpoint gets its peer: dial out, or accept on a bound
/// listener. Both sides of the feed support both, so either process can
/// be the one that listens.
pub enum Endpoint {
    /// Connect to this address.
    Dial(String),
    /// Accept connections on this listener.
    Accept(TcpListener),
}

impl Endpoint {
    /// One connection attempt, bounded by `wait`.
    fn open(&self, wait: Duration) -> io::Result<TcpStream> {
        match self {
            Endpoint::Dial(addr) => TcpStream::connect(addr.as_str()),
            Endpoint::Accept(listener) => {
                listener.set_nonblocking(true)?;
                let deadline = Instant::now() + wait;
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            return Ok(stream);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            if Instant::now() >= deadline {
                                return Err(io::Error::new(
                                    io::ErrorKind::TimedOut,
                                    "no peer connected within the accept window",
                                ));
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

/// Tuning for the TCP client.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Run identity both handshake directions are validated against.
    pub identity: RunIdentity,
    /// Per-read timeout; each expiry counts one missed heartbeat.
    pub read_timeout: Duration,
    /// Consecutive missed heartbeats tolerated before the connection is
    /// declared dead and rebuilt.
    pub heartbeat_budget: u32,
    /// Reconnect backoff and attempt budget.
    pub backoff: BackoffConfig,
    /// Refuse damaged frames instead of reconnecting past them.
    pub strict: bool,
}

impl TcpConfig {
    /// Defaults around an identity: 500 ms reads, 4 missed heartbeats,
    /// default backoff, lenient.
    pub fn new(identity: RunIdentity) -> Self {
        TcpConfig {
            identity,
            read_timeout: Duration::from_millis(500),
            heartbeat_budget: 4,
            backoff: BackoffConfig::default(),
            strict: false,
        }
    }
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
    misses: u32,
}

/// Why the current connection is unusable (recoverable: reconnect).
enum Poison {
    Corrupt(&'static str),
    Silent,
    Gone(String),
}

/// Receives a feed over TCP with reconnect-and-resume.
///
/// Every accepted frame advances a sequence cursor; after any sever,
/// timeout past budget, damage or gap, the connection is dropped and the
/// next handshake asks the sender to resume from the cursor — so chaos
/// on the wire costs retries, never events. The attempt budget is
/// charged per stretch of no progress and refilled by every applied
/// frame.
pub struct TcpEventSource {
    endpoint: Endpoint,
    cfg: TcpConfig,
    conn: Option<Conn>,
    connected_once: bool,
    next_seq: u64,
    pending: VecDeque<RoundEvent>,
    stats: TransportStats,
    failures: u32,
    waited_ms: u64,
    last_error: String,
    done: bool,
}

impl TcpEventSource {
    /// A client that dials `addr`.
    pub fn dial(addr: impl Into<String>, cfg: TcpConfig) -> Self {
        TcpEventSource::over(Endpoint::Dial(addr.into()), cfg)
    }

    /// A client that accepts its peer on `listener`.
    pub fn accept(listener: TcpListener, cfg: TcpConfig) -> Self {
        TcpEventSource::over(Endpoint::Accept(listener), cfg)
    }

    /// A client over any endpoint.
    pub fn over(endpoint: Endpoint, cfg: TcpConfig) -> Self {
        TcpEventSource {
            endpoint,
            cfg,
            conn: None,
            connected_once: false,
            next_seq: 0,
            pending: VecDeque::new(),
            stats: TransportStats::default(),
            failures: 0,
            waited_ms: 0,
            last_error: String::new(),
            done: false,
        }
    }

    /// One connect + handshake attempt.
    fn connect_once(&mut self) -> Result<Conn, TransportError> {
        let stream = self.endpoint.open(self.cfg.read_timeout)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_nodelay(true)?;
        let mut hello = [0u8; PRELUDE_LEN];
        let mut stream = stream;
        stream.read_exact(&mut hello).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TransportError::Handshake(DecodeError::Truncated { need: PRELUDE_LEN, have: 0 })
            } else {
                TransportError::Io(e)
            }
        })?;
        decode_handshake(&hello, &self.cfg.identity, MODE_HELLO)
            .map_err(TransportError::Handshake)?;
        stream.write_all(&encode_resume(&self.cfg.identity, self.next_seq))?;
        stream.flush()?;
        Ok(Conn { stream, buf: Vec::with_capacity(64 << 10), start: 0, misses: 0 })
    }

    /// Establishes a connection, burning backoff budget on failures.
    /// Only an identity mismatch is instantly fatal — everything else
    /// (refused dials, torn handshakes, flipped handshake bytes) is
    /// retried until the budget runs dry.
    fn ensure_conn(&mut self) -> Result<(), TransportError> {
        while self.conn.is_none() {
            if self.failures >= self.cfg.backoff.attempts {
                return Err(TransportError::Exhausted {
                    attempts: self.failures,
                    waited_ms: self.waited_ms,
                    cause: std::mem::take(&mut self.last_error),
                });
            }
            if self.failures > 0 || self.connected_once {
                let delay = self.cfg.backoff.delay_ms(self.failures);
                std::thread::sleep(Duration::from_millis(delay));
                self.stats.backoff_ms += delay;
                self.waited_ms += delay;
                obs().backoff_ms.add(delay);
            }
            match self.connect_once() {
                Ok(conn) => {
                    if self.connected_once {
                        self.stats.reconnects += 1;
                        obs().reconnects.incr();
                    }
                    self.connected_once = true;
                    self.conn = Some(conn);
                }
                Err(e) if e.is_foreign_feed() => return Err(e),
                Err(e) => {
                    self.failures += 1;
                    self.last_error = e.to_string();
                }
            }
        }
        Ok(())
    }

    /// Applied progress refills the attempt budget: a storm of severs
    /// that each let *some* frames through can run arbitrarily long.
    fn progress(&mut self) {
        self.failures = 0;
        self.waited_ms = 0;
    }

    /// Reads until one frame is applied (or the connection poisons).
    fn pump(&mut self) -> Result<(), Poison> {
        let chain = self.chain();
        let conn = self.conn.as_mut().expect("pump without connection");
        loop {
            match decode_frame(&conn.buf[conn.start..], chain) {
                FrameDecode::NeedMore { .. } => {
                    if conn.start > 0 {
                        conn.buf.drain(..conn.start);
                        conn.start = 0;
                    }
                    let mut chunk = [0u8; 64 << 10];
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => return Err(Poison::Gone("peer closed mid-stream".into())),
                        Ok(n) => {
                            conn.buf.extend_from_slice(&chunk[..n]);
                            conn.misses = 0;
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            conn.misses += 1;
                            self.stats.heartbeats_missed += 1;
                            obs().heartbeats_missed.incr();
                            if conn.misses > self.cfg.heartbeat_budget {
                                return Err(Poison::Silent);
                            }
                        }
                        Err(e) => return Err(Poison::Gone(e.to_string())),
                    }
                }
                FrameDecode::Damaged { detail, .. } => {
                    // On a socket, damage poisons the whole connection:
                    // resume re-fetches everything after the cursor, so
                    // skipping would only risk trusting a lying length.
                    return Err(Poison::Corrupt(detail));
                }
                FrameDecode::Frame { frame, consumed } => {
                    conn.start += consumed;
                    self.stats.frames += 1;
                    obs().frames.incr();
                    match frame {
                        Frame::Events { seq, events } => {
                            match apply_events(&mut self.next_seq, seq, events, &mut self.pending) {
                                Applied::Ok { dupes, .. } => {
                                    self.stats.duplicates += dupes;
                                    return Ok(());
                                }
                                // Reordered past the cursor: the missing
                                // frame may never come; resume fixes it.
                                Applied::Gap => return Err(Poison::Corrupt("sequence gap")),
                            }
                        }
                        Frame::Heartbeat { next_seq } => {
                            conn.misses = 0;
                            if next_seq > self.next_seq {
                                return Err(Poison::Corrupt("heartbeat ahead of cursor"));
                            }
                            return Ok(());
                        }
                        Frame::End { total } => {
                            if total > self.next_seq {
                                return Err(Poison::Corrupt("end marker ahead of cursor"));
                            }
                            self.stats.clean_end = true;
                            self.done = true;
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// The per-session CRC chain seed: the hello this client would
    /// accept. Both sides derive it from the identity, so it needs no
    /// extra state per connection — but it *does* bind frames to the
    /// run identity.
    fn chain(&self) -> u32 {
        // The sender's hello varies only in record_count; chain on the
        // identity-bearing resume form instead, which both sides can
        // compute without remembering the hello bytes.
        header_crc_of(&encode_resume(&self.cfg.identity, 0))
    }
}

impl EventSource for TcpEventSource {
    fn next_event(&mut self) -> Result<Option<RoundEvent>, TransportError> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                self.stats.events += 1;
                return Ok(Some(ev));
            }
            if self.done {
                return Ok(None);
            }
            self.ensure_conn()?;
            match self.pump() {
                Ok(()) => self.progress(),
                Err(poison) => {
                    self.conn = None;
                    self.failures += 1;
                    match poison {
                        Poison::Corrupt(detail) => {
                            self.stats.skipped_corrupt += 1;
                            obs().skipped_corrupt.incr();
                            self.last_error = format!("corrupt frame: {detail}");
                            if self.cfg.strict {
                                return Err(TransportError::Corrupt {
                                    frame: self.stats.frames,
                                    detail: detail.to_string(),
                                });
                            }
                        }
                        Poison::Silent => {
                            self.last_error = format!(
                                "peer silent past {} missed heartbeats",
                                self.cfg.heartbeat_budget
                            );
                        }
                        Poison::Gone(cause) => self.last_error = cause,
                    }
                }
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Feed server (the sender)
// ---------------------------------------------------------------------------

/// Tuning for the sending side.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Run identity carried in the hello and demanded of the receiver's
    /// resume answer.
    pub identity: RunIdentity,
    /// Events per frame.
    pub frame_events: usize,
    /// A heartbeat every this many event frames.
    pub heartbeat_every: u64,
    /// Read timeout while waiting for the receiver's resume answer.
    pub resume_timeout: Duration,
}

impl FeedConfig {
    /// Defaults around an identity.
    pub fn new(identity: RunIdentity) -> Self {
        FeedConfig {
            identity,
            frame_events: 256,
            heartbeat_every: 32,
            resume_timeout: Duration::from_millis(2_000),
        }
    }
}

/// Serves one connection: hello out, resume answer in (foreign receivers
/// refused), then frames from the requested sequence, heartbeats
/// interleaved, end marker last. `Ok(true)` means the full stream
/// including the end marker was written and flushed.
pub fn serve_connection(
    stream: &mut TcpStream,
    events: &[RoundEvent],
    cfg: &FeedConfig,
) -> Result<bool, TransportError> {
    stream.set_read_timeout(Some(cfg.resume_timeout))?;
    stream.set_nodelay(true)?;
    stream.write_all(&encode_hello(&cfg.identity, events.len() as u64))?;
    stream.flush()?;
    let mut resume = [0u8; PRELUDE_LEN];
    stream.read_exact(&mut resume).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TransportError::Handshake(DecodeError::Truncated { need: PRELUDE_LEN, have: 0 })
        } else {
            TransportError::Io(e)
        }
    })?;
    let answer =
        decode_handshake(&resume, &cfg.identity, MODE_RESUME).map_err(TransportError::Handshake)?;
    let chain = header_crc_of(&encode_resume(&cfg.identity, 0));
    let from = (answer.record_count as usize).min(events.len());
    let frame_events = cfg.frame_events.clamp(1, MAX_FRAME_EVENTS);
    let mut out = Vec::with_capacity(frame_events * 32 + 64);
    let mut seq = from as u64;
    for (i, batch) in events[from..].chunks(frame_events).enumerate() {
        out.clear();
        encode_frame(&mut out, &Frame::Events { seq, events: batch.to_vec() }, chain);
        seq += batch.len() as u64;
        if cfg.heartbeat_every > 0 && (i as u64 + 1) % cfg.heartbeat_every == 0 {
            encode_frame(&mut out, &Frame::Heartbeat { next_seq: seq }, chain);
        }
        stream.write_all(&out)?;
    }
    out.clear();
    encode_frame(&mut out, &Frame::End { total: events.len() as u64 }, chain);
    stream.write_all(&out)?;
    stream.flush()?;
    Ok(true)
}

/// Runs a replaying feed server until `stop` is raised (accept mode) or
/// the stream is delivered end-to-end once (dial mode). Returns
/// connections served.
///
/// Accept mode keeps serving fresh connections — a client that lost its
/// socket reconnects and resumes — and treats per-connection failures as
/// that client's problem. Dial mode retries with the backoff budget and
/// stops after the first complete delivery.
pub fn serve_feed(
    endpoint: &Endpoint,
    events: &[RoundEvent],
    cfg: &FeedConfig,
    backoff: &BackoffConfig,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<u32, TransportError> {
    use std::sync::atomic::Ordering;
    let mut served = 0u32;
    let mut failures = 0u32;
    let mut waited = 0u64;
    let mut last_error = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(served);
        }
        if failures >= backoff.attempts {
            return Err(TransportError::Exhausted {
                attempts: failures,
                waited_ms: waited,
                cause: last_error,
            });
        }
        if failures > 0 {
            let delay = backoff.delay_ms(failures - 1);
            std::thread::sleep(Duration::from_millis(delay));
            waited += delay;
        }
        match endpoint.open(Duration::from_millis(200)) {
            Ok(mut stream) => match serve_connection(&mut stream, events, cfg) {
                Ok(complete) => {
                    served += 1;
                    failures = 0;
                    waited = 0;
                    if complete && matches!(endpoint, Endpoint::Dial(_)) {
                        return Ok(served);
                    }
                }
                Err(e) if e.is_foreign_feed() => return Err(e),
                Err(e) => {
                    // The receiver will reconnect and resume; in accept
                    // mode this costs nothing but the connection.
                    if matches!(endpoint, Endpoint::Dial(_)) {
                        failures += 1;
                    }
                    last_error = e.to_string();
                }
            },
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                // Accept window expired with no client: not a failure,
                // just poll `stop` again.
                if matches!(endpoint, Endpoint::Dial(_)) {
                    failures += 1;
                    last_error = e.to_string();
                }
            }
            Err(e) => {
                failures += 1;
                last_error = e.to_string();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn ident() -> RunIdentity {
        RunIdentity { world_seed: 7, num_blocks: 3, rounds: 40, start_time: 1_000 }
    }

    fn sample_events(n: u64) -> Vec<RoundEvent> {
        let mut out: Vec<RoundEvent> = (0..n)
            .map(|i| RoundEvent::Round { block_id: i % 3, round: i, a_short: i as f64 / n as f64 })
            .collect();
        out.push(RoundEvent::Finish { block_id: 0, outages: 2, total_probes: 99 });
        out
    }

    #[test]
    fn frame_roundtrip_exact() {
        let events = sample_events(10);
        for frame in [
            Frame::Events { seq: 5, events: events.clone() },
            Frame::Heartbeat { next_seq: 17 },
            Frame::End { total: 11 },
        ] {
            let mut buf = Vec::new();
            encode_frame(&mut buf, &frame, 0xDEAD_BEEF);
            match decode_frame(&buf, 0xDEAD_BEEF) {
                FrameDecode::Frame { frame: got, consumed } => {
                    assert_eq!(got, frame);
                    assert_eq!(consumed, buf.len());
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_crc_is_chained_to_the_session() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &Frame::Heartbeat { next_seq: 1 }, 1);
        assert!(
            matches!(decode_frame(&buf, 2), FrameDecode::Damaged { .. }),
            "a frame from another session must not decode"
        );
    }

    #[test]
    fn handshake_refuses_foreign_identity() {
        let hello = encode_hello(&ident(), 10);
        let mut other = ident();
        other.world_seed ^= 1;
        let err = decode_handshake(&hello, &other, MODE_HELLO).unwrap_err();
        assert!(matches!(err, DecodeError::IdentityMismatch { .. }), "{err:?}");
    }

    #[test]
    fn file_source_roundtrip_and_torn_tail() {
        let events = sample_events(500);
        let mut bytes = Vec::new();
        write_feed(&mut bytes, &events, &ident(), 64).unwrap();

        let mut src = FileSource::new(&bytes[..], &ident(), true).unwrap();
        let mut got = Vec::new();
        while let Some(ev) = src.next_event().unwrap() {
            got.push(ev);
        }
        assert_eq!(got, events);
        assert!(src.stats().clean_end);

        // Torn tail heals to a valid prefix in lenient mode (the cut
        // lands inside the last events frame, past the End marker's
        // length and the final frame's checksum).
        let torn = &bytes[..bytes.len() - 100];
        let mut src = FileSource::new(torn, &ident(), false).unwrap();
        let mut got = Vec::new();
        while let Some(ev) = src.next_event().unwrap() {
            got.push(ev);
        }
        assert!(!got.is_empty() && got.len() < events.len());
        assert_eq!(got[..], events[..got.len()]);
        assert!(!src.stats().clean_end);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let b = BackoffConfig::default();
        for a in 0..10 {
            let d = b.delay_ms(a);
            assert_eq!(d, b.delay_ms(a), "same seed, same delay");
            assert!(d <= b.max_ms, "delay {d} over cap");
        }
        assert!(b.budget_ms() >= b.base_ms);
        let other = BackoffConfig { seed: 1, ..b };
        assert!((0..8).any(|a| b.delay_ms(a) != other.delay_ms(a)), "jitter ignores seed");
    }

    #[test]
    fn tcp_roundtrip_with_resume_after_server_restart() {
        let events = sample_events(2_000);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            let events = events.clone();
            std::thread::spawn(move || {
                serve_feed(
                    &Endpoint::Accept(listener),
                    &events,
                    &FeedConfig::new(ident()),
                    &BackoffConfig::default(),
                    &stop,
                )
            })
        };
        let mut cfg = TcpConfig::new(ident());
        cfg.read_timeout = Duration::from_millis(200);
        let mut client = TcpEventSource::dial(addr.to_string(), cfg);
        let mut got = Vec::new();
        while let Some(ev) = client.next_event().unwrap() {
            got.push(ev);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        server.join().unwrap().unwrap();
        assert_eq!(got, events);
        assert!(client.stats().clean_end);
        assert_eq!(client.stats().events, events.len() as u64);
    }

    #[test]
    fn tcp_refuses_foreign_feed_with_typed_error() {
        let events = sample_events(50);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _ = serve_feed(
                    &Endpoint::Accept(listener),
                    &events,
                    &FeedConfig::new(ident()),
                    &BackoffConfig::default(),
                    &stop,
                );
            })
        };
        let mut foreign = ident();
        foreign.num_blocks += 1;
        let mut cfg = TcpConfig::new(foreign);
        cfg.read_timeout = Duration::from_millis(200);
        let mut client = TcpEventSource::dial(addr.to_string(), cfg);
        let err = match client.next_event() {
            Ok(Some(_)) => panic!("foreign feed delivered events"),
            Ok(None) => panic!("foreign feed ended cleanly"),
            Err(e) => e,
        };
        assert!(err.is_foreign_feed(), "{err}");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        server.join().unwrap();
    }

    #[test]
    fn exhausted_budget_is_a_typed_error() {
        // Nothing listens on this address (bound, never accepted, then
        // dropped): every dial fails and the budget drains.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut cfg = TcpConfig::new(ident());
        cfg.backoff = BackoffConfig { base_ms: 1, max_ms: 2, attempts: 3, seed: 9 };
        let mut client = TcpEventSource::dial(dead.to_string(), cfg);
        match client.next_event() {
            Err(TransportError::Exhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
