//! Adaptive probing substrate for sleepwatch.
//!
//! Two collection modes, mirroring the paper's two dataset families (§2.5):
//!
//! * [`trinocular`]: the outage-detection prober of Quan et al. (SIGCOMM
//!   2013) — Bayesian belief per block, pseudorandom walk over the
//!   ever-active addresses, at most 15 probes per 11-minute round, stop at
//!   the first conclusive belief. Its `(positives, total)` counts feed the
//!   §2.1 availability estimators; its 5.5-hour restart schedule reproduces
//!   the Fig. 10 probing artifact.
//! * [`survey`]: full enumeration of every address every round — the
//!   ground-truth datasets the validation section compares against.
//!
//! [`record`] holds the observation types both produce, and [`faults`]
//! injects deterministic measurement failures (loss bursts, blackouts,
//! restart storms, truncation, record corruption, address churn) into
//! either mode for stress testing.
//!
//! # Example
//!
//! ```
//! use sleepwatch_probing::{TrinocularConfig, TrinocularProber};
//! use sleepwatch_simnet::{BlockProfile, BlockSpec};
//!
//! let block = BlockSpec::bare(1, 42, BlockProfile::always_on(64, 0.9));
//! let mut prober = TrinocularProber::new(&block, TrinocularConfig::default());
//! let run = prober.run(&block, 0, 200);
//! assert_eq!(run.records.len(), 200);
//! assert!(run.probes_per_hour() < 20.0, "within the paper's probe budget");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod faults;
pub mod multisite;
pub mod record;
pub mod stream;
pub mod survey;
pub mod transport;
pub mod trinocular;

pub use census::{run_census, CensusConfig, CensusRecord};
pub use faults::{Blackout, EChurn, FaultPlan, LossBurst, RestartStorm};
pub use multisite::{agreement, merge_states, merged_outages, MergedOutage, MergedState};
pub use record::{BlockRun, RoundRecord};
pub use stream::{interleave, record_events, replay_run, RoundEvent};
pub use survey::{survey_block, survey_block_with_faults, SurveyResult};
pub use trinocular::{
    BlockState, OutageEvent, ProberScratch, TrinocularConfig, TrinocularProber, VantageRetryConfig,
};
