//! Multi-vantage merging (§3.3's three collection sites).
//!
//! The paper collects concurrently from Los Angeles (`w`), Colorado (`c`)
//! and Japan (`j`) and checks that diurnal conclusions agree. For *outage*
//! conclusions, multiple sites do more than validate: a block that looks
//! down from one site but fine from another is a routing problem near that
//! site, not an edge outage. This module merges per-site runs into a
//! consensus view.

use crate::record::BlockRun;
use crate::trinocular::BlockState;

/// Consensus reachability of one block in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergedState {
    /// At least one site reached the block: it is up (local problems at
    /// other sites notwithstanding).
    Up,
    /// Every reporting site believes it down: a genuine edge outage.
    Down,
    /// No site has an observation for this round, or all are unknown.
    Unknown,
}

/// A merged outage: rounds where *all* reporting sites agreed on down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedOutage {
    /// First consensus-down round.
    pub start_round: u64,
    /// First round no longer consensus-down (exclusive); `None` if the
    /// merge window ended while still down.
    pub end_round: Option<u64>,
}

/// Merges the per-round states of several sites' runs over `rounds` rounds.
///
/// Per round: `Up` if any site saw it up, `Down` if at least one site
/// reported and every reporting site saw it down, `Unknown` otherwise
/// (nobody reported, or only inconclusive verdicts).
pub fn merge_states(runs: &[&BlockRun], rounds: u64) -> Vec<MergedState> {
    // Dense per-site state tables.
    let tables: Vec<Vec<Option<BlockState>>> = runs
        .iter()
        .map(|run| {
            let mut t = vec![None; rounds as usize];
            for rec in &run.records {
                if (rec.round as usize) < t.len() {
                    t[rec.round as usize] = Some(rec.state);
                }
            }
            t
        })
        .collect();

    (0..rounds as usize)
        .map(|r| {
            let mut any_up = false;
            let mut any_down = false;
            let mut any_report = false;
            for t in &tables {
                match t[r] {
                    Some(BlockState::Up) => {
                        any_up = true;
                        any_report = true;
                    }
                    Some(BlockState::Down) => {
                        any_down = true;
                        any_report = true;
                    }
                    Some(BlockState::Unknown) => any_report = true,
                    None => {}
                }
            }
            if any_up {
                MergedState::Up
            } else if any_down && any_report {
                MergedState::Down
            } else {
                MergedState::Unknown
            }
        })
        .collect()
}

/// Extracts consensus outages from a merged state series. Unknown rounds
/// inside a down span do not end it (they carry no evidence either way).
pub fn merged_outages(states: &[MergedState]) -> Vec<MergedOutage> {
    let mut out: Vec<MergedOutage> = Vec::new();
    let mut open: Option<usize> = None;
    for (r, &s) in states.iter().enumerate() {
        match s {
            MergedState::Down => {
                if open.is_none() {
                    open = Some(r);
                }
            }
            MergedState::Up => {
                if let Some(start) = open.take() {
                    out.push(MergedOutage { start_round: start as u64, end_round: Some(r as u64) });
                }
            }
            MergedState::Unknown => {}
        }
    }
    if let Some(start) = open {
        out.push(MergedOutage { start_round: start as u64, end_round: None });
    }
    out
}

/// Fraction of rounds on which two sites' verdicts agree (both reported,
/// same state).
pub fn agreement(a: &BlockRun, b: &BlockRun, rounds: u64) -> f64 {
    let sa = merge_states(&[a], rounds);
    let sb = merge_states(&[b], rounds);
    let mut same = 0usize;
    let mut both = 0usize;
    for (x, y) in sa.iter().zip(&sb) {
        if *x != MergedState::Unknown && *y != MergedState::Unknown {
            both += 1;
            if x == y {
                same += 1;
            }
        }
    }
    if both == 0 {
        0.0
    } else {
        same as f64 / both as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RoundRecord;
    use crate::trinocular::{OutageEvent, TrinocularConfig, TrinocularProber};
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    fn run_with_states(states: &[(u64, BlockState)], rounds: u64) -> BlockRun {
        let records = states
            .iter()
            .map(|&(round, state)| RoundRecord {
                round,
                probes: 1,
                positives: (state == BlockState::Up) as u32,
                a_short: 0.5,
                a_long: 0.5,
                a_operational: 0.4,
                state,
            })
            .collect();
        BlockRun::new(1, rounds, records, Vec::<OutageEvent>::new(), states.len() as u64)
    }

    #[test]
    fn one_up_site_wins() {
        use BlockState::*;
        let a = run_with_states(&[(0, Down), (1, Down)], 2);
        let b = run_with_states(&[(0, Up), (1, Down)], 2);
        let merged = merge_states(&[&a, &b], 2);
        assert_eq!(merged, vec![MergedState::Up, MergedState::Down]);
    }

    #[test]
    fn missing_rounds_are_unknown() {
        use BlockState::*;
        let a = run_with_states(&[(1, Up)], 3);
        let merged = merge_states(&[&a], 3);
        assert_eq!(merged, vec![MergedState::Unknown, MergedState::Up, MergedState::Unknown]);
    }

    #[test]
    fn unknown_verdicts_do_not_make_outages() {
        use BlockState::*;
        let a = run_with_states(&[(0, Unknown), (1, Unknown)], 2);
        let merged = merge_states(&[&a], 2);
        assert!(merged.iter().all(|&s| s == MergedState::Unknown));
        assert!(merged_outages(&merged).is_empty());
    }

    #[test]
    fn outage_extraction_spans_unknown_gaps() {
        use MergedState::*;
        let states = [Up, Down, Unknown, Down, Up, Down];
        let outs = merged_outages(&states);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0], MergedOutage { start_round: 1, end_round: Some(4) });
        assert_eq!(outs[1], MergedOutage { start_round: 5, end_round: None });
    }

    #[test]
    fn real_probers_from_two_sites_agree_on_a_real_outage() {
        let mut block = BlockSpec::bare(9, 1234, BlockProfile::always_on(120, 0.9));
        block.outage = Some((100 * 660, 140 * 660));
        let rounds = 300u64;
        // Site two probes 330 s later within each round.
        let mut p1 = TrinocularProber::new(&block, TrinocularConfig::default());
        let mut p2 = TrinocularProber::new(&block, TrinocularConfig::default());
        let r1 = p1.run(&block, 0, rounds);
        let r2 = p2.run(&block, 330, rounds);
        let merged = merge_states(&[&r1, &r2], rounds);
        let outs = merged_outages(&merged);
        assert_eq!(outs.len(), 1, "consensus outage: {outs:?}");
        assert!((100..=103).contains(&outs[0].start_round));
        assert!(agreement(&r1, &r2, rounds) > 0.95);
    }

    #[test]
    fn local_failure_at_one_site_is_not_a_consensus_outage() {
        use BlockState::*;
        // Site A loses its own uplink for rounds 5..10 (sees Down); site B
        // keeps seeing the block Up.
        let rounds = 15u64;
        let a_states: Vec<(u64, BlockState)> =
            (0..rounds).map(|r| (r, if (5..10).contains(&r) { Down } else { Up })).collect();
        let b_states: Vec<(u64, BlockState)> = (0..rounds).map(|r| (r, Up)).collect();
        let a = run_with_states(&a_states, rounds);
        let b = run_with_states(&b_states, rounds);
        let merged = merge_states(&[&a, &b], rounds);
        assert!(merged_outages(&merged).is_empty(), "local loss must be filtered");
    }
}
