//! Observation records produced by probing.

use crate::trinocular::{BlockState, OutageEvent};

/// One round's observation of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round index since measurement start.
    pub round: u64,
    /// Probes sent this round (1–15).
    pub probes: u32,
    /// Positive responses received.
    pub positives: u32,
    /// Short-term availability estimate `Âs` after this round.
    pub a_short: f64,
    /// Long-term estimate `Âl`.
    pub a_long: f64,
    /// Operational estimate `Âo`.
    pub a_operational: f64,
    /// Reachability verdict.
    pub state: BlockState,
}

/// A complete adaptive-probing run over one block. Rounds lost to prober
/// restarts are simply absent from `records`; downstream cleaning
/// (`sleepwatch_availability::cleaning`) re-densifies.
#[derive(Debug, Clone)]
pub struct BlockRun {
    /// The probed block's id.
    pub block_id: u64,
    /// Nominal number of rounds attempted.
    pub rounds: u64,
    /// Per-round records, ascending by round, possibly with gaps.
    pub records: Vec<RoundRecord>,
    /// Outages detected during the run.
    pub outages: Vec<OutageEvent>,
    /// Total probes sent.
    pub total_probes: u64,
}

impl BlockRun {
    /// Assembles a run.
    pub fn new(
        block_id: u64,
        rounds: u64,
        records: Vec<RoundRecord>,
        outages: Vec<OutageEvent>,
        total_probes: u64,
    ) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0].round < w[1].round));
        BlockRun { block_id, rounds, records, outages, total_probes }
    }

    /// `(round, Âs)` observation pairs, ready for
    /// `sleepwatch_availability::cleaning::clean_series`.
    pub fn a_short_observations(&self) -> Vec<(u64, f64)> {
        self.records.iter().map(|r| (r.round, r.a_short)).collect()
    }

    /// `(round, Âo)` observation pairs.
    pub fn a_operational_observations(&self) -> Vec<(u64, f64)> {
        self.records.iter().map(|r| (r.round, r.a_operational)).collect()
    }

    /// Mean probes per round over observed rounds (0 when empty).
    pub fn mean_probes_per_round(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().map(|r| r.probes as f64).sum::<f64>() / self.records.len() as f64
        }
    }

    /// Probes per hour implied by this run.
    pub fn probes_per_hour(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        let hours = self.rounds as f64 * 660.0 / 3_600.0;
        self.total_probes as f64 / hours
    }

    /// Fraction of attempted rounds that produced an observation.
    pub fn coverage(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.records.len() as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, probes: u32, a: f64) -> RoundRecord {
        RoundRecord {
            round,
            probes,
            positives: 1,
            a_short: a,
            a_long: a,
            a_operational: a - 0.1,
            state: BlockState::Up,
        }
    }

    #[test]
    fn observation_extraction() {
        let run = BlockRun::new(7, 4, vec![rec(0, 1, 0.5), rec(2, 3, 0.6)], vec![], 4);
        assert_eq!(run.a_short_observations(), vec![(0, 0.5), (2, 0.6)]);
        assert_eq!(run.a_operational_observations(), vec![(0, 0.4), (2, 0.5)]);
    }

    #[test]
    fn rate_metrics() {
        let run = BlockRun::new(1, 100, vec![rec(0, 2, 0.5), rec(1, 4, 0.5)], vec![], 300);
        assert!((run.mean_probes_per_round() - 3.0).abs() < 1e-12);
        let hours = 100.0 * 660.0 / 3_600.0;
        assert!((run.probes_per_hour() - 300.0 / hours).abs() < 1e-12);
        assert!((run.coverage() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_behaved() {
        let run = BlockRun::new(1, 0, vec![], vec![], 0);
        assert_eq!(run.mean_probes_per_round(), 0.0);
        assert_eq!(run.probes_per_hour(), 0.0);
        assert_eq!(run.coverage(), 0.0);
    }
}
