//! Round-stream adapter: replays prober output as an event feed.
//!
//! The batch pipeline hands a whole [`BlockRun`] to analysis at once. A
//! live deployment instead sees a *stream*: rounds for many blocks
//! arriving interleaved, with faults (duplicates, reordering, truncation)
//! already baked into each block's record sequence by the prober. This
//! module is the bridge — it flattens prober output into
//! [`RoundEvent`]s and deterministically interleaves many blocks'
//! streams so ingest tests can replay any arrival order they like while
//! preserving the one invariant real transports give us: **per-block
//! order**. Events for one block arrive in emission order; events for
//! different blocks may be shuffled arbitrarily.

use crate::record::{BlockRun, RoundRecord};
use sleepwatch_geoecon::rng::hash_parts;

/// Stream tag for interleaving draws.
const STREAM_INTERLEAVE: u64 = 0x696e_746c; // "intl"

/// One element of a live ingest feed.
///
/// Deliberately lean (32 bytes): queue memory is bounded by
/// `capacity × size_of::<RoundEvent>()`, so the event carries exactly
/// what downstream analysis consumes — the batch pipeline only ever
/// reads `(round, a_short)` from a record, plus the run-level outage
/// and probe totals delivered by the terminal [`RoundEvent::Finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoundEvent {
    /// One probing round's short-term availability estimate.
    Round {
        /// The probed block.
        block_id: u64,
        /// Round index within the run (may repeat or regress under
        /// dup/reorder faults, exactly as the prober emitted it).
        round: u64,
        /// The round's `Âs` estimate.
        a_short: f64,
    },
    /// End of a block's run, carrying the run-level totals.
    Finish {
        /// The probed block.
        block_id: u64,
        /// Outages the prober detected during the run.
        outages: u32,
        /// Total probes the prober sent.
        total_probes: u64,
    },
}

impl RoundEvent {
    /// The block this event belongs to.
    #[inline]
    pub fn block_id(&self) -> u64 {
        match *self {
            RoundEvent::Round { block_id, .. } | RoundEvent::Finish { block_id, .. } => block_id,
        }
    }
}

/// Flattens one block's records into its event stream: one
/// [`RoundEvent::Round`] per record in emission order, then the terminal
/// [`RoundEvent::Finish`].
pub fn record_events(
    block_id: u64,
    records: &[RoundRecord],
    outages: u32,
    total_probes: u64,
) -> Vec<RoundEvent> {
    let mut out = Vec::with_capacity(records.len() + 1);
    out.extend(records.iter().map(|r| RoundEvent::Round {
        block_id,
        round: r.round,
        a_short: r.a_short,
    }));
    out.push(RoundEvent::Finish { block_id, outages, total_probes });
    out
}

/// Replays a completed [`BlockRun`] as its event stream.
pub fn replay_run(run: &BlockRun) -> Vec<RoundEvent> {
    record_events(run.block_id, &run.records, run.outages.len() as u32, run.total_probes)
}

/// Merges many per-block streams into one feed, preserving each stream's
/// internal order while shuffling across streams.
///
/// The merge is a keyed deterministic walk — at every step a splitmix
/// draw over `(seed, step)` picks which live stream advances — so a
/// given `(streams, seed)` always produces the same interleaving, and
/// different seeds exercise genuinely different arrival orders. This is
/// the adversarial input generator for the ingest equivalence oracle:
/// correctness must not depend on which interleaving the transport
/// happened to deliver.
pub fn interleave(streams: Vec<Vec<RoundEvent>>, seed: u64) -> Vec<RoundEvent> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut at = vec![0usize; streams.len()];
    let mut alive: Vec<usize> = (0..streams.len()).filter(|&i| !streams[i].is_empty()).collect();
    let mut step = 0u64;
    while !alive.is_empty() {
        let pick = (hash_parts(&[seed, STREAM_INTERLEAVE, step]) % alive.len() as u64) as usize;
        let s = alive[pick];
        out.push(streams[s][at[s]]);
        at[s] += 1;
        if at[s] == streams[s].len() {
            alive.swap_remove(pick);
        }
        step += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trinocular::{TrinocularConfig, TrinocularProber};
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    fn run_of(id: u64, rounds: u64) -> BlockRun {
        let block = BlockSpec::bare(id, 64 + id, BlockProfile::always_on(64, 0.9));
        let mut prober = TrinocularProber::new(&block, TrinocularConfig::default());
        prober.run(&block, 0, rounds)
    }

    #[test]
    fn replay_preserves_record_order_and_totals() {
        let run = run_of(3, 50);
        let events = replay_run(&run);
        assert_eq!(events.len(), run.records.len() + 1);
        for (ev, rec) in events.iter().zip(&run.records) {
            assert_eq!(
                *ev,
                RoundEvent::Round { block_id: 3, round: rec.round, a_short: rec.a_short }
            );
        }
        assert_eq!(
            *events.last().unwrap(),
            RoundEvent::Finish {
                block_id: 3,
                outages: run.outages.len() as u32,
                total_probes: run.total_probes
            }
        );
    }

    #[test]
    fn interleave_is_an_order_preserving_permutation() {
        let streams: Vec<Vec<RoundEvent>> = (0..5).map(|id| replay_run(&run_of(id, 40))).collect();
        let merged = interleave(streams.clone(), 0xFEED);
        assert_eq!(merged.len(), streams.iter().map(Vec::len).sum::<usize>());
        // Splitting the merged feed back out by block reproduces every
        // stream exactly: per-block order survived the shuffle.
        for (id, want) in streams.iter().enumerate() {
            let got: Vec<RoundEvent> =
                merged.iter().copied().filter(|e| e.block_id() == id as u64).collect();
            assert_eq!(&got, want, "block {id} stream mangled");
        }
    }

    #[test]
    fn interleave_is_seed_deterministic_and_seed_sensitive() {
        let streams: Vec<Vec<RoundEvent>> = (0..4).map(|id| replay_run(&run_of(id, 30))).collect();
        let a = interleave(streams.clone(), 1);
        assert_eq!(a, interleave(streams.clone(), 1), "same seed, same order");
        assert_ne!(a, interleave(streams, 2), "different seed, different order");
    }

    #[test]
    fn interleave_handles_empty_streams() {
        assert!(interleave(Vec::new(), 7).is_empty());
        let streams = vec![Vec::new(), replay_run(&run_of(1, 10)), Vec::new()];
        let merged = interleave(streams.clone(), 7);
        assert_eq!(merged, streams[1]);
    }
}
