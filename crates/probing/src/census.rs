//! Census-based bootstrap: how Trinocular learns which addresses to probe.
//!
//! The real system does not know a block's ever-active set a priori — it
//! builds `E(b)` and the historical availability estimate from years of
//! low-rate full-space censuses (§2.5, ref. \[10\]). This module simulates that
//! history: a configurable number of full passes over the /24 spread across
//! a historical window, recording which addresses ever answered and how
//! often.
//!
//! Using a census record (instead of the block spec's ground truth) gives
//! the prober the real system's blind spots: very sparsely used addresses
//! — like USC's heavily overprovisioned wireless pools in §3.2.4 — may
//! never answer during the census and are then invisible to adaptive
//! probing. Blocks whose discovered `E(b)` is below the policy threshold
//! are excluded from probing entirely, exactly the "policy constraint" the
//! paper blames for its wireless false negatives.

use sleepwatch_simnet::BlockSpec;

/// Census parameters.
#[derive(Debug, Clone, Copy)]
pub struct CensusConfig {
    /// Number of full passes over the block.
    pub passes: u32,
    /// Historical window the passes are spread over, in days, ending at
    /// the census's `end_time`.
    pub window_days: f64,
    /// Trinocular's analyzability policy: blocks with fewer discovered
    /// ever-active addresses than this are not probed (paper: 15).
    pub min_ever_active: usize,
    /// Minimum responses across the census for an address to count as
    /// ever-active. 1 = literally ever responded; higher values model the
    /// recent-activity screen that excludes one-off responders (needed to
    /// reproduce §3.2.4's exclusion of USC's overprovisioned wireless).
    pub min_responses: u32,
}

impl Default for CensusConfig {
    fn default() -> Self {
        // A couple of years of quarterly censuses, like the real archive.
        CensusConfig { passes: 8, window_days: 730.0, min_ever_active: 15, min_responses: 1 }
    }
}

/// What the census learned about one block.
#[derive(Debug, Clone)]
pub struct CensusRecord {
    /// The block's id.
    pub block_id: u64,
    /// Addresses that answered at least once, ascending.
    pub ever_active: Vec<u8>,
    /// Per-discovered-address response counts (parallel to `ever_active`).
    pub response_counts: Vec<u32>,
    /// Historical availability estimate: responses / (discovered × passes).
    pub hist_avail: f64,
    /// Passes performed.
    pub passes: u32,
}

impl CensusRecord {
    /// Number of discovered ever-active addresses.
    pub fn discovered(&self) -> usize {
        self.ever_active.len()
    }

    /// Whether the block meets the probing policy.
    pub fn analyzable(&self, cfg: &CensusConfig) -> bool {
        self.discovered() >= cfg.min_ever_active
    }
}

/// Runs a census of `block`: `cfg.passes` full sweeps spread uniformly over
/// the window ending at `end_time`.
pub fn run_census(block: &BlockSpec, end_time: u64, cfg: &CensusConfig) -> CensusRecord {
    let window = (cfg.window_days * 86_400.0) as u64;
    let start = end_time.saturating_sub(window);
    let step = if cfg.passes > 1 { window / (cfg.passes as u64 - 1).max(1) } else { 0 };

    let mut counts = [0u32; 256];
    for pass in 0..cfg.passes {
        // Sweeps hit addresses a few seconds apart; model each pass at a
        // single instant plus a per-address skew of one round.
        let t = start + pass as u64 * step;
        for addr in 0..=255u8 {
            if block.probe(addr, t + addr as u64) {
                counts[addr as usize] += 1;
            }
        }
    }

    let mut ever_active = Vec::new();
    let mut response_counts = Vec::new();
    for (addr, &count) in counts.iter().enumerate() {
        if count >= cfg.min_responses.max(1) {
            ever_active.push(addr as u8);
            response_counts.push(count);
        }
    }
    let total: u32 = response_counts.iter().sum();
    let hist_avail = if ever_active.is_empty() {
        0.0
    } else {
        total as f64 / (ever_active.len() as u32 * cfg.passes) as f64
    };
    CensusRecord {
        block_id: block.id,
        ever_active,
        response_counts,
        hist_avail,
        passes: cfg.passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    fn block(n: u16, avail: f64) -> BlockSpec {
        BlockSpec::bare(1, 77, BlockProfile::always_on(n, avail))
    }

    #[test]
    fn census_discovers_reliable_addresses() {
        let b = block(100, 1.0);
        let c = run_census(&b, 1_000_000_000, &CensusConfig::default());
        assert_eq!(c.discovered(), 100);
        assert!((c.hist_avail - 1.0).abs() < 1e-9);
        assert!(c.analyzable(&CensusConfig::default()));
    }

    #[test]
    fn census_misses_rarely_responding_addresses() {
        // avail 0.1 over 8 passes: each address responds with
        // P = 1 − 0.9⁸ ≈ 0.57, so a noticeable share stays undiscovered.
        let b = block(200, 0.1);
        let c = run_census(&b, 1_000_000_000, &CensusConfig::default());
        assert!(c.discovered() < 190, "discovered {}", c.discovered());
        assert!(c.discovered() > 60, "discovered {}", c.discovered());
    }

    #[test]
    fn sparse_blocks_fail_the_policy() {
        let b = block(8, 0.9);
        let cfg = CensusConfig::default();
        let c = run_census(&b, 1_000_000_000, &cfg);
        assert!(!c.analyzable(&cfg), "8 < 15 must be excluded");
    }

    #[test]
    fn empty_block_census() {
        let b = block(0, 0.5);
        let c = run_census(&b, 1_000_000_000, &CensusConfig::default());
        assert_eq!(c.discovered(), 0);
        assert_eq!(c.hist_avail, 0.0);
    }

    #[test]
    fn hist_avail_tracks_true_availability() {
        let b = block(150, 0.6);
        let cfg = CensusConfig { passes: 40, ..Default::default() };
        let c = run_census(&b, 1_000_000_000, &cfg);
        let truth = b.true_availability(1_000_000_000);
        assert!((c.hist_avail - truth).abs() < 0.08, "hist {} vs truth {}", c.hist_avail, truth);
    }

    #[test]
    fn diurnal_addresses_discovered_when_census_hits_their_day() {
        let b = BlockSpec::bare(
            2,
            5,
            BlockProfile {
                n_stable: 20,
                n_diurnal: 100,
                stable_avail: 1.0,
                diurnal_avail: 1.0,
                onset_hours: 8.0,
                onset_spread: 1.0,
                duration_hours: 10.0,
                duration_spread: 0.0,
                sigma_start: 0.0,
                sigma_duration: 0.0,
                utc_offset_hours: 0.0,
            },
        );
        // Many passes: some land inside the daily window.
        let cfg = CensusConfig { passes: 16, ..Default::default() };
        let c = run_census(&b, 1_000_000_000, &cfg);
        assert!(c.discovered() > 100, "stable + most diurnal: {}", c.discovered());
        // Diurnal addresses respond in fewer passes than the stable ones.
        assert!(c.hist_avail < 0.9, "hist {}", c.hist_avail);
    }

    #[test]
    fn census_is_deterministic() {
        let b = block(120, 0.4);
        let cfg = CensusConfig::default();
        let c1 = run_census(&b, 123_456_789, &cfg);
        let c2 = run_census(&b, 123_456_789, &cfg);
        assert_eq!(c1.ever_active, c2.ever_active);
        assert_eq!(c1.response_counts, c2.response_counts);
    }
}
