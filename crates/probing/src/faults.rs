//! Deterministic measurement-fault injection.
//!
//! Real probing infrastructure fails in structured ways: upstream links
//! shed probes in correlated bursts, vantage points black out for hours,
//! prober processes restart off-schedule, collection is cut short, and
//! ingest pipelines duplicate or reorder observations. A [`FaultPlan`]
//! describes such a failure regime and is threaded through
//! [`TrinocularProber::run_with_faults`](crate::TrinocularProber::run_with_faults)
//! and [`survey_block_with_faults`](crate::survey_block_with_faults) so the
//! whole pipeline can be stress-tested against it.
//!
//! Two invariants make the plans usable as test infrastructure:
//!
//! * **Zero-cost default.** [`FaultPlan::none`] injects nothing and draws
//!   nothing: a run under the empty plan is byte-identical to a run on the
//!   fault-free code path (pinned by the golden suite).
//! * **Keyed determinism.** Every draw is keyed on
//!   `(plan seed, stream tag, block, round/address/time)` via the same
//!   splitmix64 machinery as the rest of the workspace, so injected faults
//!   are identical across thread counts and evaluation orders.

use crate::record::RoundRecord;
use sleepwatch_geoecon::rng::{chance_at, hash_parts};

/// Stream tags separating fault draws from all other keyed randomness.
const STREAM_BURST: u64 = 0x6662_7573; // "fbus"
const STREAM_STORM: u64 = 0x6673_746d; // "fstm"
const STREAM_CHURN: u64 = 0x6663_6872; // "fchr"
const STREAM_DUP: u64 = 0x6664_7570; // "fdup"
const STREAM_REORDER: u64 = 0x6672_6f72; // "fror"
/// Tag for per-probe burst-loss draws; `pub(crate)` so the prober and the
/// survey share one stream definition.
pub(crate) const STREAM_LOSS: u64 = 0x666c_6f73; // "flos"

/// Correlated loss bursts: within each `epoch_rounds`-long epoch a block
/// may (keyed coin) suffer one burst window during which genuinely
/// positive responses are dropped with probability `loss`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBurst {
    /// Epoch length in rounds; each epoch independently draws one burst.
    pub epoch_rounds: u64,
    /// Probability that an epoch contains a burst.
    pub burst_chance: f64,
    /// Maximum burst length in rounds (actual length is keyed-uniform in
    /// `1..=max_len_rounds`).
    pub max_len_rounds: u64,
    /// Probability that a positive response is lost during the burst.
    pub loss: f64,
}

/// A vantage blackout: the prober records nothing at all for
/// `len_rounds` rounds starting at `start_round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackout {
    /// First blacked-out round.
    pub start_round: u64,
    /// Number of consecutive rounds lost.
    pub len_rounds: u64,
}

/// Extra, jitter-scheduled prober restarts on top of whatever the
/// [`TrinocularConfig`](crate::TrinocularConfig) already schedules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartStorm {
    /// Nominal rounds between extra restarts.
    pub interval_rounds: u64,
    /// Each restart lands keyed-uniformly up to this many rounds late
    /// (must be smaller than `interval_rounds`).
    pub jitter_rounds: u64,
    /// Probability the restart loses the round's observation entirely.
    pub loss_chance: f64,
    /// Probability a surviving restart round books in-flight probes as
    /// timeouts (the Fig. 10 artifact mechanism).
    pub dropped_probe_chance: f64,
}

/// Mid-run churn of the probed address set `E(b)`: at `at_round` a keyed
/// `fraction` of the walk's slots are overwritten with arbitrary last
/// octets — including addresses that never respond — modelling stale
/// census data meeting renumbered blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EChurn {
    /// Round at which the walk is rewritten.
    pub at_round: u64,
    /// Fraction of walk slots replaced (`0..=1`).
    pub fraction: f64,
}

/// A complete fault regime for one run. The default ([`FaultPlan::none`])
/// injects nothing; presets combine the individual mechanisms into
/// recognizable failure scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed keying every fault draw (independent of block/world seeds).
    pub seed: u64,
    /// Correlated response-loss bursts.
    pub loss_burst: Option<LossBurst>,
    /// Vantage blackout window.
    pub blackout: Option<Blackout>,
    /// Extra jittered prober restarts.
    pub restart_storm: Option<RestartStorm>,
    /// Stop collecting after this many rounds (truncated run).
    pub truncate_after: Option<u64>,
    /// Per-record probability of appending a stale duplicate
    /// `RoundRecord` under the same round number.
    pub duplicate_rate: f64,
    /// Per-position probability of swapping adjacent records.
    pub reorder_rate: f64,
    /// Mid-run churn of the probed address set.
    pub churn: Option<EChurn>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, draws nothing, changes nothing.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss_burst: None,
            blackout: None,
            restart_storm: None,
            truncate_after: None,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            churn: None,
        }
    }

    /// True when the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.loss_burst.is_none()
            && self.blackout.is_none()
            && self.restart_storm.is_none()
            && self.truncate_after.is_none()
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.churn.is_none()
    }

    /// Preset: occasional short loss bursts (a flaky upstream).
    pub fn loss_light(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss_burst: Some(LossBurst {
                epoch_rounds: 131,
                burst_chance: 0.3,
                max_len_rounds: 12,
                loss: 0.3,
            }),
            ..Self::none()
        }
    }

    /// Preset: frequent long heavy bursts (a congested transit path).
    pub fn loss_heavy(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss_burst: Some(LossBurst {
                epoch_rounds: 131,
                burst_chance: 0.7,
                max_len_rounds: 40,
                loss: 0.8,
            }),
            ..Self::none()
        }
    }

    /// Preset: a half-day vantage blackout early in the second day.
    pub fn blackout(seed: u64) -> Self {
        FaultPlan {
            seed,
            blackout: Some(Blackout { start_round: 160, len_rounds: 65 }),
            ..Self::none()
        }
    }

    /// Preset: restarts every ~3 hours with jitter, most losing data.
    pub fn restart_storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            restart_storm: Some(RestartStorm {
                interval_rounds: 17,
                jitter_rounds: 5,
                loss_chance: 0.5,
                dropped_probe_chance: 0.8,
            }),
            ..Self::none()
        }
    }

    /// Preset: collection dies ten days in (of a nominal two weeks).
    pub fn truncated(seed: u64) -> Self {
        FaultPlan { seed, truncate_after: Some(1_310), ..Self::none() }
    }

    /// Preset: the ingest pipeline duplicates and reorders records.
    pub fn dup_reorder(seed: u64) -> Self {
        FaultPlan { seed, duplicate_rate: 0.05, reorder_rate: 0.05, ..Self::none() }
    }

    /// Preset: a third of `E(b)` churns away mid-run.
    pub fn churn(seed: u64) -> Self {
        FaultPlan { seed, churn: Some(EChurn { at_round: 500, fraction: 0.3 }), ..Self::none() }
    }

    /// Every named preset, for exhaustive oracle sweeps.
    pub fn presets(seed: u64) -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("loss-light", Self::loss_light(seed)),
            ("loss-heavy", Self::loss_heavy(seed)),
            ("blackout", Self::blackout(seed)),
            ("restart-storm", Self::restart_storm(seed)),
            ("truncated", Self::truncated(seed)),
            ("dup-reorder", Self::dup_reorder(seed)),
            ("churn", Self::churn(seed)),
        ]
    }

    /// True when collection has been cut off at or before `round`.
    pub fn truncates_at(&self, round: u64) -> bool {
        self.truncate_after.is_some_and(|t| round >= t)
    }

    /// True when `round` falls inside the blackout window.
    pub fn blacked_out(&self, round: u64) -> bool {
        self.blackout
            .is_some_and(|b| round >= b.start_round && round < b.start_round + b.len_rounds)
    }

    /// Extra response-loss probability at `round` for `block_id`
    /// (0.0 outside any burst). Bursts are keyed per `(plan, block,
    /// epoch)`, so a burst hits every probe of the affected rounds —
    /// correlated loss, not i.i.d. thinning.
    pub fn loss_at(&self, block_id: u64, round: u64) -> f64 {
        let Some(b) = self.loss_burst else { return 0.0 };
        if b.epoch_rounds == 0 {
            return 0.0;
        }
        let epoch = round / b.epoch_rounds;
        let key = [self.seed, STREAM_BURST, block_id, epoch];
        if !chance_at(b.burst_chance, &key) {
            return 0.0;
        }
        let len = 1 + hash_parts(&[self.seed, STREAM_BURST ^ 1, block_id, epoch])
            % b.max_len_rounds.max(1);
        let span = b.epoch_rounds.saturating_sub(len).max(1);
        let start = epoch * b.epoch_rounds
            + hash_parts(&[self.seed, STREAM_BURST ^ 2, block_id, epoch]) % span;
        if round >= start && round < start + len {
            b.loss
        } else {
            0.0
        }
    }

    /// If a storm restart lands on `round`, returns `(observation lost,
    /// in-flight probes dropped)`.
    pub fn storm_restart_at(&self, block_id: u64, round: u64) -> Option<(bool, bool)> {
        let s = self.restart_storm?;
        if s.interval_rounds == 0 || round == 0 {
            return None;
        }
        // Occurrence i lands at i·interval + jitter(i); jitter < interval,
        // so only the two nearest occurrence indices can match `round`.
        let hi = round / s.interval_rounds;
        let lo = round.saturating_sub(s.jitter_rounds) / s.interval_rounds;
        for i in lo..=hi {
            if i == 0 {
                continue;
            }
            let jitter = if s.jitter_rounds == 0 {
                0
            } else {
                hash_parts(&[self.seed, STREAM_STORM, block_id, i]) % (s.jitter_rounds + 1)
            };
            if i * s.interval_rounds + jitter == round {
                let lost = chance_at(s.loss_chance, &[self.seed, STREAM_STORM ^ 1, block_id, i]);
                let dropped =
                    chance_at(s.dropped_probe_chance, &[self.seed, STREAM_STORM ^ 2, block_id, i]);
                return Some((lost, dropped));
            }
        }
        None
    }

    /// If the walk churns at `round`, returns the churn parameters.
    pub fn churn_at(&self, round: u64) -> Option<EChurn> {
        self.churn.filter(|c| c.at_round == round)
    }

    /// Keyed draw for one churned walk slot: `(slot index, new octet)`.
    pub(crate) fn churn_slot(&self, block_id: u64, draw: u64, walk_len: usize) -> (usize, u8) {
        let slot = hash_parts(&[self.seed, STREAM_CHURN, block_id, draw]) % walk_len as u64;
        let octet = hash_parts(&[self.seed, STREAM_CHURN ^ 1, block_id, draw]) % 256;
        (slot as usize, octet as u8)
    }

    /// Applies record-stream corruption: stale duplicates (a copy of the
    /// previous record re-emitted under the current round number, after
    /// the genuine record so last-write-wins ingest keeps the stale one)
    /// and adjacent-pair reorders. Keyed per `(plan, block, round)`.
    ///
    /// Returns `(duplicates appended, pairs swapped)` so callers (and the
    /// metrics layer) can account for the injected corruption without
    /// re-deriving the keyed draws.
    pub fn mangle_records(&self, block_id: u64, records: &mut Vec<RoundRecord>) -> (u64, u64) {
        if self.duplicate_rate <= 0.0 && self.reorder_rate <= 0.0 {
            return (0, 0);
        }
        let mut dups = 0u64;
        let mut swaps = 0u64;
        if self.duplicate_rate > 0.0 {
            let mut out = Vec::with_capacity(records.len() + records.len() / 8);
            for i in 0..records.len() {
                out.push(records[i]);
                if i > 0
                    && chance_at(
                        self.duplicate_rate,
                        &[self.seed, STREAM_DUP, block_id, records[i].round],
                    )
                {
                    let mut stale = records[i - 1];
                    stale.round = records[i].round;
                    out.push(stale);
                    dups += 1;
                }
            }
            *records = out;
        }
        if self.reorder_rate > 0.0 {
            let mut i = 0;
            while i + 1 < records.len() {
                if chance_at(
                    self.reorder_rate,
                    &[self.seed, STREAM_REORDER, block_id, records[i].round],
                ) {
                    records.swap(i, i + 1);
                    swaps += 1;
                    i += 2; // a swapped pair is not swapped again
                } else {
                    i += 1;
                }
            }
        }
        (dups, swaps)
    }

    /// True when this plan can emit records out of strict round order
    /// (duplicates share a round number; reorders invert pairs).
    pub fn mangles_order(&self) -> bool {
        self.duplicate_rate > 0.0 || self.reorder_rate > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-probe burst-loss decision shared by the adaptive prober and the
/// survey path: drops a genuinely positive response with probability
/// `rate`, keyed on `(plan seed, block, addr, time)`.
pub(crate) fn burst_loses_response(
    plan_seed: u64,
    rate: f64,
    block_id: u64,
    addr: u8,
    time: u64,
) -> bool {
    rate > 0.0 && chance_at(rate, &[plan_seed, STREAM_LOSS, block_id, addr as u64, time])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RoundRecord;
    use crate::trinocular::BlockState;

    fn rec(round: u64, a: f64) -> RoundRecord {
        RoundRecord {
            round,
            probes: 1,
            positives: 1,
            a_short: a,
            a_long: a,
            a_operational: a,
            state: BlockState::Up,
        }
    }

    #[test]
    fn none_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for r in 0..5_000 {
            assert_eq!(p.loss_at(3, r), 0.0);
            assert!(!p.blacked_out(r));
            assert!(!p.truncates_at(r));
            assert!(p.storm_restart_at(3, r).is_none());
            assert!(p.churn_at(r).is_none());
        }
        let mut records: Vec<RoundRecord> = (0..50).map(|r| rec(r, 0.5)).collect();
        let before = records.clone();
        p.mangle_records(3, &mut records);
        assert_eq!(records, before);
    }

    #[test]
    fn presets_are_distinct_and_nonempty() {
        let ps = FaultPlan::presets(9);
        assert!(ps.len() >= 5, "need at least five presets");
        for (name, p) in &ps {
            assert!(!p.is_none(), "{name} injects nothing");
        }
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i].1, ps[j].1, "{} == {}", ps[i].0, ps[j].0);
            }
        }
    }

    #[test]
    fn loss_bursts_are_correlated_windows() {
        let p = FaultPlan::loss_heavy(4);
        let lossy: Vec<u64> = (0..2_000).filter(|&r| p.loss_at(1, r) > 0.0).collect();
        assert!(!lossy.is_empty(), "heavy preset never fired in 2000 rounds");
        // Lossy rounds form contiguous runs (bursts), not isolated points.
        let mut runs = Vec::new();
        let mut len = 1u64;
        for w in lossy.windows(2) {
            if w[1] == w[0] + 1 {
                len += 1;
            } else {
                runs.push(len);
                len = 1;
            }
        }
        runs.push(len);
        assert!(runs.iter().any(|&l| l > 1), "no multi-round burst in {runs:?}");
        let b = p.loss_burst.unwrap();
        assert!(runs.iter().all(|&l| l <= b.max_len_rounds), "burst too long: {runs:?}");
    }

    #[test]
    fn loss_bursts_depend_on_block_and_seed() {
        let p = FaultPlan::loss_heavy(4);
        let profile = |plan: &FaultPlan, blk: u64| -> Vec<bool> {
            (0..2_000).map(|r| plan.loss_at(blk, r) > 0.0).collect()
        };
        assert_ne!(profile(&p, 1), profile(&p, 2), "blocks share a burst schedule");
        assert_ne!(
            profile(&p, 1),
            profile(&FaultPlan::loss_heavy(5), 1),
            "seeds share a burst schedule"
        );
        assert_eq!(profile(&p, 1), profile(&p, 1), "schedule must be deterministic");
    }

    #[test]
    fn blackout_covers_exactly_its_window() {
        let p = FaultPlan::blackout(1);
        let b = p.blackout.unwrap();
        assert!(!p.blacked_out(b.start_round - 1));
        assert!(p.blacked_out(b.start_round));
        assert!(p.blacked_out(b.start_round + b.len_rounds - 1));
        assert!(!p.blacked_out(b.start_round + b.len_rounds));
    }

    #[test]
    fn storm_restarts_land_once_per_interval_with_jitter() {
        let p = FaultPlan::restart_storm(7);
        let s = p.restart_storm.unwrap();
        let hits: Vec<u64> = (0..1_000).filter(|&r| p.storm_restart_at(2, r).is_some()).collect();
        // Every interval from the first onwards produces exactly one hit.
        let expected = (1_000 - s.jitter_rounds) / s.interval_rounds;
        assert!(
            hits.len() as u64 >= expected - 1 && hits.len() as u64 <= expected + 1,
            "{} hits, expected ≈{expected}",
            hits.len()
        );
        for w in hits.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                gap >= s.interval_rounds - s.jitter_rounds
                    && gap <= s.interval_rounds + s.jitter_rounds,
                "gap {gap} outside jitter envelope"
            );
        }
    }

    #[test]
    fn truncation_is_a_threshold() {
        let p = FaultPlan::truncated(1);
        let t = p.truncate_after.unwrap();
        assert!(!p.truncates_at(t - 1));
        assert!(p.truncates_at(t));
        assert!(p.truncates_at(t + 1_000));
    }

    #[test]
    fn mangling_duplicates_and_reorders_deterministically() {
        let p = FaultPlan::dup_reorder(11);
        let mk = || -> Vec<RoundRecord> { (0..400).map(|r| rec(r, 0.5)).collect() };
        let mut a = mk();
        let mut b = mk();
        p.mangle_records(6, &mut a);
        p.mangle_records(6, &mut b);
        assert_eq!(a, b, "mangling must be deterministic");
        assert!(a.len() > 400, "no duplicates injected");
        assert!(a.windows(2).any(|w| w[0].round > w[1].round), "no reordering injected");
        // Different block id ⇒ different corruption.
        let mut c = mk();
        p.mangle_records(7, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn duplicates_are_stale_copies_after_the_genuine_record() {
        let p = FaultPlan { duplicate_rate: 1.0, ..FaultPlan::none() };
        let mut r: Vec<RoundRecord> = (0..4).map(|i| rec(i, i as f64 / 10.0)).collect();
        p.mangle_records(1, &mut r);
        // Every record after the first is followed by its predecessor's
        // values under its own round number.
        assert_eq!(r.len(), 7);
        assert_eq!(r[1].round, 1);
        assert_eq!(r[2].round, 1);
        assert_eq!(r[2].a_short, r[0].a_short, "duplicate must carry stale values");
    }
}
