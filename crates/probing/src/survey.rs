//! Full-enumeration surveys (the paper's ground-truth datasets, §2.5).
//!
//! An Internet survey probes *every* address of each block every 11 minutes
//! for about two weeks. With complete data, block availability needs no
//! estimation: `A(t)` is simply the fraction of ever-responding addresses
//! that answered in round `t`. The validation experiments (§3) compare the
//! adaptive estimators against these measurements.

use crate::faults::{burst_loses_response, FaultPlan};
use sleepwatch_simnet::{BlockSpec, ROUND_SECONDS};

/// Result of surveying one block.
#[derive(Debug, Clone)]
pub struct SurveyResult {
    /// The surveyed block's id.
    pub block_id: u64,
    /// Number of rounds surveyed.
    pub rounds: u64,
    /// Responders per round (count of addresses answering).
    pub responders: Vec<u32>,
    /// Which addresses responded at least once (index = last octet).
    pub ever_responded: [bool; 256],
    /// Total probes sent (256 × rounds).
    pub total_probes: u64,
}

impl SurveyResult {
    /// `|E(b)|` as measured: addresses that responded at least once.
    pub fn ever_count(&self) -> usize {
        self.ever_responded.iter().filter(|&&b| b).count()
    }

    /// The survey's availability series `A(t) = responders(t) / |E(b)|`
    /// (all zeros when nothing ever responded).
    pub fn availability_series(&self) -> Vec<f64> {
        let e = self.ever_count();
        if e == 0 {
            return vec![0.0; self.responders.len()];
        }
        self.responders.iter().map(|&r| r as f64 / e as f64).collect()
    }

    /// Mean availability over the whole survey.
    pub fn mean_availability(&self) -> f64 {
        let s = self.availability_series();
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }
}

/// Surveys `block` for `rounds` rounds starting at `start_time`.
pub fn survey_block(block: &BlockSpec, start_time: u64, rounds: u64) -> SurveyResult {
    survey_block_with_faults(block, start_time, rounds, &FaultPlan::none())
}

/// [`survey_block`] under an injected fault regime. Surveys see the
/// collection-side faults — correlated loss bursts, vantage blackouts
/// (rounds recorded with zero responders) and truncation; prober-specific
/// mechanisms (restarts, walk churn, record corruption) don't apply to
/// full enumeration and are ignored. The empty plan takes the identical
/// code path and draws nothing extra.
pub fn survey_block_with_faults(
    block: &BlockSpec,
    start_time: u64,
    rounds: u64,
    plan: &FaultPlan,
) -> SurveyResult {
    let mut responders = Vec::with_capacity(rounds as usize);
    let mut ever = [false; 256];
    // Probing all 256 is the survey's definition, but inactive addresses
    // can never respond in this world — skipping them changes no output,
    // only wall-clock. Keep the full-space accounting for the probe budget.
    let active = block.ever_active_addrs();
    let mut surveyed = 0u64;
    for r in 0..rounds {
        if plan.truncates_at(r) {
            break;
        }
        surveyed += 1;
        let time = start_time + r * ROUND_SECONDS;
        if plan.blacked_out(r) {
            // Probes were sent but every response vanished with the
            // vantage: the round books as fully silent.
            responders.push(0);
            continue;
        }
        let loss = plan.loss_at(block.id, r);
        let mut count = 0u32;
        for &addr in &active {
            if block.probe(addr, time)
                && !burst_loses_response(plan.seed, loss, block.id, addr, time)
            {
                count += 1;
                ever[addr as usize] = true;
            }
        }
        responders.push(count);
    }
    // Surveys account separately from adaptive probing so the
    // `probing.probes_sent == Σ BlockRun::total_probes` invariant stays
    // exact for the analysis pipeline.
    sleepwatch_obs::global().probing.survey_probes.add(256 * surveyed);
    SurveyResult {
        block_id: block.id,
        rounds: surveyed,
        responders,
        ever_responded: ever,
        total_probes: 256 * surveyed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    #[test]
    fn survey_of_always_on_block() {
        let b = BlockSpec::bare(1, 9, BlockProfile::always_on(42, 1.0));
        let s = survey_block(&b, 0, 100);
        assert_eq!(s.ever_count(), 42);
        assert!(s.availability_series().iter().all(|&a| a == 1.0));
        assert_eq!(s.total_probes, 25_600);
    }

    #[test]
    fn lossy_block_availability_near_truth() {
        let b = BlockSpec::bare(2, 9, BlockProfile::always_on(200, 0.735));
        let s = survey_block(&b, 0, 500);
        let truth = b.true_availability(0);
        assert!(
            (s.mean_availability() - truth).abs() < 0.02,
            "survey {} vs truth {}",
            s.mean_availability(),
            truth
        );
        // With 500 rounds at A≈0.7, every active address responds sometime.
        assert_eq!(s.ever_count(), 200);
    }

    #[test]
    fn diurnal_block_shows_daily_swing() {
        let b = BlockSpec::bare(
            3,
            9,
            BlockProfile {
                n_stable: 50,
                n_diurnal: 100,
                stable_avail: 1.0,
                diurnal_avail: 1.0,
                onset_hours: 0.0,
                onset_spread: 0.0,
                duration_hours: 8.0,
                duration_spread: 0.0,
                sigma_start: 0.0,
                sigma_duration: 0.0,
                utc_offset_hours: 0.0,
            },
        );
        let s = survey_block(&b, 0, 131 * 2);
        let series = s.availability_series();
        let hi = series.iter().cloned().fold(0.0, f64::max);
        let lo = series.iter().cloned().fold(1.0, f64::min);
        assert_eq!(hi, 1.0);
        assert!((lo - 50.0 / 150.0).abs() < 0.01);
    }

    #[test]
    fn empty_block_survey() {
        let b = BlockSpec::bare(4, 9, BlockProfile::always_on(0, 0.5));
        let s = survey_block(&b, 0, 10);
        assert_eq!(s.ever_count(), 0);
        assert!(s.availability_series().iter().all(|&a| a == 0.0));
        assert_eq!(s.mean_availability(), 0.0);
    }

    #[test]
    fn outage_visible_in_survey() {
        let mut b = BlockSpec::bare(5, 9, BlockProfile::always_on(100, 1.0));
        b.outage = Some((10 * 660, 20 * 660));
        let s = survey_block(&b, 0, 30);
        let series = s.availability_series();
        assert_eq!(series[5], 1.0);
        assert_eq!(series[15], 0.0);
        assert_eq!(series[25], 1.0);
    }

    #[test]
    fn surveys_are_deterministic() {
        let b = BlockSpec::bare(6, 9, BlockProfile::always_on(150, 0.4));
        let s1 = survey_block(&b, 0, 50);
        let s2 = survey_block(&b, 0, 50);
        assert_eq!(s1.responders, s2.responders);
    }
}
