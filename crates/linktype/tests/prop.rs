//! Property-based tests for the link-type classifier.

use proptest::prelude::*;
use sleepwatch_linktype::{address_features, classify_block, LinkFeature};

/// Arbitrary hostname-ish strings.
fn hostname() -> impl Strategy<Value = String> {
    "[a-z0-9-]{0,20}(\\.[a-z]{2,8}){0,3}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn classifier_never_panics(names in prop::collection::vec(prop::option::of(hostname()), 0..256)) {
        let label = classify_block(names.iter().map(|n| n.as_deref()));
        prop_assert!(label.named_addresses as usize <= names.len());
        // Surviving features all have non-zero counts.
        for f in &label.features {
            prop_assert!(label.counts[f.index()] > 0);
        }
    }

    #[test]
    fn surviving_features_meet_threshold(
        names in prop::collection::vec(prop::option::of(hostname()), 0..256)
    ) {
        let label = classify_block(names.iter().map(|n| n.as_deref()));
        let max = label.counts.iter().copied().max().unwrap_or(0);
        for f in LinkFeature::ALL {
            let c = label.counts[f.index()];
            let survives = label.features.contains(&f);
            if survives {
                prop_assert!(c >= max.div_ceil(15), "{f}: {c} of max {max}");
            } else {
                prop_assert!(c == 0 || c < max.div_ceil(15));
            }
        }
    }

    #[test]
    fn address_features_consistent_with_substrings(name in hostname()) {
        let fs = address_features(&name);
        for f in LinkFeature::ALL {
            prop_assert_eq!(
                fs.contains(&f),
                name.to_ascii_lowercase().contains(f.keyword()),
                "feature {} on {}", f, name
            );
        }
    }

    #[test]
    fn case_insensitivity(name in hostname()) {
        let upper = name.to_ascii_uppercase();
        prop_assert_eq!(address_features(&name), address_features(&upper));
    }

    #[test]
    fn kept_features_is_a_subset(names in prop::collection::vec(prop::option::of(hostname()), 0..64)) {
        let label = classify_block(names.iter().map(|n| n.as_deref()));
        for f in label.kept_features() {
            prop_assert!(label.features.contains(&f));
            prop_assert!(!f.discarded());
        }
    }
}
