//! Access-link technology inference from reverse DNS names (§2.3.3).
//!
//! ISPs frequently encode the last-mile technology in PTR records. The
//! paper's classifier:
//!
//! 1. looks up the reverse name of every address in a block;
//! 2. string-matches each name against 16 keywords, *non-exclusively* (the
//!    name `dhcp-dialup-001.example.com` is both DHCP and dial-up);
//! 3. represents the block as a vector of 256 per-address feature sets;
//! 4. suppresses minor features with fewer than 1/15th of the most frequent
//!    feature's count;
//! 5. labels the block with every remaining non-zero feature.
//!
//! Seven of the 16 keywords (`rtr`, `gw`, `ded`, `client`, `sql`,
//! `wireless`, `wifi`) are dominant in fewer than 1000 blocks of the
//! paper's dataset and are discarded from the analysis; they are still
//! matched here so the dataset-level filtering decision stays visible.
//!
//! # Example
//!
//! ```
//! use sleepwatch_linktype::{classify_block, LinkFeature};
//!
//! let names: Vec<Option<String>> = (0..256)
//!     .map(|i| Some(format!("dhcp-dialup-{i:03}.example.com")))
//!     .collect();
//! let label = classify_block(names.iter().map(|n| n.as_deref()));
//! assert!(label.has(LinkFeature::Dhcp));
//! assert!(label.has(LinkFeature::Dial));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The 16 link-type keywords of §2.3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum LinkFeature {
    Sta,
    Dyn,
    Srv,
    Rtr,
    Gw,
    Dhcp,
    Ppp,
    Dsl,
    Dial,
    Cable,
    Ded,
    Res,
    Client,
    Sql,
    Wireless,
    Wifi,
}

impl LinkFeature {
    /// All 16 features, in the paper's listing order.
    pub const ALL: [LinkFeature; 16] = [
        LinkFeature::Sta,
        LinkFeature::Dyn,
        LinkFeature::Srv,
        LinkFeature::Rtr,
        LinkFeature::Gw,
        LinkFeature::Dhcp,
        LinkFeature::Ppp,
        LinkFeature::Dsl,
        LinkFeature::Dial,
        LinkFeature::Cable,
        LinkFeature::Ded,
        LinkFeature::Res,
        LinkFeature::Client,
        LinkFeature::Sql,
        LinkFeature::Wireless,
        LinkFeature::Wifi,
    ];

    /// The nine features the paper keeps for the Fig. 17 analysis.
    pub const KEPT: [LinkFeature; 9] = [
        LinkFeature::Sta,
        LinkFeature::Dyn,
        LinkFeature::Srv,
        LinkFeature::Dhcp,
        LinkFeature::Ppp,
        LinkFeature::Dsl,
        LinkFeature::Dial,
        LinkFeature::Cable,
        LinkFeature::Res,
    ];

    /// The substring matched in reverse names.
    pub fn keyword(self) -> &'static str {
        match self {
            LinkFeature::Sta => "sta",
            LinkFeature::Dyn => "dyn",
            LinkFeature::Srv => "srv",
            LinkFeature::Rtr => "rtr",
            LinkFeature::Gw => "gw",
            LinkFeature::Dhcp => "dhcp",
            LinkFeature::Ppp => "ppp",
            LinkFeature::Dsl => "dsl",
            LinkFeature::Dial => "dial",
            LinkFeature::Cable => "cable",
            LinkFeature::Ded => "ded",
            LinkFeature::Res => "res",
            LinkFeature::Client => "client",
            LinkFeature::Sql => "sql",
            LinkFeature::Wireless => "wireless",
            LinkFeature::Wifi => "wifi",
        }
    }

    /// `true` for the seven keywords the paper discards (dominant in fewer
    /// than 1000 blocks).
    pub fn discarded(self) -> bool {
        matches!(
            self,
            LinkFeature::Rtr
                | LinkFeature::Gw
                | LinkFeature::Ded
                | LinkFeature::Client
                | LinkFeature::Sql
                | LinkFeature::Wireless
                | LinkFeature::Wifi
        )
    }

    /// Index into 16-wide count arrays.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&f| f == self).expect("feature is in ALL")
    }
}

impl std::fmt::Display for LinkFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Features found in one address's reverse name (non-exclusive substring
/// match, case-insensitive).
pub fn address_features(name: &str) -> Vec<LinkFeature> {
    let lower = name.to_ascii_lowercase();
    LinkFeature::ALL.iter().copied().filter(|f| lower.contains(f.keyword())).collect()
}

/// Per-feature address counts for one block, before and after the 1/15
/// minor-feature suppression.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockLabel {
    /// Raw per-feature address counts (indexed by [`LinkFeature::index`]).
    pub counts: [u32; 16],
    /// Features surviving suppression.
    pub features: Vec<LinkFeature>,
    /// Number of addresses that had any reverse name.
    pub named_addresses: u32,
}

impl BlockLabel {
    /// Whether the block carries `feature` after suppression.
    pub fn has(&self, feature: LinkFeature) -> bool {
        self.features.contains(&feature)
    }

    /// Whether any feature survived (the paper's "has some feature").
    pub fn is_classified(&self) -> bool {
        !self.features.is_empty()
    }

    /// Whether more than one feature survived.
    pub fn is_multi_feature(&self) -> bool {
        self.features.len() > 1
    }

    /// Surviving features restricted to the paper's kept nine.
    pub fn kept_features(&self) -> Vec<LinkFeature> {
        self.features.iter().copied().filter(|f| !f.discarded()).collect()
    }
}

/// Suppression threshold: features with fewer than `max/15` addresses are
/// dropped (§2.3.3).
const SUPPRESSION_DIVISOR: u32 = 15;

/// Classifies one block from its per-address reverse names (`None` where no
/// PTR record exists). Accepts any iterator of up to 256 entries.
pub fn classify_block<'a>(names: impl IntoIterator<Item = Option<&'a str>>) -> BlockLabel {
    sleepwatch_obs::global().linktype.blocks_classified.incr();
    let mut label = BlockLabel::default();
    for name in names {
        let Some(name) = name else { continue };
        label.named_addresses += 1;
        for f in address_features(name) {
            label.counts[f.index()] += 1;
        }
    }
    let max = label.counts.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return label;
    }
    // "filtering out features that are less than 1/15th of the most
    // frequent feature … label the block with all remaining features that
    // have non-zero counts."
    let threshold = max.div_ceil(SUPPRESSION_DIVISOR);
    label.features = LinkFeature::ALL
        .iter()
        .copied()
        .filter(|f| {
            let c = label.counts[f.index()];
            c > 0 && c >= threshold
        })
        .collect();
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names_of(parts: &[(&str, usize)]) -> Vec<Option<String>> {
        let mut out = Vec::new();
        for &(tpl, n) in parts {
            for i in 0..n {
                out.push(Some(format!("{tpl}-{i:03}.example.com")));
            }
        }
        while out.len() < 256 {
            out.push(None);
        }
        out
    }

    fn classify(names: &[Option<String>]) -> BlockLabel {
        classify_block(names.iter().map(|n| n.as_deref()))
    }

    #[test]
    fn paper_example_dhcp_dialup() {
        let fs = address_features("dhcp-dialup-001.example.com");
        assert!(fs.contains(&LinkFeature::Dhcp));
        assert!(fs.contains(&LinkFeature::Dial));
    }

    #[test]
    fn abbreviations_match_full_words() {
        assert!(address_features("static-pool-7.isp.net").contains(&LinkFeature::Sta));
        assert!(address_features("DYNAMIC-44.ISP.NET").contains(&LinkFeature::Dyn));
        assert!(address_features("adsl-modem.example.org").contains(&LinkFeature::Dsl));
        assert!(address_features("resnet-12.campus.edu").contains(&LinkFeature::Res));
    }

    #[test]
    fn unrelated_names_match_nothing() {
        assert!(address_features("host-1-2-3.example.com").is_empty());
        assert!(address_features("").is_empty());
        assert!(address_features("mail.example.org").is_empty());
    }

    #[test]
    fn sixteen_keywords_nine_kept() {
        assert_eq!(LinkFeature::ALL.len(), 16);
        assert_eq!(LinkFeature::KEPT.len(), 9);
        assert_eq!(LinkFeature::ALL.iter().filter(|f| f.discarded()).count(), 7);
        for f in LinkFeature::KEPT {
            assert!(!f.discarded());
        }
    }

    #[test]
    fn block_with_uniform_names_gets_one_feature() {
        let names = names_of(&[("cable", 200)]);
        let label = classify(&names);
        assert_eq!(label.features, vec![LinkFeature::Cable]);
        assert_eq!(label.named_addresses, 200);
        assert!(label.is_classified());
        assert!(!label.is_multi_feature());
    }

    #[test]
    fn minor_feature_suppressed() {
        // 150 dsl + 5 srv: 5 < ceil(150/15)=10 → srv suppressed.
        let names = names_of(&[("dsl", 150), ("srv", 5)]);
        let label = classify(&names);
        assert_eq!(label.features, vec![LinkFeature::Dsl]);
        assert_eq!(label.counts[LinkFeature::Srv.index()], 5);
    }

    #[test]
    fn significant_second_feature_survives() {
        // 150 dsl + 20 srv: 20 ≥ 10 → both kept.
        let names = names_of(&[("dsl", 150), ("srv", 20)]);
        let label = classify(&names);
        assert!(label.has(LinkFeature::Dsl));
        assert!(label.has(LinkFeature::Srv));
        assert!(label.is_multi_feature());
    }

    #[test]
    fn unnamed_block_is_unclassified() {
        let names: Vec<Option<String>> = vec![None; 256];
        let label = classify(&names);
        assert!(!label.is_classified());
        assert_eq!(label.named_addresses, 0);
    }

    #[test]
    fn named_but_keywordless_block_is_unclassified() {
        let names = names_of(&[("host", 100)]);
        let label = classify(&names);
        assert_eq!(label.named_addresses, 100);
        assert!(!label.is_classified());
    }

    #[test]
    fn multi_keyword_names_count_for_each() {
        let names = names_of(&[("dhcp-dial", 100)]);
        let label = classify(&names);
        assert_eq!(label.counts[LinkFeature::Dhcp.index()], 100);
        assert_eq!(label.counts[LinkFeature::Dial.index()], 100);
        assert!(label.has(LinkFeature::Dhcp) && label.has(LinkFeature::Dial));
    }

    #[test]
    fn kept_features_filters_discarded() {
        let names = names_of(&[("wireless", 120), ("dyn", 120)]);
        let label = classify(&names);
        assert!(label.has(LinkFeature::Wireless), "matched before filtering");
        assert_eq!(label.kept_features(), vec![LinkFeature::Dyn]);
    }

    #[test]
    fn boundary_of_one_fifteenth() {
        // max=150 → threshold ceil(150/15)=10; exactly 10 survives, 9 doesn't.
        let at = classify(&names_of(&[("ppp", 150), ("cable", 10)]));
        assert!(at.has(LinkFeature::Cable));
        let below = classify(&names_of(&[("ppp", 150), ("cable", 9)]));
        assert!(!below.has(LinkFeature::Cable));
    }

    #[test]
    fn display_and_index_roundtrip() {
        for f in LinkFeature::ALL {
            assert_eq!(LinkFeature::ALL[f.index()], f);
            assert_eq!(format!("{f}"), f.keyword());
        }
    }
}
