//! Shared binary-framing primitives for the on-disk and wire formats.
//!
//! Every versioned byte format in the workspace — the checkpoint
//! journal (`sleepwatch_core::journal`), the compact dataset container
//! (`sleepwatch_core::binfmt`), and the `SLPWFEED` wire transport
//! (`sleepwatch_probing::transport`) — is built from the same small
//! toolbox:
//!
//! * the CRC32 (IEEE 802.3) used to close every frame, incremental so a
//!   frame checksum can be chained to the file it belongs to;
//! * a 64-byte little-endian *prelude* (magic, version, endianness tag,
//!   kind/mode, run identity, record count, header CRC) shared by every
//!   versioned header, so one validator produces one consistent
//!   [`DecodeError`] for magic/version/endianness/identity mismatches
//!   no matter which format hit them;
//! * LSB-first bit packing plus Rice/Golomb coding with a bounded escape,
//!   used by the compact container's columnar frames.
//!
//! Decoding here is *total*: every reader returns a typed error (or
//! `None` at the bit level) on any malformed input, never panics, and
//! never reads past the supplied slice.
//!
//! This crate sits at the bottom of the dependency stack (std only) so
//! the probing-layer transport and the core-layer persistence formats
//! can share one prelude and one error taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

// CRC32 (IEEE 802.3), table built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Incremental CRC32 (IEEE): feed any number of slices, then
/// [`finish`](Crc32::finish). `Crc32::new().update(b).finish()` equals
/// [`crc32`]`(b)` exactly.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ CRC_TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

// ---------------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------------

/// Which run-identity field disagreed between a file and the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentityField {
    /// Seed of the generated world.
    WorldSeed,
    /// Number of blocks in the world.
    NumBlocks,
    /// Analysis rounds per block.
    Rounds,
    /// Absolute start time of the observation.
    StartTime,
}

impl IdentityField {
    /// Stable lowercase name, for messages and tests.
    pub fn name(self) -> &'static str {
        match self {
            IdentityField::WorldSeed => "world_seed",
            IdentityField::NumBlocks => "num_blocks",
            IdentityField::Rounds => "rounds",
            IdentityField::StartTime => "start_time",
        }
    }
}

/// One error type for every way a binary header, dictionary or frame can
/// be unusable — shared by the journal (v1 and v2) and the compact
/// dataset container so each mismatch kind surfaces identically
/// everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ends before the structure it claims to hold.
    Truncated {
        /// Bytes the structure needs.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading magic is not one of ours.
    BadMagic {
        /// The eight bytes found, as a little-endian integer.
        found: u64,
    },
    /// The magic (or the explicit endianness tag) matches ours
    /// byte-reversed: the file was written by a big-endian encoder.
    EndianMismatch,
    /// A well-formed header from a future (or unknown) format version.
    UnsupportedVersion {
        /// Version the file declares.
        found: u16,
        /// Version this build reads.
        supported: u16,
    },
    /// The header names a different payload kind (e.g. a journal where a
    /// dataset was expected).
    BadKind {
        /// Kind byte found.
        found: u8,
    },
    /// The header names an unknown container mode.
    BadMode {
        /// Mode byte found.
        found: u8,
    },
    /// The header checksum does not match its contents.
    HeaderCrc,
    /// The header is intact but names a different run.
    IdentityMismatch {
        /// First field (in declaration order) that disagreed.
        field: IdentityField,
        /// Value the caller expected.
        expected: u64,
        /// Value the file holds.
        found: u64,
    },
    /// A dictionary section failed validation.
    DictCorrupt {
        /// What was malformed.
        detail: &'static str,
    },
    /// The file's embedded dictionary disagrees with the tables this
    /// build was compiled with.
    DictMismatch {
        /// Which table disagreed.
        table: &'static str,
    },
    /// A record frame failed validation.
    FrameCorrupt {
        /// Zero-based frame index.
        frame: usize,
        /// What was malformed.
        detail: &'static str,
    },
    /// The container is seed-joined (its geo/registry columns are
    /// re-derived from the world seed) but the caller supplied no world
    /// configuration to derive them from.
    WorldRequired,
    /// The file ends inside a frame (a torn write) or holds trailing
    /// bytes past the declared record count.
    TornTail {
        /// Records recovered before the damage.
        valid_records: u64,
        /// Records the header declared.
        expected_records: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated: need {need} bytes, have {have}")
            }
            DecodeError::BadMagic { found } => write!(f, "unrecognized magic {found:#018x}"),
            DecodeError::EndianMismatch => {
                write!(f, "byte-swapped header: written by a big-endian encoder")
            }
            DecodeError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads {supported})")
            }
            DecodeError::BadKind { found } => write!(f, "unexpected payload kind {found}"),
            DecodeError::BadMode { found } => write!(f, "unknown container mode {found}"),
            DecodeError::HeaderCrc => write!(f, "header checksum mismatch"),
            DecodeError::IdentityMismatch { field, expected, found } => {
                write!(
                    f,
                    "file belongs to a different run: {} is {found}, expected {expected}",
                    field.name()
                )
            }
            DecodeError::DictCorrupt { detail } => write!(f, "dictionary section: {detail}"),
            DecodeError::DictMismatch { table } => {
                write!(f, "embedded {table} dictionary disagrees with this build")
            }
            DecodeError::FrameCorrupt { frame, detail } => {
                write!(f, "frame {frame}: {detail}")
            }
            DecodeError::WorldRequired => {
                write!(f, "seed-joined container needs a world configuration to decode")
            }
            DecodeError::TornTail { valid_records, expected_records } => {
                write!(
                    f,
                    "torn tail: {valid_records} of {expected_records} declared records intact"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Run identity and the shared prelude
// ---------------------------------------------------------------------------

/// The run a file belongs to: the same four fields the journal has
/// pinned since v1. Two files with equal identities were produced by the
/// same world and analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunIdentity {
    /// Seed of the generated world.
    pub world_seed: u64,
    /// Number of blocks in the world.
    pub num_blocks: u64,
    /// Analysis rounds per block (0 where not applicable).
    pub rounds: u64,
    /// Absolute start time of the observation.
    pub start_time: u64,
}

/// Compares two run identities field by field, reporting the first
/// mismatch (in declaration order) as a typed [`DecodeError`].
pub fn check_identity(expected: &RunIdentity, found: &RunIdentity) -> Result<(), DecodeError> {
    let fields = [
        (IdentityField::WorldSeed, expected.world_seed, found.world_seed),
        (IdentityField::NumBlocks, expected.num_blocks, found.num_blocks),
        (IdentityField::Rounds, expected.rounds, found.rounds),
        (IdentityField::StartTime, expected.start_time, found.start_time),
    ];
    for (field, want, got) in fields {
        if want != got {
            return Err(DecodeError::IdentityMismatch { field, expected: want, found: got });
        }
    }
    Ok(())
}

/// Explicit little-endian tag written into every prelude. A big-endian
/// writer would store these two bytes swapped, which decodes as
/// [`DecodeError::EndianMismatch`].
pub const ENDIAN_TAG: u16 = 0xFEFF;

/// Byte length of the shared prelude.
pub const PRELUDE_LEN: usize = 64;

/// The fixed 64-byte header prelude every versioned format starts with:
///
/// ```text
/// magic u64 | version u16 | endian u16 (0xFEFF) | kind u8 | mode u8 |
/// reserved u16 (0) | world_seed u64 | num_blocks u64 | rounds u64 |
/// start_time u64 | record_count u64 | crc32 u32 | reserved u32 (0)
/// ```
///
/// The CRC covers the first 56 bytes; the trailing reserved word must be
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prelude {
    /// Format magic (eight ASCII bytes as a little-endian integer).
    pub magic: u64,
    /// Format version.
    pub version: u16,
    /// Payload kind (format-specific).
    pub kind: u8,
    /// Container mode (format-specific; 0 where unused).
    pub mode: u8,
    /// Identity of the run that produced the file.
    pub identity: RunIdentity,
    /// Records the file declares (0 for append-only journals, whose
    /// record count is implied by their length).
    pub record_count: u64,
}

impl Prelude {
    /// Serializes the prelude, computing its CRC.
    pub fn encode(&self) -> [u8; PRELUDE_LEN] {
        let mut buf = [0u8; PRELUDE_LEN];
        buf[0..8].copy_from_slice(&self.magic.to_le_bytes());
        buf[8..10].copy_from_slice(&self.version.to_le_bytes());
        buf[10..12].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
        buf[12] = self.kind;
        buf[13] = self.mode;
        // buf[14..16] reserved, zero.
        buf[16..24].copy_from_slice(&self.identity.world_seed.to_le_bytes());
        buf[24..32].copy_from_slice(&self.identity.num_blocks.to_le_bytes());
        buf[32..40].copy_from_slice(&self.identity.rounds.to_le_bytes());
        buf[40..48].copy_from_slice(&self.identity.start_time.to_le_bytes());
        buf[48..56].copy_from_slice(&self.record_count.to_le_bytes());
        let crc = crc32(&buf[0..56]);
        buf[56..60].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// CRC the encoded prelude carries (chained into every frame CRC so
    /// frames cannot be spliced between files).
    pub fn header_crc(&self) -> u32 {
        let buf = self.encode();
        u32::from_le_bytes([buf[56], buf[57], buf[58], buf[59]])
    }

    /// Parses and structurally validates a prelude: length, endianness
    /// tag, CRC, reserved bytes. Magic/version/kind are *not* interpreted
    /// here — call [`Prelude::require`] next with the caller's
    /// expectations, so unknown magic is reported before any other field
    /// is trusted.
    pub fn decode(bytes: &[u8]) -> Result<Prelude, DecodeError> {
        if bytes.len() < PRELUDE_LEN {
            return Err(DecodeError::Truncated { need: PRELUDE_LEN, have: bytes.len() });
        }
        let b = &bytes[..PRELUDE_LEN];
        let le_u16 = |o: usize| u16::from_le_bytes([b[o], b[o + 1]]);
        let le_u32 = |o: usize| u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
        let le_u64 = |o: usize| {
            u64::from_le_bytes([
                b[o],
                b[o + 1],
                b[o + 2],
                b[o + 3],
                b[o + 4],
                b[o + 5],
                b[o + 6],
                b[o + 7],
            ])
        };
        if crc32(&b[0..56]) != le_u32(56) {
            return Err(DecodeError::HeaderCrc);
        }
        let endian = le_u16(10);
        if endian == ENDIAN_TAG.swap_bytes() {
            return Err(DecodeError::EndianMismatch);
        }
        if endian != ENDIAN_TAG || le_u16(14) != 0 || le_u32(60) != 0 {
            return Err(DecodeError::HeaderCrc);
        }
        Ok(Prelude {
            magic: le_u64(0),
            version: le_u16(8),
            kind: b[12],
            mode: b[13],
            identity: RunIdentity {
                world_seed: le_u64(16),
                num_blocks: le_u64(24),
                rounds: le_u64(32),
                start_time: le_u64(40),
            },
            record_count: le_u64(48),
        })
    }

    /// Checks magic, version and kind against the caller's format. A
    /// byte-reversed magic is reported as [`DecodeError::EndianMismatch`]
    /// rather than garbage.
    pub fn require(&self, magic: u64, version: u16, kind: u8) -> Result<(), DecodeError> {
        if self.magic != magic {
            if self.magic == magic.swap_bytes() {
                return Err(DecodeError::EndianMismatch);
            }
            return Err(DecodeError::BadMagic { found: self.magic });
        }
        if self.version != version {
            return Err(DecodeError::UnsupportedVersion {
                found: self.version,
                supported: version,
            });
        }
        if self.kind != kind {
            return Err(DecodeError::BadKind { found: self.kind });
        }
        Ok(())
    }
}

/// Sniffs the leading magic of `bytes` (little-endian u64), if present.
pub fn sniff_magic(bytes: &[u8]) -> Option<u64> {
    let first: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(first))
}

// ---------------------------------------------------------------------------
// Bit-level IO
// ---------------------------------------------------------------------------

/// LSB-first bit accumulator over a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte of `buf` (0 = byte-aligned).
    fill: u32,
}

impl BitWriter {
    /// Starts an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `bits` bits of `value`, LSB first.
    pub fn put(&mut self, mut value: u64, mut bits: u32) {
        debug_assert!(bits <= 64);
        debug_assert!(bits == 64 || value >> bits == 0, "value wider than field");
        while bits > 0 {
            if self.fill == 0 {
                self.buf.push(0);
            }
            let take = (8 - self.fill).min(bits);
            let chunk = (value & ((1u64 << take) - 1)) as u8;
            *self.buf.last_mut().expect("pushed above") |= chunk << self.fill;
            self.fill = (self.fill + take) % 8;
            value >>= take;
            bits -= take;
        }
    }

    /// Appends one bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put(bit as u64, 1);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        self.fill = 0;
    }

    /// Finishes the stream (zero-padding the last byte) and returns it.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align();
        self.buf
    }
}

/// LSB-first bit reader over a byte slice. Bounded: reads past the end
/// return `None` and leave the reader unusable for further progress.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `bits` bits, LSB first. `None` past the end of input.
    pub fn get(&mut self, bits: u32) -> Option<u64> {
        debug_assert!(bits <= 64);
        if bits as usize > self.bytes.len() * 8 - self.pos {
            return None;
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < bits {
            let byte = self.bytes[self.pos / 8];
            let off = (self.pos % 8) as u32;
            let take = (8 - off).min(bits - got);
            let chunk = ((byte >> off) as u64) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        Some(out)
    }

    /// Reads one bit.
    pub fn get_bit(&mut self) -> Option<bool> {
        self.get(1).map(|b| b != 0)
    }

    /// Bytes fully or partially consumed so far.
    pub fn bytes_consumed(&self) -> usize {
        self.pos.div_ceil(8)
    }
}

// ---------------------------------------------------------------------------
// Rice coding
// ---------------------------------------------------------------------------

/// Quotient at which Rice coding escapes to a fixed-width raw value,
/// bounding how many unary bits a (possibly corrupt) stream can make the
/// decoder consume.
pub const RICE_ESC_Q: u64 = 16;
/// Width of the escaped raw value. Every Rice-coded quantity in our
/// formats (dictionary indices, outage counts) fits 40 bits.
pub const RICE_RAW_BITS: u32 = 40;
/// Largest value Rice coding accepts.
pub const RICE_MAX: u64 = (1 << RICE_RAW_BITS) - 1;

/// Bits `rice_put` would spend on `v` with parameter `k`.
pub fn rice_cost(v: u64, k: u32) -> u64 {
    let q = v >> k;
    if q < RICE_ESC_Q {
        q + 1 + k as u64
    } else {
        RICE_ESC_Q + RICE_RAW_BITS as u64
    }
}

/// Appends `v` Rice-coded with parameter `k`. `v` must be ≤ [`RICE_MAX`].
pub fn rice_put(w: &mut BitWriter, v: u64, k: u32) {
    debug_assert!(v <= RICE_MAX);
    let q = v >> k;
    if q < RICE_ESC_Q {
        // q one-bits, a zero, then the k low bits.
        for _ in 0..q {
            w.put_bit(true);
        }
        w.put_bit(false);
        w.put(v & ((1u64 << k) - 1), k);
    } else {
        // RICE_ESC_Q one-bits (no terminator), then the raw value.
        for _ in 0..RICE_ESC_Q {
            w.put_bit(true);
        }
        w.put(v, RICE_RAW_BITS);
    }
}

/// Reads one Rice-coded value with parameter `k`. Total: bounded unary
/// scan, `None` on exhausted input.
pub fn rice_get(r: &mut BitReader<'_>, k: u32) -> Option<u64> {
    let mut q = 0u64;
    while q < RICE_ESC_Q {
        if !r.get_bit()? {
            let low = r.get(k)?;
            return Some((q << k) | low);
        }
        q += 1;
    }
    r.get(RICE_RAW_BITS)
}

/// The `k` minimizing total Rice cost over `values` (searched over
/// `0..=24`), together with that cost in bits.
pub fn rice_best_k(values: impl Iterator<Item = u64> + Clone) -> (u32, u64) {
    let mut best = (0u32, u64::MAX);
    for k in 0..=24 {
        let cost: u64 = values.clone().map(|v| rice_cost(v, k)).sum();
        if cost < best.1 {
            best = (k, cost);
        }
    }
    best
}

/// Maps a signed value onto the unsigned zigzag spiral (0, -1, 1, -2, …).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

// ---------------------------------------------------------------------------
// String tables
// ---------------------------------------------------------------------------

/// Appends a string table: `count u16`, then per entry `len u8` + UTF-8
/// bytes. Entries must number ≤ 65535 and each fit 255 bytes.
pub fn put_string_table<'a>(out: &mut Vec<u8>, entries: impl Iterator<Item = &'a str>) {
    let at = out.len();
    out.extend_from_slice(&[0, 0]);
    let mut count: u16 = 0;
    for s in entries {
        let bytes = s.as_bytes();
        assert!(bytes.len() <= u8::MAX as usize, "string table entry too long");
        out.push(bytes.len() as u8);
        out.extend_from_slice(bytes);
        count = count.checked_add(1).expect("string table too large");
    }
    out[at..at + 2].copy_from_slice(&count.to_le_bytes());
}

/// Reads a string table written by [`put_string_table`], borrowing every
/// entry from `bytes` (zero-copy). `pos` advances past the table.
pub fn read_string_table<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
) -> Result<Vec<&'a str>, DecodeError> {
    let corrupt = |detail| DecodeError::DictCorrupt { detail };
    let take = |pos: &mut usize, n: usize| -> Result<&'a [u8], DecodeError> {
        let end = pos.checked_add(n).ok_or(corrupt("length overflow"))?;
        let slice = bytes.get(*pos..end).ok_or(corrupt("string table truncated"))?;
        *pos = end;
        Ok(slice)
    };
    let count = take(pos, 2)?;
    let count = u16::from_le_bytes([count[0], count[1]]) as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = take(pos, 1)?[0] as usize;
        let raw = take(pos, len)?;
        entries.push(std::str::from_utf8(raw).map_err(|_| corrupt("non-UTF-8 entry"))?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        let mut inc = Crc32::new();
        inc.update(&data[..100]);
        inc.update(&data[100..]);
        assert_eq!(inc.finish(), crc32(&data));
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bits_roundtrip_across_boundaries() {
        let mut w = BitWriter::new();
        let fields: [(u64, u32); 7] =
            [(1, 1), (0b1011, 4), (0xFFFF_FFFF, 32), (0, 7), (u64::MAX, 64), (5, 3), (1, 1)];
        for (v, n) in fields {
            w.put(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, n) in fields {
            assert_eq!(r.get(n), Some(v), "{n}-bit field");
        }
    }

    #[test]
    fn bit_reader_is_bounded() {
        let bytes = [0xFFu8; 2];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(16), Some(0xFFFF));
        assert_eq!(r.get(1), None);
        assert_eq!(BitReader::new(&[]).get(1), None);
    }

    #[test]
    fn rice_roundtrips_all_parameter_ranges() {
        let values = [0u64, 1, 2, 7, 63, 64, 1000, 65_535, RICE_MAX];
        for k in [0u32, 1, 3, 8, 16, 24] {
            let mut w = BitWriter::new();
            for &v in &values {
                rice_put(&mut w, v, k);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(rice_get(&mut r, k), Some(v), "k={k} v={v}");
            }
        }
    }

    #[test]
    fn rice_escape_bounds_unary_scans() {
        // A stream of all one-bits must terminate within the escape
        // budget rather than scanning forever (or panicking). 56 bits =
        // exactly 16 unary + 40 raw.
        let ones = vec![0xFFu8; 7];
        let mut r = BitReader::new(&ones);
        assert_eq!(rice_get(&mut r, 0), Some((1 << RICE_RAW_BITS) - 1));
        // Nothing left → the next read fails instead of scanning on.
        assert_eq!(rice_get(&mut r, 0), None);
        // And a short all-ones stream fails outright, no panic.
        assert_eq!(rice_get(&mut BitReader::new(&[0xFF; 4]), 0), None);
    }

    #[test]
    fn rice_best_k_is_exact_argmin() {
        let values = [0u64, 1, 1, 2, 3, 40, 41, 42];
        let (k, cost) = rice_best_k(values.iter().copied());
        for other in 0..=24u32 {
            let c: u64 = values.iter().map(|&v| rice_cost(v, other)).sum();
            assert!(cost <= c, "k={k} beaten by k={other}");
        }
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 123_456, -987_654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn prelude_roundtrips_and_validates() {
        let p = Prelude {
            magic: 0x1122_3344_5566_7788,
            version: 3,
            kind: 1,
            mode: 0,
            identity: RunIdentity { world_seed: 9, num_blocks: 50, rounds: 131, start_time: 77 },
            record_count: 42,
        };
        let buf = p.encode();
        assert_eq!(Prelude::decode(&buf), Ok(p));
        assert_eq!(
            Prelude::decode(&buf[..10]),
            Err(DecodeError::Truncated { need: PRELUDE_LEN, have: 10 })
        );
        for i in 0..PRELUDE_LEN {
            let mut bad = buf;
            bad[i] ^= 0x41;
            assert!(Prelude::decode(&bad).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn prelude_flags_byte_swapped_headers() {
        let p = Prelude {
            magic: 0x4242,
            version: 1,
            kind: 0,
            mode: 0,
            identity: RunIdentity::default(),
            record_count: 0,
        };
        // Simulate a big-endian writer: every multi-byte field reversed.
        let mut buf = [0u8; PRELUDE_LEN];
        buf[0..8].copy_from_slice(&p.magic.to_be_bytes());
        buf[8..10].copy_from_slice(&p.version.to_be_bytes());
        buf[10..12].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        let crc = crc32(&buf[0..56]);
        buf[56..60].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Prelude::decode(&buf), Err(DecodeError::EndianMismatch));
        // And the magic-level detection, for formats whose prelude parsed.
        let ok = Prelude::decode(&p.encode()).unwrap();
        assert_eq!(
            Prelude { magic: p.magic.swap_bytes(), ..ok }.require(p.magic, 1, 0),
            Err(DecodeError::EndianMismatch)
        );
    }

    #[test]
    fn require_reports_each_mismatch_kind() {
        let p = Prelude {
            magic: 77,
            version: 2,
            kind: 1,
            mode: 0,
            identity: RunIdentity::default(),
            record_count: 0,
        };
        assert_eq!(p.require(78, 2, 1), Err(DecodeError::BadMagic { found: 77 }));
        assert_eq!(
            p.require(77, 3, 1),
            Err(DecodeError::UnsupportedVersion { found: 2, supported: 3 })
        );
        assert_eq!(p.require(77, 2, 0), Err(DecodeError::BadKind { found: 1 }));
        assert_eq!(p.require(77, 2, 1), Ok(()));
    }

    #[test]
    fn string_tables_roundtrip_borrowed_and_reject_damage() {
        let mut out = vec![0xEE]; // leading byte the table must skip
        put_string_table(&mut out, ["", "ab", "ÅÄÖ", "dsl"].into_iter());
        let mut pos = 1;
        let back = read_string_table(&out, &mut pos).unwrap();
        assert_eq!(back, ["", "ab", "ÅÄÖ", "dsl"]);
        assert_eq!(pos, out.len());
        // Truncation at every length is a typed error, never a panic.
        for cut in 0..out.len() {
            let mut pos = 1;
            match read_string_table(&out[..cut], &mut pos) {
                Ok(_) => panic!("truncated table at {cut} decoded"),
                Err(DecodeError::DictCorrupt { .. }) => {}
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        // Invalid UTF-8 is rejected.
        let mut bad = Vec::new();
        put_string_table(&mut bad, ["ok"].into_iter());
        bad[3] = 0xFF;
        let mut pos = 0;
        assert!(matches!(read_string_table(&bad, &mut pos), Err(DecodeError::DictCorrupt { .. })));
    }

    #[test]
    fn identity_mismatch_names_the_field() {
        let a = RunIdentity { world_seed: 1, num_blocks: 2, rounds: 3, start_time: 4 };
        assert_eq!(check_identity(&a, &a), Ok(()));
        let cases = [
            (RunIdentity { world_seed: 9, ..a }, IdentityField::WorldSeed),
            (RunIdentity { num_blocks: 9, ..a }, IdentityField::NumBlocks),
            (RunIdentity { rounds: 9, ..a }, IdentityField::Rounds),
            (RunIdentity { start_time: 9, ..a }, IdentityField::StartTime),
        ];
        for (found, field) in cases {
            match check_identity(&a, &found) {
                Err(DecodeError::IdentityMismatch { field: got, .. }) => assert_eq!(got, field),
                other => panic!("expected IdentityMismatch({field:?}), got {other:?}"),
            }
        }
    }
}
