//! Property-based tests for the streaming ingest engine: shard routing
//! is a pure function of the block id (so verdicts cannot depend on the
//! shard count), any arrival order that preserves per-block emission
//! order yields byte-identical outcomes, and the online detector's
//! snapshot/restore is equivalence-preserving at an arbitrary cut point.

use proptest::prelude::*;
use sleepwatch_core::streaming::{DetectorSnapshot, OnlineConfig, OnlineDetector};
use sleepwatch_core::{ingest_direct, ingest_events, AnalysisConfig, IngestConfig, IngestOutcome};
use sleepwatch_probing::{interleave, replay_run, FaultPlan, RoundEvent, TrinocularProber};
use sleepwatch_simnet::{shard_of, WorldConfig, WorldSource};
use std::sync::OnceLock;

const FIXTURE_SEED: u64 = 0x0051_E57A;

fn world_cfg() -> WorldConfig {
    WorldConfig { num_blocks: 12, seed: FIXTURE_SEED, span_days: 1.0, ..Default::default() }
}

fn source() -> &'static WorldSource {
    static SOURCE: OnceLock<WorldSource> = OnceLock::new();
    SOURCE.get_or_init(|| WorldSource::new(world_cfg()))
}

fn cfg() -> &'static AnalysisConfig {
    static CFG: OnceLock<AnalysisConfig> = OnceLock::new();
    CFG.get_or_init(|| {
        let w = world_cfg();
        AnalysisConfig {
            // Duplicates and reordering make per-block order the only
            // invariant left — the hardest feed for the engine.
            faults: FaultPlan::dup_reorder(FIXTURE_SEED),
            ..AnalysisConfig::over_days(w.start_time, w.span_days)
        }
    })
}

/// One event stream per block, probed exactly as the batch pipeline
/// would, shared by every proptest case.
fn streams() -> &'static Vec<Vec<RoundEvent>> {
    static STREAMS: OnceLock<Vec<Vec<RoundEvent>>> = OnceLock::new();
    STREAMS.get_or_init(|| {
        let (src, cfg) = (source(), cfg());
        (0..src.len() as u64)
            .map(|id| {
                let block = src.generate_block(id);
                let mut prober = TrinocularProber::new(&block, cfg.trinocular);
                replay_run(&prober.run_with_faults(&block, cfg.start_time, cfg.rounds, &cfg.faults))
            })
            .collect()
    })
}

/// The queue-less single-lane reference every engine run must match.
fn reference() -> &'static Vec<String> {
    static REFERENCE: OnceLock<Vec<String>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let feed: Vec<RoundEvent> = streams().iter().flatten().copied().collect();
        let out = ingest_direct(source(), cfg(), feed);
        assert!(out.quarantined.is_empty());
        assert_eq!(out.reports.len(), source().len());
        out.reports.iter().map(|r| format!("{r:?}")).collect()
    })
}

fn assert_matches_reference(out: &IngestOutcome, context: &str) {
    assert!(out.quarantined.is_empty(), "{context}: quarantines");
    let got: Vec<String> = out.reports.iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(&got, reference(), "{context}: verdicts diverged from the direct reference");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `shard_of` is pure and in range: the same id maps to the same
    /// shard on every call, independent of everything else.
    #[test]
    fn shard_routing_is_a_pure_in_range_function(id in any::<u64>(), shards in 1usize..=16) {
        let first = shard_of(id, shards);
        prop_assert!(first < shards, "shard {first} out of range for {shards}");
        prop_assert_eq!(first, shard_of(id, shards), "routing is not a pure function");
    }

    /// Verdicts are independent of the shard count: because routing is a
    /// pure function of the block id, every event of a block lands on one
    /// shard, and 1..=8 shards all reproduce the direct reference.
    #[test]
    fn verdicts_are_independent_of_shard_count(
        shards in 1usize..=8,
        batch_events in 1usize..=64,
    ) {
        let icfg = IngestConfig { shards, batch_events, ..Default::default() };
        let feed: Vec<RoundEvent> = streams().iter().flatten().copied().collect();
        let out = ingest_events(source(), cfg(), &icfg, feed);
        assert_matches_reference(&out, &format!("{shards} shards, batch {batch_events}"));
    }

    /// Any per-block-order-preserving interleaving yields identical
    /// outcomes: arbitrary seeds drive the cross-stream shuffle, tiny
    /// queue capacities force backpressure stalls, and the verdicts never
    /// move.
    #[test]
    fn any_order_preserving_interleaving_agrees(
        seed in any::<u64>(),
        capacity in 16usize..=512,
    ) {
        let icfg = IngestConfig { shards: 4, queue_capacity: capacity, ..Default::default() };
        let feed = interleave(streams().clone(), seed);
        let out = ingest_events(source(), cfg(), &icfg, feed);
        prop_assert!(
            out.stats.queue_high_water <= capacity + icfg.batch_events,
            "queue grew past its bound: {} > {capacity} + {}",
            out.stats.queue_high_water,
            icfg.batch_events,
        );
        assert_matches_reference(&out, &format!("interleave seed {seed:#x}, capacity {capacity}"));
    }

    /// Snapshot/restore at an arbitrary cut is invisible: the restored
    /// detector finishes the series with exactly the state an
    /// uninterrupted one reaches, even through the encoded byte form.
    #[test]
    fn snapshot_restore_at_any_cut_is_equivalent(
        values in proptest::collection::vec(0.0f64..1.0, 8..160),
        cut_frac in 0.0f64..1.0,
        window in 4usize..=48,
    ) {
        let cfg = OnlineConfig {
            window_rounds: window,
            reclassify_every: (window / 4).max(1),
            screen_threshold: 0.0,
            ..Default::default()
        };
        let cut = ((cut_frac * values.len() as f64) as usize).min(values.len() - 1);

        let mut uninterrupted = OnlineDetector::new(cfg);
        for &v in &values {
            uninterrupted.push_value(v);
        }

        let mut first_half = OnlineDetector::new(cfg);
        for &v in &values[..cut] {
            first_half.push_value(v);
        }
        let bytes = first_half.snapshot().encode();
        let snap = DetectorSnapshot::decode(&bytes).expect("own encoding decodes");
        let mut resumed = OnlineDetector::restore(&snap);
        for &v in &values[cut..] {
            resumed.push_value(v);
        }

        prop_assert_eq!(resumed.class(), uninterrupted.class(), "class diverged at cut {}", cut);
        prop_assert_eq!(resumed.phase(), uninterrupted.phase(), "phase diverged at cut {}", cut);
        prop_assert_eq!(
            resumed.classifications(),
            uninterrupted.classifications(),
            "classification count diverged at cut {}",
            cut
        );
    }
}
