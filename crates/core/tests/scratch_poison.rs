//! Poisoned-scratch properties: `analyze_block_with_scratch` output must
//! be independent of whatever the arena held before the call — NaN-filled
//! buffers, garbage lengths, or genuine stale state left by analyzing a
//! *different* block. Anything less would make worker-local scratch reuse
//! order-dependent and break the differential equivalence guarantees.

use proptest::prelude::*;
use sleepwatch_core::{analyze_block, analyze_block_with_scratch, AnalysisConfig, BlockScratch};
use sleepwatch_probing::FaultPlan;
use sleepwatch_simnet::{BlockProfile, BlockSpec};

/// A parameterized block: diurnal mix and timezone vary per case.
fn block(id: u64, seed: u64, n_diurnal: u16, offset_h: f64) -> BlockSpec {
    BlockSpec::bare(
        id,
        seed,
        BlockProfile {
            n_stable: 40,
            n_diurnal,
            stable_avail: 0.9,
            diurnal_avail: 0.85,
            onset_hours: 8.0,
            onset_spread: 2.0,
            duration_hours: 9.0,
            duration_spread: 1.0,
            sigma_start: 0.5,
            sigma_duration: 0.5,
            utc_offset_hours: offset_h,
        },
    )
}

fn cfg(days: f64, faulted: bool) -> AnalysisConfig {
    let mut cfg = AnalysisConfig::over_days(0, days);
    if faulted {
        cfg.faults = FaultPlan::loss_heavy(0xBAD);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fresh scratch, poisoned scratch and a scratch still warm from a
    /// *different* block all produce the same summary — which also
    /// matches the allocating `analyze_block` wrapper.
    #[test]
    fn output_is_independent_of_scratch_contents(
        seed in 1u64..500,
        n_diurnal in 0u16..200,
        offset_h in -11i32..12,
        poison_seed in 0u64..u64::MAX,
        faulted in any::<bool>(),
    ) {
        let b = block(1, seed, n_diurnal, offset_h as f64);
        let acfg = cfg(3.0, faulted);

        let mut fresh = BlockScratch::new();
        let want = analyze_block_with_scratch(&b, &acfg, &mut fresh);

        let mut poisoned = BlockScratch::new();
        poisoned.poison(poison_seed);
        prop_assert_eq!(analyze_block_with_scratch(&b, &acfg, &mut poisoned), want);

        // Stale state from a genuinely different block (other profile,
        // other span ⇒ other buffer lengths).
        let mut stale = BlockScratch::new();
        let other = block(2, seed.wrapping_add(17), 200 - n_diurnal, -(offset_h as f64));
        analyze_block_with_scratch(&other, &cfg(4.0, false), &mut stale);
        prop_assert_eq!(analyze_block_with_scratch(&b, &acfg, &mut stale), want);

        // And the allocating wrapper agrees with all of the above.
        prop_assert_eq!(analyze_block(&b, &acfg).summary(), want);
    }

    /// Repeated reuse of one arena over a shuffled block sequence matches
    /// a fresh arena per block, case by case.
    #[test]
    fn reuse_across_a_block_sequence_matches_fresh(
        seed in 1u64..500,
        n_blocks in 2usize..6,
    ) {
        let blocks: Vec<BlockSpec> = (0..n_blocks as u64)
            .map(|i| block(i, seed.wrapping_add(i), (i as u16 * 57) % 201, (i as f64 * 5.0) - 10.0))
            .collect();
        let acfg = cfg(3.0, false);
        let mut reused = BlockScratch::new();
        for b in &blocks {
            let mut fresh = BlockScratch::new();
            prop_assert_eq!(
                analyze_block_with_scratch(b, &acfg, &mut reused),
                analyze_block_with_scratch(b, &acfg, &mut fresh),
                "block {} diverged under reuse", b.id
            );
        }
    }
}
