//! Proves the steady-state block pipeline is allocation-free.
//!
//! Extends the PR-1 spectral alloc test to the *whole* pipeline: after a
//! warm-up block sizes the `BlockScratch` arena, every further
//! `analyze_block_with_scratch` call — same or alternating same-length
//! blocks — performs zero heap allocations. Growth is permitted only when
//! the series length increases (longer observation span), after which the
//! steady state must be allocation-free again at the new size.
//!
//! The counter is thread-local so the harness's own threads cannot
//! perturb the counted window.

use sleepwatch_core::{analyze_block_with_scratch, AnalysisConfig, BlockScratch};
use sleepwatch_simnet::{BlockProfile, BlockSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

std::thread_local! {
    // const-initialized: reading it from inside the allocator never
    // triggers a lazy (allocating) initialization.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

fn diurnal_block(id: u64) -> BlockSpec {
    BlockSpec::bare(
        id,
        55,
        BlockProfile {
            n_stable: 40,
            n_diurnal: 160,
            stable_avail: 0.9,
            diurnal_avail: 0.9,
            onset_hours: 8.0,
            onset_spread: 2.0,
            duration_hours: 9.0,
            duration_spread: 1.0,
            sigma_start: 0.5,
            sigma_duration: 0.5,
            utc_offset_hours: 0.0,
        },
    )
}

fn flat_block(id: u64) -> BlockSpec {
    BlockSpec::bare(id, 55, BlockProfile::always_on(120, 0.8))
}

#[test]
fn second_call_on_warm_scratch_does_not_allocate() {
    let cfg = AnalysisConfig::over_days(0, 3.0);
    let block = diurnal_block(1);
    let mut scratch = BlockScratch::new();
    // Warm-up: sizes the arena and populates the global FFT plan cache.
    let warm = analyze_block_with_scratch(&block, &cfg, &mut scratch);
    let before = allocations();
    let again = analyze_block_with_scratch(&block, &cfg, &mut scratch);
    let allocated = allocations() - before;
    assert_eq!(allocated, 0, "second warm call allocated {allocated} times");
    assert_eq!(again, warm, "warm call changed the result");
}

#[test]
fn alternating_same_length_blocks_stay_allocation_free() {
    // Different blocks, same observation span ⇒ same buffer sizes: the
    // worker steady state. Eight counted calls across two block shapes.
    let cfg = AnalysisConfig::over_days(0, 3.0);
    let blocks = [diurnal_block(2), flat_block(3)];
    let mut scratch = BlockScratch::new();
    for b in &blocks {
        analyze_block_with_scratch(b, &cfg, &mut scratch);
    }
    let before = allocations();
    for i in 0..8 {
        analyze_block_with_scratch(&blocks[i % 2], &cfg, &mut scratch);
    }
    let allocated = allocations() - before;
    assert_eq!(allocated, 0, "steady state allocated {allocated} times");
}

#[test]
fn growth_is_bounded_to_series_length_increases() {
    // A longer span may grow the arena (that's the grow-only contract) —
    // but after one warm-up at the new length the pipeline must be
    // allocation-free again.
    let short = AnalysisConfig::over_days(0, 3.0);
    let long = AnalysisConfig::over_days(0, 6.0);
    let block = diurnal_block(4);
    let mut scratch = BlockScratch::new();
    analyze_block_with_scratch(&block, &short, &mut scratch);
    let before_short = allocations();
    analyze_block_with_scratch(&block, &short, &mut scratch);
    assert_eq!(allocations() - before_short, 0);

    // Growth call: allowed to allocate (buffers resize to the new span).
    analyze_block_with_scratch(&block, &long, &mut scratch);
    let before_long = allocations();
    analyze_block_with_scratch(&block, &long, &mut scratch);
    let allocated = allocations() - before_long;
    assert_eq!(allocated, 0, "post-growth steady state allocated {allocated} times");

    // Shrinking back to the short span never allocates: capacity is kept.
    let before_back = allocations();
    analyze_block_with_scratch(&block, &short, &mut scratch);
    let allocated = allocations() - before_back;
    assert_eq!(allocated, 0, "shorter span on a grown arena allocated {allocated} times");
}
