//! Cross-format header-compatibility regressions: the journal (v1 and
//! v2) and the compact dataset container share one prelude validator,
//! so every mismatch kind — wrong magic, byte-swapped file, future
//! version, wrong payload kind or mode, foreign run identity — must
//! surface as the *same* typed [`DecodeError`] from every format, with
//! the same `Display` text.

use sleepwatch_core::binfmt::{dataset_identity, DATASET_MAGIC, DATASET_VERSION, KIND_DATASET};
use sleepwatch_core::framing::{crc32, Prelude, PRELUDE_LEN};
use sleepwatch_core::journal::{decode_header_v2, encode_header_v2, open_resume, JOURNAL_VERSION};
use sleepwatch_core::{
    analyze_world, dataset_rows, decode_dataset, encode_dataset, AnalysisConfig, BinDataset,
    DatasetMode, DecodeError, IdentityField, JournalError, JournalHeader,
};
use sleepwatch_simnet::{World, WorldConfig};

// The journal magics read the ASCII big-endian (unlike the dataset
// magic), so on disk a v2 journal begins "2LNJWPLS".
const JOURNAL_MAGIC_V2: u64 = u64::from_be_bytes(*b"SLPWJNL2");

fn fixture_cfg() -> WorldConfig {
    WorldConfig { num_blocks: 40, seed: 21, span_days: 1.0, ..Default::default() }
}

/// A small encoded seed-joined dataset plus the world that produced it.
fn fixture() -> (WorldConfig, Vec<u8>) {
    let cfg = fixture_cfg();
    let world = World::generate(cfg.clone());
    let acfg = AnalysisConfig::over_days(world.cfg.start_time, world.cfg.span_days);
    let analysis = analyze_world(&world, &acfg, 2, None);
    let bytes = encode_dataset(&dataset_rows(&analysis), DatasetMode::SeedJoined(&world.cfg))
        .expect("fixture encode");
    (world.cfg.clone(), bytes)
}

/// Re-heads a dataset file with a prelude whose fields were tweaked by
/// `patch` — the CRC is recomputed, so only the *interpreted* fields
/// differ from a valid file.
fn rehead(bytes: &[u8], patch: impl FnOnce(&mut Prelude)) -> Vec<u8> {
    let mut prelude = Prelude::decode(bytes).expect("fixture prelude decodes");
    patch(&mut prelude);
    let mut out = prelude.encode().to_vec();
    out.extend_from_slice(&bytes[PRELUDE_LEN..]);
    out
}

/// Scratch path for the `open_resume` dispatch tests.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sleepwatch-headercompat-{tag}-{}", std::process::id()))
}

// ---------------------------------------------------------------------------
// Identity mismatches: every field, same error from either format
// ---------------------------------------------------------------------------

/// Decoding a seed-joined dataset against a world that differs in any
/// identity field reports `IdentityMismatch` naming that field — and the
/// error value is exactly the one the journal would report for the same
/// disagreement, because both run through `check_identity`.
#[test]
fn dataset_identity_mismatch_names_each_field() {
    let (cfg, bytes) = fixture();
    type Tweak = fn(&mut WorldConfig);
    let cases: [(IdentityField, Tweak); 3] = [
        (IdentityField::WorldSeed, |c| c.seed += 1),
        (IdentityField::NumBlocks, |c| c.num_blocks += 1),
        (IdentityField::StartTime, |c| c.start_time += 3600),
    ];
    for (field, tweak) in cases {
        let mut other = cfg.clone();
        tweak(&mut other);
        let err = decode_dataset(&bytes, Some(&other)).expect_err("foreign world must be refused");
        let DecodeError::IdentityMismatch { field: got, .. } = err else {
            panic!("{}: expected IdentityMismatch, got {err:?}", field.name());
        };
        assert_eq!(got, field, "wrong field blamed");

        // The journal's resume-time identity check must produce the very
        // same error value for the same disagreement.
        let expect = JournalHeader::from_identity(&dataset_identity(&other));
        let found = JournalHeader::from_identity(&dataset_identity(&cfg));
        let path = scratch(&format!("idmatch-{}", field.name()));
        let _ = std::fs::remove_file(&path);
        drop(open_resume(&path, &found).expect("fresh journal"));
        let journal_err = open_resume(&path, &expect).expect_err("foreign journal must be refused");
        let JournalError::HeaderMismatch { mismatch, .. } = journal_err else {
            panic!("{}: expected HeaderMismatch, got {journal_err:?}", field.name());
        };
        assert_eq!(mismatch, err, "{}: journal and dataset errors diverged", field.name());
        assert!(mismatch.to_string().contains("different run"), "unexpected message: {mismatch}");
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------------
// Prelude-level mismatches against the dataset container
// ---------------------------------------------------------------------------

#[test]
fn dataset_rejects_truncated_prelude() {
    let (cfg, bytes) = fixture();
    let err = BinDataset::parse(&bytes[..10], Some(&cfg)).expect_err("10 bytes is no header");
    assert_eq!(err, DecodeError::Truncated { need: PRELUDE_LEN, have: 10 });
}

#[test]
fn dataset_rejects_byte_swapped_magic_as_endianness() {
    let (cfg, bytes) = fixture();
    let swapped = rehead(&bytes, |p| p.magic = DATASET_MAGIC.swap_bytes());
    let err = BinDataset::parse(&swapped, Some(&cfg)).expect_err("big-endian file");
    assert_eq!(err, DecodeError::EndianMismatch);
}

#[test]
fn dataset_rejects_future_version() {
    let (cfg, bytes) = fixture();
    let future = rehead(&bytes, |p| p.version = DATASET_VERSION + 1);
    let err = BinDataset::parse(&future, Some(&cfg)).expect_err("future version");
    assert_eq!(
        err,
        DecodeError::UnsupportedVersion { found: DATASET_VERSION + 1, supported: DATASET_VERSION }
    );
}

#[test]
fn dataset_rejects_wrong_kind_and_mode() {
    let (cfg, bytes) = fixture();
    let wrong_kind = rehead(&bytes, |p| p.kind = KIND_DATASET + 9);
    assert_eq!(
        BinDataset::parse(&wrong_kind, Some(&cfg)).expect_err("wrong kind"),
        DecodeError::BadKind { found: KIND_DATASET + 9 }
    );
    let wrong_mode = rehead(&bytes, |p| p.mode = 7);
    assert_eq!(
        BinDataset::parse(&wrong_mode, Some(&cfg)).expect_err("wrong mode"),
        DecodeError::BadMode { found: 7 }
    );
}

/// Feeding each format's file to the *other* format's decoder reports
/// the foreign magic — never a crash, never a misparse.
#[test]
fn formats_reject_each_others_files_by_magic() {
    let (cfg, dataset) = fixture();
    let journal = encode_header_v2(&JournalHeader::from_identity(&dataset_identity(&cfg)));

    let err = BinDataset::parse(&journal, Some(&cfg)).expect_err("journal fed to dataset");
    assert_eq!(err, DecodeError::BadMagic { found: JOURNAL_MAGIC_V2 });

    let err = decode_header_v2(&dataset).expect_err("dataset fed to journal");
    assert_eq!(err, DecodeError::BadMagic { found: DATASET_MAGIC });
}

// ---------------------------------------------------------------------------
// The same mismatch kinds against the v2 journal header
// ---------------------------------------------------------------------------

/// Patches one prelude field of an encoded v2 journal header in place,
/// re-fixing the header CRC so only the interpreted field differs.
fn patch_journal_prelude(header: &[u8], patch: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let mut out = header.to_vec();
    patch(&mut out[..PRELUDE_LEN]);
    let crc = crc32(&out[..56]);
    out[56..60].copy_from_slice(&crc.to_le_bytes());
    out
}

#[test]
fn journal_v2_header_reports_the_same_mismatch_kinds() {
    let header = encode_header_v2(&JournalHeader {
        world_seed: 21,
        num_blocks: 40,
        rounds: 96,
        start_time: 1_234_567,
    });
    let (decoded, len) = decode_header_v2(&header).expect("own header decodes");
    assert_eq!(decoded.world_seed, 21);
    assert_eq!(len, header.len());

    assert_eq!(
        decode_header_v2(&header[..20]).expect_err("truncated"),
        DecodeError::Truncated { need: PRELUDE_LEN, have: 20 }
    );

    let swapped = patch_journal_prelude(&header, |p| {
        let m = JOURNAL_MAGIC_V2.swap_bytes();
        p[0..8].copy_from_slice(&m.to_le_bytes());
    });
    assert_eq!(decode_header_v2(&swapped).expect_err("swapped"), DecodeError::EndianMismatch);

    let future = patch_journal_prelude(&header, |p| {
        p[8..10].copy_from_slice(&(JOURNAL_VERSION + 1).to_le_bytes());
    });
    assert_eq!(
        decode_header_v2(&future).expect_err("future version"),
        DecodeError::UnsupportedVersion { found: JOURNAL_VERSION + 1, supported: JOURNAL_VERSION }
    );

    let wrong_kind = patch_journal_prelude(&header, |p| p[12] = 9);
    assert_eq!(
        decode_header_v2(&wrong_kind).expect_err("wrong kind"),
        DecodeError::BadKind { found: 9 }
    );

    let wrong_mode = patch_journal_prelude(&header, |p| p[13] = 5);
    assert_eq!(
        decode_header_v2(&wrong_mode).expect_err("wrong mode"),
        DecodeError::BadMode { found: 5 }
    );

    // A flipped dictionary byte is dictionary corruption, not a panic
    // and not a silent accept.
    let mut dict_flip = header.clone();
    let last = dict_flip.len() - 5; // inside the dict payload, before its CRC
    dict_flip[last] ^= 0x40;
    assert!(matches!(
        decode_header_v2(&dict_flip).expect_err("flipped dict byte"),
        DecodeError::DictCorrupt { .. } | DecodeError::DictMismatch { .. }
    ));
}

// ---------------------------------------------------------------------------
// open_resume dispatch: refusals are typed, garbage is rewritten
// ---------------------------------------------------------------------------

#[test]
fn open_resume_refuses_foreign_and_future_journals_with_typed_errors() {
    let header = JournalHeader { world_seed: 1, num_blocks: 8, rounds: 96, start_time: 0 };

    // A future member of the journal magic family must be refused as a
    // version problem, not rewritten as garbage.
    let path = scratch("future");
    let mut future = (JOURNAL_MAGIC_V2 + 1).to_le_bytes().to_vec(); // "SLPWJNL3"
    future.extend_from_slice(b" pretend future journal");
    std::fs::write(&path, &future).expect("write");
    let err = open_resume(&path, &header).expect_err("future journal");
    let JournalError::Incompatible(inner) = err else {
        panic!("expected Incompatible, got {err:?}");
    };
    assert_eq!(inner, DecodeError::UnsupportedVersion { found: 3, supported: JOURNAL_VERSION });
    let _ = std::fs::remove_file(&path);

    // Byte-swapped magic (either version) is an endianness refusal. A
    // big-endian writer would emit the magic's ASCII in natural order.
    for magic in ["SLPWJNL1", "SLPWJNL2"] {
        let path = scratch(&format!("swapped-{}", &magic[7..]));
        let mut swapped = magic.as_bytes().to_vec();
        swapped.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &swapped).expect("write");
        let err = open_resume(&path, &header).expect_err("byte-swapped journal");
        assert!(
            matches!(err, JournalError::Incompatible(DecodeError::EndianMismatch)),
            "{magic}: got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    // Unrecognized bytes are not a refusal: the journal is rewritten
    // fresh (crash recovery must never wedge on a scribbled file).
    let path = scratch("garbage");
    std::fs::write(&path, b"not a journal at all").expect("write");
    let (writer, reports, _) = open_resume(&path, &header).expect("garbage is rewritten");
    assert!(reports.is_empty());
    drop(writer);
    let bytes = std::fs::read(&path).expect("rewritten journal");
    assert_eq!(bytes[..8], JOURNAL_MAGIC_V2.to_le_bytes(), "fresh journals are written as v2");
    let _ = std::fs::remove_file(&path);
}
