//! Property-based tests for the checkpoint journal codec: decoding is
//! total (never panics, whatever the bytes), the CRC framing catches
//! every single-bit flip and single-byte corruption, and replay always
//! yields an intact prefix of the records actually written.

use proptest::prelude::*;
use sleepwatch_core::journal::{
    crc32, decode_header, decode_record, encode_header, encode_record, replay_bytes, JournalHeader,
    ReplayOutcome, HEADER_LEN, RECORD_LEN,
};
use sleepwatch_core::{analyze_world, AnalysisConfig, WorldBlockReport};
use sleepwatch_simnet::{World, WorldConfig};
use std::sync::OnceLock;

/// A small analyzed world shared by every case: real reports exercise the
/// codec's full field range (located and unlocated blocks, every class).
fn reports() -> &'static Vec<WorldBlockReport> {
    static REPORTS: OnceLock<Vec<WorldBlockReport>> = OnceLock::new();
    REPORTS.get_or_init(|| {
        let world = World::generate(WorldConfig {
            num_blocks: 24,
            seed: 7,
            span_days: 1.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, world.cfg.span_days);
        let analysis = analyze_world(&world, &cfg, 2, None);
        assert!(analysis.quarantined.is_empty());
        analysis.reports
    })
}

fn header() -> JournalHeader {
    JournalHeader { world_seed: 7, num_blocks: 24, rounds: 131, start_time: 0 }
}

/// Journal bytes holding the first `k` reports.
fn journal_bytes(k: usize) -> Vec<u8> {
    let mut bytes = encode_header(&header()).to_vec();
    for r in &reports()[..k] {
        bytes.extend_from_slice(&encode_record(r).expect("table country"));
    }
    bytes
}

fn dbg(r: &WorldBlockReport) -> String {
    format!("{r:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode_record` is total over arbitrary byte slices.
    #[test]
    fn decode_record_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..RECORD_LEN * 2)) {
        let _ = decode_record(&bytes);
    }

    /// `decode_header` is total over arbitrary byte slices.
    #[test]
    fn decode_header_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..HEADER_LEN * 2)) {
        let _ = decode_header(&bytes);
    }

    /// `replay_bytes` is total over arbitrary byte soup: garbage never
    /// resumes (a random 48-byte prefix does not spell the magic), and a
    /// `Resumed` outcome never claims more bytes than the input holds.
    #[test]
    fn replay_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        match replay_bytes(&bytes, &header()) {
            ReplayOutcome::Resumed { reports, valid_len, .. } => {
                prop_assert_eq!(valid_len as usize, HEADER_LEN + reports.len() * RECORD_LEN);
                prop_assert!(valid_len as usize <= bytes.len());
            }
            ReplayOutcome::Fresh { .. } | ReplayOutcome::HeaderMismatch { .. } => {}
        }
    }

    /// Every record encodes and decodes back to itself.
    #[test]
    fn record_roundtrip(idx in 0usize..24) {
        let original = &reports()[idx];
        let frame = encode_record(original).expect("table country");
        let back = decode_record(&frame).expect("own encoding decodes");
        prop_assert_eq!(dbg(original), dbg(&back));
    }

    /// Any single-bit flip anywhere in a frame is caught by the CRC (or
    /// the magic/validation layers underneath it).
    #[test]
    fn any_bit_flip_is_caught(idx in 0usize..24, bit in 0usize..RECORD_LEN * 8) {
        let mut frame = encode_record(&reports()[idx]).expect("table country");
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_record(&frame).is_none(), "flip of bit {} went undetected", bit);
    }

    /// Corrupting one byte of a journal discards exactly the frames from
    /// the damaged one onward: replay returns the intact prefix.
    #[test]
    fn replay_keeps_exactly_the_intact_prefix(
        k in 1usize..24,
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = journal_bytes(k);
        let body = bytes.len() - HEADER_LEN;
        let pos = HEADER_LEN + ((pos_frac * body as f64) as usize).min(body - 1);
        bytes[pos] ^= xor;
        let damaged_frame = (pos - HEADER_LEN) / RECORD_LEN;
        match replay_bytes(&bytes, &header()) {
            ReplayOutcome::Resumed { reports: got, discarded, .. } => {
                prop_assert_eq!(got.len(), damaged_frame);
                prop_assert_eq!(discarded as usize, k - damaged_frame);
                for (g, want) in got.iter().zip(reports()) {
                    prop_assert_eq!(dbg(g), dbg(want));
                }
            }
            other => prop_assert!(false, "expected Resumed, got {:?}", other),
        }
    }

    /// Truncating a journal anywhere keeps only the complete frames
    /// before the cut.
    #[test]
    fn replay_of_truncation_keeps_complete_frames(k in 1usize..24, cut_frac in 0.0f64..1.0) {
        let bytes = journal_bytes(k);
        let cut = HEADER_LEN + ((cut_frac * (bytes.len() - HEADER_LEN) as f64) as usize);
        match replay_bytes(&bytes[..cut], &header()) {
            ReplayOutcome::Resumed { reports: got, .. } => {
                prop_assert_eq!(got.len(), (cut - HEADER_LEN) / RECORD_LEN);
            }
            other => prop_assert!(false, "expected Resumed, got {:?}", other),
        }
    }

    /// The CRC itself detects any single-byte change in what it covers.
    #[test]
    fn crc_detects_single_byte_changes(pos in 0usize..80, xor in 1u8..=255) {
        let mut data = [0u8; 80];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37);
        }
        let clean = crc32(&data);
        data[pos] ^= xor;
        prop_assert_ne!(clean, crc32(&data));
    }
}
