//! Property-based tests for the query service's protocol and cache
//! layers: the request parser is total over arbitrary byte soup and its
//! limits actually bind, every JSON payload the routes can produce
//! round-trips through the response serializer (and is well-formed
//! JSON), and the sharded LRU honours its invariants — capacity never
//! exceeded, every lookup is exactly a hit or a miss, and evictions
//! strike the least-recently-used entry, pinned against a
//! model-checked reference.

use proptest::prelude::*;
use sleepwatch_core::serve::http::{
    error_body, json_escape, read_request, write_response, RequestError, MAX_HEADERS,
    MAX_REQUEST_LINE,
};
use sleepwatch_core::serve::index::Filter;
use sleepwatch_core::serve::{metrics_body, route, LruOutcome, LruShard, ShardedLru};
use sleepwatch_core::{analyze_world, dataset_rows, AnalysisConfig, ServeState};
use sleepwatch_simnet::{World, WorldConfig};
use std::io::BufReader;
use std::sync::OnceLock;

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// A small analyzed world: real rows exercise located and unlocated
/// blocks, every class, phases, and multi-keyword link lists.
fn state() -> &'static ServeState {
    static STATE: OnceLock<ServeState> = OnceLock::new();
    STATE.get_or_init(|| {
        let wcfg = WorldConfig { num_blocks: 48, seed: 11, span_days: 1.0, ..Default::default() };
        let world = World::generate(wcfg);
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, world.cfg.span_days);
        let analysis = analyze_world(&world, &cfg, 2, None);
        assert!(analysis.quarantined.is_empty());
        ServeState::build(dataset_rows(&analysis), 32)
    })
}

/// One of every JSON payload type the service can put in a response
/// body: the group bodies, the list bodies, a block body, the outage
/// histogram, ad-hoc query results, the metrics dump, and error bodies.
fn payloads() -> &'static Vec<String> {
    static BODIES: OnceLock<Vec<String>> = OnceLock::new();
    BODIES.get_or_init(|| {
        let st = state();
        let rows = st.rows();
        let mut bodies = vec![
            st.summary().to_string(),
            st.countries().to_string(),
            st.ases().to_string(),
            st.links().to_string(),
            st.outages().to_string(),
            metrics_body(),
            error_body("unknown country"),
            error_body("unknown query parameter \"bogus\""),
        ];
        let code = rows.iter().find_map(|r| r.country.clone()).expect("a located row");
        bodies.push(st.country(&code).expect("country body").to_string());
        bodies.push(st.asn(rows[0].asn).expect("as body").to_string());
        let kw = rows.iter().find_map(|r| r.links.first().cloned()).expect("a link keyword");
        bodies.push(st.link(&kw).expect("link body").to_string());
        bodies.push(st.block(rows[0].block_id).expect("block body"));
        for filter in [
            Filter::default(),
            Filter { country: Some(code), ..Filter::default() },
            Filter { link: Some(kw), stationary: Some(true), ..Filter::default() },
        ] {
            bodies.push(st.query(&filter).0);
        }
        bodies
    })
}

// ---------------------------------------------------------------------
// A strict little JSON syntax checker — every served body must be
// well-formed JSON, whatever the route or filter.
// ---------------------------------------------------------------------

struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit() || *c == b'.') {
            self.i += 1;
        }
        if self.i == start {
            Err(format!("empty number at byte {start}"))
        } else {
            Ok(())
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => self.i += 2,
                c if c < 0x20 => return Err(format!("raw control byte at {}", self.i)),
                _ => self.i += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object separator {other:?} at {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array separator {other:?} at {}", self.i)),
            }
        }
    }
}

fn assert_json(body: &str) {
    let mut p = Json { b: body.as_bytes(), i: 0 };
    p.value().unwrap_or_else(|e| panic!("not JSON: {e}\nbody: {body}"));
    p.ws();
    assert_eq!(p.i, body.len(), "trailing bytes after JSON value: {body}");
}

/// A minimal response parser for the round-trip property — independent
/// of the server's writer (testkit's client would be a dependency
/// cycle from core's test suite).
fn parse_response(bytes: &[u8]) -> (u16, bool, usize, String) {
    let text = std::str::from_utf8(bytes).expect("ascii response head");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    assert!(status_line.starts_with("HTTP/1.1 "), "{status_line}");
    let status: u16 = status_line[9..12].parse().expect("status code");
    let mut content_length = None;
    let mut keep_alive = None;
    for line in lines {
        let (name, value) = line.split_once(": ").expect("header");
        match name {
            "Content-Length" => content_length = Some(value.parse().expect("length")),
            "Connection" => keep_alive = Some(value == "keep-alive"),
            "Content-Type" => assert_eq!(value, "application/json"),
            other => panic!("unexpected header {other}"),
        }
    }
    (status, keep_alive.expect("Connection header"), content_length.expect("length"), body.into())
}

// ---------------------------------------------------------------------
// A reference LRU: exact recency order, no sharding, obviously correct.
// ---------------------------------------------------------------------

#[derive(Default)]
struct ModelLru {
    cap: usize,
    /// Most recent last.
    order: Vec<(String, String)>,
}

impl ModelLru {
    fn get(&mut self, key: &str) -> Option<String> {
        let i = self.order.iter().position(|(k, _)| k == key)?;
        let e = self.order.remove(i);
        let v = e.1.clone();
        self.order.push(e);
        Some(v)
    }

    fn insert(&mut self, key: &str, value: &str) -> bool {
        if self.cap == 0 {
            return false;
        }
        if let Some(i) = self.order.iter().position(|(k, _)| k == key) {
            self.order.remove(i);
            self.order.push((key.into(), value.into()));
            return false;
        }
        let evicted = self.order.len() >= self.cap;
        if evicted {
            self.order.remove(0);
        }
        self.order.push((key.into(), value.into()));
        evicted
    }

    fn oldest(&self) -> Option<&str> {
        self.order.first().map(|(k, _)| k.as_str())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `read_request` is total over arbitrary byte soup: a typed result,
    /// never a panic — and any accepted target starts with `/`.
    #[test]
    fn request_parser_is_total(bytes in proptest::collection::vec(0u8..=255, 0..4096)) {
        if let Ok(req) = read_request(&mut BufReader::new(&bytes[..])) {
            prop_assert!(req.target.starts_with('/'));
        }
    }

    /// So is the full stack: routing a parsed target (or the query
    /// parser behind `/v1/query`) answers every printable target with a
    /// status and a well-formed JSON body.
    #[test]
    fn routing_is_total(target in "/[ -~]{0,64}") {
        let (status, _reason, body) = route(state(), &target);
        prop_assert!((200..=505).contains(&status));
        assert_json(&body);
    }

    /// Any well-formed GET round-trips through the parser with its
    /// target intact, whatever padding and header noise surround it.
    #[test]
    fn well_formed_requests_parse(
        path in "/[a-z0-9/]{0,40}",
        close in any::<bool>(),
        noise in proptest::collection::vec(("[a-zA-Z-]{1,12}", "[ -9;-~]{0,24}"), 0..8),
    ) {
        let mut req = format!("GET {path} HTTP/1.1\r\n");
        for (name, value) in &noise {
            // Skip names that collide with semantic headers.
            if ["connection", "content-length", "transfer-encoding"]
                .contains(&name.to_ascii_lowercase().as_str())
            {
                continue;
            }
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        if close {
            req.push_str("Connection: close\r\n");
        }
        req.push_str("\r\n");
        let parsed = read_request(&mut BufReader::new(req.as_bytes())).expect("well-formed");
        prop_assert_eq!(parsed.target, path);
        prop_assert_eq!(parsed.keep_alive, !close);
    }

    /// The request-line limit binds exactly: one byte over is refused.
    #[test]
    fn request_line_limit_binds(extra in 0usize..64) {
        // "GET " + target + " HTTP/1.1" must fit MAX_REQUEST_LINE.
        let fits = MAX_REQUEST_LINE - 14;
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(fits - 1 + extra));
        let got = read_request(&mut BufReader::new(long.as_bytes()));
        if extra == 0 {
            prop_assert!(got.is_ok(), "exactly at the limit must parse");
        } else {
            prop_assert!(
                matches!(got, Err(RequestError::LineTooLong)),
                "{} bytes over the limit must be refused", extra
            );
        }
    }

    /// The header-count limit binds, and announced bodies are refused
    /// whatever the declared length.
    #[test]
    fn header_and_body_limits_bind(over in 1usize..32, body_len in 1u64..1_000_000) {
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + over) {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        prop_assert!(matches!(
            read_request(&mut BufReader::new(many.as_bytes())),
            Err(RequestError::HeadersTooLarge)
        ));

        let with_body = format!("GET / HTTP/1.1\r\nContent-Length: {body_len}\r\n\r\n");
        prop_assert!(matches!(
            read_request(&mut BufReader::new(with_body.as_bytes())),
            Err(RequestError::HasBody)
        ));
    }

    /// Every JSON payload type the service serves survives the response
    /// serializer byte-for-byte: status, framing, connection token, and
    /// body all come back out, the accounted size matches the wire, and
    /// the body is well-formed JSON.
    #[test]
    fn responses_roundtrip_every_payload(
        which in 0usize..15,
        status_pick in 0usize..5,
        keep_alive in any::<bool>(),
    ) {
        let status = [200u16, 400, 404, 408, 431][status_pick];
        let bodies = payloads();
        prop_assert_eq!(bodies.len(), 15, "payload fixture must cover every type");
        let body = &bodies[which % bodies.len()];
        assert_json(body);
        let mut out = Vec::new();
        let n = write_response(&mut out, status, "X", body, keep_alive).expect("vec write");
        prop_assert_eq!(n as usize, out.len(), "accounted bytes must match the wire");
        let (got_status, got_ka, got_len, got_body) = parse_response(&out);
        prop_assert_eq!(got_status, status);
        prop_assert_eq!(got_ka, keep_alive);
        prop_assert_eq!(got_len, body.len());
        prop_assert_eq!(&got_body, body);
    }

    /// `json_escape` output always embeds into a well-formed JSON string.
    #[test]
    fn escaped_strings_are_json(s in "[ -~]{0,64}") {
        assert_json(&format!("{{\"k\":\"{}\"}}", json_escape(&s)));
    }

    /// Sharded LRU invariants under arbitrary workloads: the configured
    /// capacity is never exceeded, every lookup is exactly a hit or a
    /// miss, hits return the key's deterministic value, and an eviction
    /// is only ever reported by a miss on a full shard.
    #[test]
    fn sharded_lru_invariants(
        cap in 0usize..40,
        keys in proptest::collection::vec(0u32..24, 1..200),
    ) {
        let lru = ShardedLru::new(cap);
        prop_assert_eq!(lru.capacity(), cap, "capacity distributes exactly");
        let (mut hits, mut misses) = (0usize, 0usize);
        for (i, k) in keys.iter().enumerate() {
            let key = format!("key-{k}");
            let want = format!("value-{k}");
            let (got, outcome) = lru.get_or_insert_with(&key, || want.clone());
            prop_assert_eq!(got, want, "cached value diverged");
            match outcome {
                LruOutcome::Hit => hits += 1,
                LruOutcome::Miss { evicted } => {
                    misses += 1;
                    if evicted {
                        prop_assert_eq!(lru.len(), lru.len().min(cap), "eviction kept us at cap");
                    }
                }
            }
            prop_assert!(lru.len() <= cap, "capacity exceeded after {} lookups", i + 1);
            prop_assert_eq!(hits + misses, i + 1, "every lookup is a hit xor a miss");
        }
        prop_assert!(lru.is_empty() == (hits + misses == 0) || cap == 0 || !lru.is_empty());
    }

    /// One shard against the reference model: identical hit/miss
    /// results, identical eviction decisions, and the eviction candidate
    /// is always the model's least-recently-used key.
    #[test]
    fn shard_matches_reference_model(
        cap in 1usize..8,
        ops in proptest::collection::vec((any::<bool>(), 0u32..12), 1..200),
    ) {
        let mut shard = LruShard::new(cap);
        let mut model = ModelLru { cap, ..Default::default() };
        for (is_get, k) in ops {
            let key = format!("k{k}");
            if is_get {
                prop_assert_eq!(shard.get(&key), model.get(&key), "get({}) diverged", key);
            } else {
                let value = format!("v{k}");
                let evicted = shard.insert(key.clone(), value.clone());
                let model_evicted = model.insert(&key, &value);
                prop_assert_eq!(evicted, model_evicted, "eviction decision diverged on {}", key);
            }
            prop_assert_eq!(shard.len(), model.order.len());
            prop_assert!(shard.len() <= cap);
            prop_assert_eq!(
                shard.eviction_candidate(),
                model.oldest(),
                "eviction order diverged"
            );
        }
    }
}
