//! Integration test for the organization-level aggregation (§2.3.2
//! extension): AS→org clustering joined with pipeline results.

use sleepwatch_core::{analyze_world, AnalysisConfig};
use sleepwatch_geoecon::AsOrgMapper;
use sleepwatch_simnet::{World, WorldConfig};

#[test]
fn organizations_aggregate_their_ases() {
    let world = World::generate(WorldConfig {
        num_blocks: 300,
        seed: 64,
        span_days: 4.0,
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
    let analysis = analyze_world(&world, &cfg, 2, None);

    let mapper = AsOrgMapper::cluster(&world.as_records);
    let orgs = analysis.organization_stats(&mapper, 1);

    assert!(!orgs.is_empty(), "some organizations observed");
    // Totals: every block's ASN belongs to exactly one cluster, so org
    // block counts sum to the world size.
    let total: usize = orgs.iter().map(|o| o.blocks).sum();
    assert_eq!(total, world.blocks.len());

    for o in &orgs {
        assert!((0.0..=1.0).contains(&o.frac_diurnal));
        assert!(!o.asns.is_empty());
        assert!(o.blocks >= 1);
    }
    // Sorted descending by diurnal fraction.
    assert!(orgs.windows(2).all(|w| w[0].frac_diurnal >= w[1].frac_diurnal));
}

#[test]
fn chinese_isps_more_diurnal_than_us_isps() {
    let world = World::generate(WorldConfig {
        num_blocks: 900,
        seed: 12,
        span_days: 4.0,
        country_filter: Some(vec!["US", "CN"]),
        ..Default::default()
    });
    let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
    let analysis = analyze_world(&world, &cfg, 2, None);
    let mapper = AsOrgMapper::cluster(&world.as_records);
    let orgs = analysis.organization_stats(&mapper, 20);

    let mean_frac = |needle: &str| {
        let v: Vec<f64> =
            orgs.iter().filter(|o| o.org.contains(needle)).map(|o| o.frac_diurnal).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    // Org keys derive from ISP names like "China Telecom" / "UnitedStates
    // Cable" (the generator strips spaces: "china", "unitedstates").
    let cn = mean_frac("china");
    let us = mean_frac("unitedstates");
    assert!(cn > us + 0.15, "china ISPs {cn} vs US ISPs {us}");
}
