//! Property-based tests for the compact binary dataset container:
//! decoding is total (never panics, whatever the bytes), corruption is
//! always surfaced as a typed error, and the damaged-file reader heals to
//! a valid prefix of the original rows — the binfmt mirror of the
//! journal codec's `journal_prop` suite.

use proptest::prelude::*;
use sleepwatch_core::{
    analyze_world, dataset_rows, decode_dataset, decode_prefix, encode_dataset, AnalysisConfig,
    BinDataset, DatasetMode, DatasetRow,
};
use sleepwatch_simnet::{World, WorldConfig};
use std::sync::OnceLock;

const BLOCKS: usize = 60;

fn world_cfg() -> WorldConfig {
    WorldConfig { num_blocks: BLOCKS, seed: 7, span_days: 1.0, ..Default::default() }
}

/// A small analyzed world shared by every case: real rows exercise the
/// full field range (located and unlocated blocks, every class, phases).
fn rows() -> &'static Vec<DatasetRow> {
    static ROWS: OnceLock<Vec<DatasetRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let world = World::generate(world_cfg());
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, world.cfg.span_days);
        let analysis = analyze_world(&world, &cfg, 2, None);
        assert!(analysis.quarantined.is_empty());
        dataset_rows(&analysis)
    })
}

/// The fixture rows as one self-contained container (most properties
/// corrupt copies of this file).
fn container() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| encode_dataset(rows(), DatasetMode::SelfContained).expect("encode"))
}

fn dbg(r: &DatasetRow) -> String {
    format!("{r:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `BinDataset::parse` is total over arbitrary byte soup, with and
    /// without a world in hand.
    #[test]
    fn parse_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        prop_assert!(BinDataset::parse(&bytes, None).is_err());
        prop_assert!(BinDataset::parse(&bytes, Some(&world_cfg())).is_err());
    }

    /// So is the healing reader: garbage yields no rows and a typed error.
    #[test]
    fn prefix_decode_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        let (got, err) = decode_prefix(&bytes, None);
        prop_assert!(got.is_empty());
        prop_assert!(err.is_some());
    }

    /// Every slice of the fixture rows round-trips through both container
    /// modes, field for field.
    #[test]
    fn any_row_slice_roundtrips(start in 0usize..BLOCKS, len in 1usize..BLOCKS) {
        let end = (start + len).min(BLOCKS);
        let slice = &rows()[start..end];
        let cfg = world_cfg();
        for mode in [DatasetMode::SelfContained, DatasetMode::SeedJoined(&cfg)] {
            let world = matches!(mode, DatasetMode::SeedJoined(_)).then_some(&cfg);
            let bytes = encode_dataset(slice, mode).expect("fixture rows encode");
            let back = decode_dataset(&bytes, world).expect("own encoding decodes");
            prop_assert_eq!(back.len(), slice.len());
            for (got, want) in back.iter().zip(slice) {
                prop_assert_eq!(dbg(got), dbg(want));
            }
        }
    }

    /// Any single-byte corruption anywhere in the file is surfaced as a
    /// typed error, and the healing reader returns an intact prefix of
    /// the original rows — never garbage rows, never a panic.
    #[test]
    fn any_byte_corruption_errors_and_heals_to_a_prefix(
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = container().clone();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor;
        prop_assert!(BinDataset::parse(&bytes, None).is_err(), "flip at {} undetected", pos);
        let (got, err) = decode_prefix(&bytes, None);
        prop_assert!(err.is_some());
        prop_assert!(got.len() <= rows().len());
        for (g, want) in got.iter().zip(rows()) {
            prop_assert_eq!(dbg(g), dbg(want));
        }
    }

    /// Truncation anywhere — a torn tail — fails the strict parser and
    /// heals to exactly the complete frames before the cut.
    #[test]
    fn any_truncation_heals_to_complete_frames(cut_frac in 0.0f64..1.0) {
        let bytes = container();
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        prop_assert!(BinDataset::parse(&bytes[..cut], None).is_err());
        let (got, err) = decode_prefix(&bytes[..cut], None);
        prop_assert!(err.is_some());
        for (g, want) in got.iter().zip(rows()) {
            prop_assert_eq!(dbg(g), dbg(want));
        }
    }

    /// Splicing a byte range from a *different* dataset (same world, one
    /// row fewer, so its prelude and chain key differ) into the fixture
    /// file either changes nothing or is detected — and the healing
    /// reader still only ever returns original rows.
    #[test]
    fn any_foreign_splice_is_detected(
        pos_frac in 0.0f64..1.0,
        len in 1usize..64,
    ) {
        let foreign =
            encode_dataset(&rows()[..BLOCKS - 1], DatasetMode::SelfContained).expect("encode");
        let mut bytes = container().clone();
        let max = bytes.len().min(foreign.len());
        let pos = ((pos_frac * max as f64) as usize).min(max - 1);
        let end = (pos + len).min(max);
        bytes[pos..end].copy_from_slice(&foreign[pos..end]);
        // If the two files agree on this range (shared magic/version,
        // coincidentally equal sections) there is nothing to detect.
        if bytes != *container() {
            prop_assert!(
                BinDataset::parse(&bytes, None).is_err(),
                "splice of {}..{} went undetected", pos, end
            );
            let (got, err) = decode_prefix(&bytes, None);
            prop_assert!(err.is_some());
            for (g, want) in got.iter().zip(rows()) {
                prop_assert_eq!(dbg(g), dbg(want));
            }
        }
    }
}
