//! World-scale analysis: run the per-block pipeline over every block of a
//! synthetic world in parallel, and join results with geolocation, reverse
//! DNS link classification, allocation dates, and country economics.

use crate::analyze::{analyze_block, AnalysisConfig, BlockSummary};
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::COUNTRIES;
use sleepwatch_geoecon::geolocate::Location;
use sleepwatch_geoecon::region::Region;
use sleepwatch_linktype::{classify_block, LinkFeature};
use sleepwatch_obs::{RunReport, Snapshot, Stage, StageTimer};
use sleepwatch_simnet::{ptr_names, World};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One block's measurement, joined with every external data source the
/// paper correlates against.
#[derive(Debug, Clone)]
pub struct WorldBlockReport {
    /// Pipeline outcome.
    pub summary: BlockSummary,
    /// Geolocation (absent for the ~7 % the database cannot place).
    pub location: Option<Location>,
    /// UN-style region of the geolocated country.
    pub region: Option<Region>,
    /// Allocation date of the block's /8 (public registry data).
    pub alloc_date: YearMonth,
    /// Link features inferred from reverse DNS (kept keywords only).
    pub link_features: Vec<LinkFeature>,
    /// Origin AS.
    pub asn: u32,
    /// Ground-truth label carried along *for scoring only* — no aggregation
    /// below reads it.
    pub planted_diurnal: bool,
}

/// The analyzed world.
#[derive(Debug)]
pub struct WorldAnalysis {
    /// Per-block joined reports, in block order.
    pub reports: Vec<WorldBlockReport>,
}

/// Analyzes every block of `world` with `cfg`, using `threads` worker
/// threads (1 = sequential). An optional `progress` callback receives the
/// number of completed blocks at coarse intervals.
///
/// Progress contract: workers report coarse intermediate progress
/// (`done < n` at multiples of 500), and after every worker has joined the
/// callback receives exactly one final `(n, n)` invocation — guaranteed to
/// be the last call, even for empty worlds and regardless of worker
/// scheduling. (Workers reporting the final count themselves would race: a
/// preempted worker could deliver a stale intermediate count *after*
/// another worker's `(n, n)`.)
pub fn analyze_world(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> WorldAnalysis {
    let obs = sleepwatch_obs::global();
    let _total_timer = StageTimer::start(obs.pipeline.stage(Stage::Total));
    let n = world.blocks.len();
    let threads = threads.max(1);
    obs.world.runs.incr();
    obs.world.blocks_total.add(n as u64);
    obs.world.max_world_blocks.raise(n as u64);
    // Pre-warm the FFT plan for the nominal series length so workers start
    // from a populated cache instead of racing to plan it. Cleaning's
    // midnight trim can shorten some series; those lengths are planned once
    // on first use through the same cache. (`prewarm`, not `plan_for`:
    // warmup is not a caller-visible lookup and must not skew the
    // hit/miss-vs-transform accounting.)
    sleepwatch_spectral::prewarm(cfg.rounds as usize);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut slots: Vec<Option<WorldBlockReport>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_mutex = parking_lot::Mutex::new(&mut slots);

    crossbeam::thread::scope(|s| {
        for worker in 0..threads {
            // Rebind as shared references so `move` captures copies, not
            // the owned atomics/mutex themselves.
            let (next, done, slots_mutex) = (&next, &done, &slots_mutex);
            s.spawn(move |_| {
                let mut local: Vec<(usize, WorldBlockReport)> = Vec::new();
                let mut blocks_done = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let block = &world.blocks[i];
                    let analysis = analyze_block(block, cfg);
                    let country = world.country_of(block);
                    let location = world.geodb.locate(block.id, country, block.lon, block.lat);
                    let region = location.map(|l| {
                        COUNTRIES
                            .iter()
                            .find(|c| c.code == l.country)
                            .expect("location country comes from the table")
                            .region
                    });
                    let names = ptr_names(block);
                    let label = classify_block(names.iter().map(|o| o.as_deref()));
                    local.push((
                        i,
                        WorldBlockReport {
                            summary: analysis.summary(),
                            location,
                            region,
                            alloc_date: block.alloc_date,
                            link_features: label.kept_features(),
                            asn: block.asn,
                            planted_diurnal: block.planted_diurnal,
                        },
                    ));
                    blocks_done += 1;
                    let d = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(cb) = progress {
                        // Final (n, n) is reported by the calling thread
                        // after the join; workers only emit strictly
                        // intermediate counts.
                        if d % 500 == 0 && d < n {
                            cb(d, n);
                        }
                    }
                    // Flush periodically to bound local memory.
                    if local.len() >= 256 {
                        let mut guard = slots_mutex.lock();
                        for (idx, rep) in local.drain(..) {
                            guard[idx] = Some(rep);
                        }
                    }
                }
                let mut guard = slots_mutex.lock();
                for (idx, rep) in local.drain(..) {
                    guard[idx] = Some(rep);
                }
                obs.world.worker_blocks.add(worker, blocks_done);
            });
        }
    })
    .expect("worker thread panicked");

    let reports = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Join));
        slots.into_iter().map(|s| s.expect("every block analyzed")).collect()
    };
    if let Some(cb) = progress {
        cb(n, n);
    }
    WorldAnalysis { reports }
}

/// [`analyze_world`], additionally returning a [`RunReport`] isolating the
/// run's metric activity (snapshot delta around the call) with wall-clock
/// and thread context. With metrics disabled the report is present but
/// all-zero, and the analysis itself is byte-identical.
pub fn analyze_world_with_report(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    label: &str,
) -> (WorldAnalysis, RunReport) {
    let obs = sleepwatch_obs::global();
    let before = Snapshot::capture(obs);
    let start = std::time::Instant::now();
    let analysis = analyze_world(world, cfg, threads, progress);
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = Snapshot::capture(obs).delta(&before);
    let report =
        RunReport { label: label.to_string(), threads: threads.max(1), wall_seconds, snapshot };
    (analysis, report)
}

impl WorldAnalysis {
    /// Number of blocks analyzed.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when no blocks were analyzed.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Count and fraction of strictly diurnal blocks.
    pub fn strict_fraction(&self) -> (usize, f64) {
        let n = self.reports.iter().filter(|r| r.summary.class.is_strict()).count();
        (n, n as f64 / self.len().max(1) as f64)
    }

    /// Count and fraction of strict-or-relaxed diurnal blocks.
    pub fn diurnal_fraction(&self) -> (usize, f64) {
        let n = self.reports.iter().filter(|r| r.summary.class.is_diurnal()).count();
        (n, n as f64 / self.len().max(1) as f64)
    }

    /// Fraction of blocks passing the stationarity screen.
    pub fn stationary_fraction(&self) -> f64 {
        let n = self.reports.iter().filter(|r| r.summary.stationary).count();
        n as f64 / self.len().max(1) as f64
    }

    /// Detection quality against the planted labels:
    /// `(true_pos, false_pos, false_neg, true_neg)` using the strict class.
    pub fn confusion_vs_planted(&self) -> (usize, usize, usize, usize) {
        let mut tp = 0;
        let mut fp = 0;
        let mut fneg = 0;
        let mut tn = 0;
        for r in &self.reports {
            match (r.planted_diurnal, r.summary.class.is_strict()) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fneg += 1,
                (false, false) => tn += 1,
            }
        }
        (tp, fp, fneg, tn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::WorldConfig;

    fn tiny_analysis() -> WorldAnalysis {
        let world = World::generate(WorldConfig {
            num_blocks: 60,
            seed: 21,
            span_days: 4.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 2, None)
    }

    #[test]
    fn every_block_reported_in_order() {
        let a = tiny_analysis();
        assert_eq!(a.len(), 60);
        for (i, r) in a.reports.iter().enumerate() {
            assert_eq!(r.summary.block_id, i as u64);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let world = World::generate(WorldConfig {
            num_blocks: 24,
            seed: 5,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let seq = analyze_world(&world, &cfg, 1, None);
        let par = analyze_world(&world, &cfg, 4, None);
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(a.summary.class, b.summary.class);
            assert_eq!(a.summary.total_probes, b.summary.total_probes);
            assert_eq!(a.link_features, b.link_features);
        }
    }

    #[test]
    fn fixed_seed_world_classifies_deterministically() {
        // Two independent runs of the same fixed-seed 60-block world must
        // produce identical summaries — the planned FFT path may not perturb
        // classification across runs or thread schedules.
        let a = tiny_analysis();
        let b = tiny_analysis();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.summary.class, y.summary.class, "block {}", x.summary.block_id);
            assert_eq!(x.summary.phase, y.summary.phase);
            assert_eq!(x.summary.strongest_cpd, y.summary.strongest_cpd);
            assert_eq!(x.summary.total_probes, y.summary.total_probes);
        }
    }

    #[test]
    fn geolocation_coverage_near_ninety_three_percent() {
        let a = tiny_analysis();
        let located = a.reports.iter().filter(|r| r.location.is_some()).count();
        let frac = located as f64 / a.len() as f64;
        assert!(frac > 0.8 && frac <= 1.0, "coverage {frac}");
    }

    #[test]
    fn progress_callback_fires() {
        let world = World::generate(WorldConfig {
            num_blocks: 10,
            seed: 2,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let hits = AtomicUsize::new(0);
        let cb = |_d: usize, _n: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        analyze_world(&world, &cfg, 2, Some(&cb));
        assert!(hits.load(Ordering::Relaxed) >= 1, "final-progress callback expected");
    }

    #[test]
    fn progress_final_call_is_guaranteed_and_last() {
        // Regression: the final (n, n) invocation used to come from
        // whichever worker finished block n — a preempted worker could
        // deliver a stale intermediate count after it, and coarse-interval
        // reporting could skip it entirely. The contract now: exactly one
        // (n, n) call, strictly last.
        let world = World::generate(WorldConfig {
            num_blocks: 10,
            seed: 2,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        analyze_world(&world, &cfg, 3, Some(&cb));
        let calls = calls.into_inner();
        assert_eq!(calls.last(), Some(&(10, 10)), "final call must be (n, n): {calls:?}");
        assert_eq!(
            calls.iter().filter(|&&c| c == (10, 10)).count(),
            1,
            "final call must fire exactly once: {calls:?}"
        );
    }

    #[test]
    fn progress_fires_for_empty_world() {
        let world = World::generate(WorldConfig {
            num_blocks: 0,
            seed: 2,
            span_days: 1.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 1.0);
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        analyze_world(&world, &cfg, 2, Some(&cb));
        assert_eq!(calls.into_inner(), vec![(0, 0)], "empty worlds still get the final call");
    }

    #[test]
    fn with_report_returns_identical_analysis_and_labelled_report() {
        let world = World::generate(WorldConfig {
            num_blocks: 12,
            seed: 7,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let plain = analyze_world(&world, &cfg, 2, None);
        let (reported, report) = analyze_world_with_report(&world, &cfg, 2, None, "unit");
        assert_eq!(plain.len(), reported.len());
        for (a, b) in plain.reports.iter().zip(&reported.reports) {
            assert_eq!(a.summary.class, b.summary.class);
            assert_eq!(a.summary.total_probes, b.summary.total_probes);
        }
        assert_eq!(report.label, "unit");
        assert_eq!(report.threads, 2);
        assert!(report.wall_seconds >= 0.0);
        if sleepwatch_obs::global_enabled() {
            // The delta covers at least this run (other tests in the
            // binary may add to it concurrently, never subtract).
            assert!(report.snapshot.counter("pipeline.blocks_analyzed") >= 12);
            assert!(report.snapshot.counter("probing.probes_sent") > 0);
        }
    }

    #[test]
    fn fractions_are_consistent() {
        let a = tiny_analysis();
        let (strict, sf) = a.strict_fraction();
        let (diurnal, df) = a.diurnal_fraction();
        assert!(diurnal >= strict);
        assert!(df >= sf);
        let (tp, fp, fneg, tn) = a.confusion_vs_planted();
        assert_eq!(tp + fp + fneg + tn, a.len());
    }
}
