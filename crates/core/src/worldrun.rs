//! World-scale analysis: run the per-block pipeline over every block of a
//! synthetic world in parallel, and join results with geolocation, reverse
//! DNS link classification, allocation dates, and country economics.
//!
//! Resilience: workers wrap each block in `catch_unwind`, so one poisoned
//! block is quarantined (recorded in [`WorldAnalysis::quarantined`])
//! instead of aborting the run, and [`analyze_world_resumable`] journals
//! every completed block to an append-only checkpoint file
//! ([`crate::journal`]) so a killed process resumes where it stopped with
//! byte-identical output.

use crate::analyze::{
    analyze_block, analyze_block_with_scratch, AnalysisConfig, BlockScratch, BlockSummary,
};
use crate::journal::{self, JournalError, JournalHeader, JournalWriter};
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::by_code;
use sleepwatch_geoecon::geolocate::Location;
use sleepwatch_geoecon::region::Region;
use sleepwatch_linktype::{classify_block, LinkFeature};
use sleepwatch_obs::{RunReport, Snapshot, Stage, StageTimer};
use sleepwatch_simnet::{ptr_names, World};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One block's measurement, joined with every external data source the
/// paper correlates against.
#[derive(Debug, Clone)]
pub struct WorldBlockReport {
    /// Pipeline outcome.
    pub summary: BlockSummary,
    /// Geolocation (absent for the ~7 % the database cannot place).
    pub location: Option<Location>,
    /// UN-style region of the geolocated country.
    pub region: Option<Region>,
    /// Allocation date of the block's /8 (public registry data).
    pub alloc_date: YearMonth,
    /// Link features inferred from reverse DNS (kept keywords only).
    pub link_features: Vec<LinkFeature>,
    /// Origin AS.
    pub asn: u32,
    /// Ground-truth label carried along *for scoring only* — no aggregation
    /// below reads it.
    pub planted_diurnal: bool,
}

/// A block whose analysis panicked and was quarantined instead of
/// aborting the world run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Id of the poisoned block.
    pub block_id: u64,
    /// The panic message, for postmortem triage.
    pub diagnostic: String,
}

/// Outcome of one block's trip through a worker.
#[derive(Debug, Clone)]
pub enum BlockOutcome {
    /// The pipeline completed normally.
    Analyzed(WorldBlockReport),
    /// The pipeline panicked; the block is excluded from every
    /// aggregation and reported explicitly.
    Quarantined {
        /// Id of the poisoned block.
        block_id: u64,
        /// The panic message.
        diagnostic: String,
    },
}

/// How much per-block detail a world run materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorldRunMode {
    /// Allocate a full `BlockAnalysis` (raw run, cleaned series) per
    /// block and collapse it to a summary — the pre-scratch behaviour.
    FullDetail,
    /// Analyze through a worker-local [`BlockScratch`] arena and keep
    /// only the [`WorldBlockReport`]: zero steady-state allocations per
    /// block and far lower peak RSS. Output is byte-identical to
    /// [`FullDetail`](Self::FullDetail); this is the default.
    #[default]
    SummaryOnly,
}

/// The analyzed world.
#[derive(Debug)]
pub struct WorldAnalysis {
    /// Per-block joined reports, in block order (quarantined blocks are
    /// absent — aggregations skip them by construction).
    pub reports: Vec<WorldBlockReport>,
    /// Blocks whose analysis panicked, in block order. Empty on healthy
    /// runs; deterministic across thread counts and schedules.
    pub quarantined: Vec<Quarantine>,
}

/// Test-only failure injection. Hidden from docs and never armed outside
/// tests: the fast path is a single relaxed atomic load.
#[doc(hidden)]
pub mod hooks {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLANTED: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    /// Makes the analysis of block `block_id` panic (until cleared).
    pub fn plant_block_panic(block_id: u64) {
        PLANTED.lock().unwrap().push(block_id);
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Removes every planted panic.
    pub fn clear_block_panics() {
        PLANTED.lock().unwrap().clear();
        ARMED.store(false, Ordering::SeqCst);
    }

    pub(crate) fn fire(block_id: u64) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        // Decide before panicking: the guard must be dropped first, or the
        // poisoned mutex would cascade panics into innocent workers.
        let planted = PLANTED.lock().unwrap().contains(&block_id);
        if planted {
            panic!("planted panic for block {block_id}");
        }
    }
}

/// The full pipeline for one block: analysis plus every external join.
fn analyze_one(
    world: &World,
    i: usize,
    cfg: &AnalysisConfig,
    mode: WorldRunMode,
    scratch: &mut BlockScratch,
) -> WorldBlockReport {
    let block = &world.blocks[i];
    hooks::fire(block.id);
    let summary = match mode {
        WorldRunMode::FullDetail => analyze_block(block, cfg).summary(),
        WorldRunMode::SummaryOnly => analyze_block_with_scratch(block, cfg, scratch),
    };
    let country = world.country_of(block);
    let location = world.geodb.locate(block.id, country, block.lon, block.lat);
    // Lookup-or-`None`: an out-of-table country code degrades this one
    // block to region-less instead of panicking a worker.
    let region = location.and_then(|l| match by_code(l.country) {
        Some(c) => Some(c.region),
        None => {
            sleepwatch_obs::global().geo.unknown_countries.incr();
            None
        }
    });
    let names = ptr_names(block);
    let label = classify_block(names.iter().map(|o| o.as_deref()));
    WorldBlockReport {
        summary,
        location,
        region,
        alloc_date: block.alloc_date,
        link_features: label.kept_features(),
        asn: block.asn,
        planted_diurnal: block.planted_diurnal,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Flushes a worker's local batch: journals completed reports (disabling
/// the journal on the first write error — the run itself must not die for
/// a full disk), then publishes outcomes into the shared slots.
fn flush_batch(
    local: &mut Vec<(usize, BlockOutcome)>,
    slots_mutex: &parking_lot::Mutex<&mut Vec<Option<BlockOutcome>>>,
    journal: Option<&parking_lot::Mutex<Option<JournalWriter>>>,
) {
    if let Some(j) = journal {
        let mut jw = j.lock();
        if let Some(w) = jw.as_mut() {
            let mut failed = false;
            for (_, outcome) in local.iter() {
                if let BlockOutcome::Analyzed(rep) = outcome {
                    if let Err(e) = w.append(rep) {
                        eprintln!("[journal] write failed, journaling disabled: {e}");
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                *jw = None;
            }
        }
    }
    let mut guard = slots_mutex.lock();
    for (idx, outcome) in local.drain(..) {
        guard[idx] = Some(outcome);
    }
}

/// Shared driver behind [`analyze_world`] and
/// [`analyze_world_resumable`]. `prefilled` carries journal-replayed
/// outcomes by slot index (empty for a fresh run); workers skip those
/// slots. Output depends only on the world and config — not on thread
/// count, schedule, journal presence, or how much was replayed.
fn run_world(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    journal: Option<&parking_lot::Mutex<Option<JournalWriter>>>,
    prefilled: Vec<Option<BlockOutcome>>,
    mode: WorldRunMode,
) -> WorldAnalysis {
    let obs = sleepwatch_obs::global();
    let _total_timer = StageTimer::start(obs.pipeline.stage(Stage::Total));
    let n = world.blocks.len();
    let threads = threads.max(1);
    obs.world.runs.incr();
    obs.world.blocks_total.add(n as u64);
    obs.world.max_world_blocks.raise(n as u64);
    // Pre-warm the FFT plan for the nominal series length so workers start
    // from a populated cache instead of racing to plan it. Cleaning's
    // midnight trim can shorten some series; those lengths are planned once
    // on first use through the same cache. (`prewarm`, not `plan_for`:
    // warmup is not a caller-visible lookup and must not skew the
    // hit/miss-vs-transform accounting.)
    sleepwatch_spectral::prewarm(cfg.rounds as usize);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut slots: Vec<Option<BlockOutcome>> = prefilled;
    slots.resize_with(n, || None);
    let skip: Vec<bool> = slots.iter().map(Option::is_some).collect();
    let base = skip.iter().filter(|&&s| s).count();
    let slots_mutex = parking_lot::Mutex::new(&mut slots);

    crossbeam::thread::scope(|s| {
        for worker in 0..threads {
            // Rebind as shared references so `move` captures copies, not
            // the owned atomics/mutex themselves.
            let (next, done, slots_mutex, skip) = (&next, &done, &slots_mutex, &skip);
            s.spawn(move |_| {
                // Pre-sized once and recycled by `flush_batch`'s `drain`
                // (which keeps capacity) — the batch never reallocates;
                // `world.batch_grows` asserts that in the metrics suite.
                const BATCH_CAPACITY: usize = 256;
                let mut local: Vec<(usize, BlockOutcome)> = Vec::with_capacity(BATCH_CAPACITY);
                // One arena per worker thread: after the first block every
                // buffer is reused (outputs are independent of leftover
                // contents — even a quarantined block's partial state —
                // see `tests/scratch_poison.rs`).
                let mut scratch = BlockScratch::new();
                let mut blocks_done = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if skip[i] {
                        continue; // replayed from the journal
                    }
                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                        analyze_one(world, i, cfg, mode, &mut scratch)
                    })) {
                        Ok(rep) => BlockOutcome::Analyzed(rep),
                        Err(payload) => {
                            obs.resilience.blocks_quarantined.incr();
                            BlockOutcome::Quarantined {
                                block_id: world.blocks[i].id,
                                diagnostic: panic_message(payload),
                            }
                        }
                    };
                    if local.len() == local.capacity() {
                        obs.world.batch_grows.incr();
                    }
                    local.push((i, outcome));
                    blocks_done += 1;
                    let d = done.fetch_add(1, Ordering::Relaxed) + 1 + base;
                    if let Some(cb) = progress {
                        // Final (n, n) is reported by the calling thread
                        // after the join; workers only emit strictly
                        // intermediate counts.
                        if d % 500 == 0 && d < n {
                            cb(d, n);
                        }
                    }
                    // Flush periodically to bound local memory.
                    if local.len() >= BATCH_CAPACITY {
                        flush_batch(&mut local, slots_mutex, journal);
                    }
                }
                flush_batch(&mut local, slots_mutex, journal);
                obs.world.worker_blocks.add(worker, blocks_done);
                obs.world.peak_block_bytes.raise(scratch.footprint_bytes() as u64);
            });
        }
    })
    .expect("worker thread panicked");

    let (reports, quarantined) = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Join));
        let mut reports = Vec::with_capacity(n);
        let mut quarantined = Vec::new();
        for s in slots.into_iter().map(|s| s.expect("every block analyzed")) {
            match s {
                BlockOutcome::Analyzed(r) => reports.push(r),
                BlockOutcome::Quarantined { block_id, diagnostic } => {
                    quarantined.push(Quarantine { block_id, diagnostic });
                }
            }
        }
        (reports, quarantined)
    };
    if let Some(j) = journal {
        if let Some(w) = j.lock().as_mut() {
            if let Err(e) = w.sync() {
                eprintln!("[journal] final sync failed: {e}");
            }
        }
    }
    if let Some(cb) = progress {
        cb(n, n);
    }
    WorldAnalysis { reports, quarantined }
}

/// Analyzes every block of `world` with `cfg`, using `threads` worker
/// threads (1 = sequential). An optional `progress` callback receives the
/// number of completed blocks at coarse intervals.
///
/// Progress contract: workers report coarse intermediate progress
/// (`done < n` at multiples of 500), and after every worker has joined the
/// callback receives exactly one final `(n, n)` invocation — guaranteed to
/// be the last call, even for empty worlds and regardless of worker
/// scheduling. (Workers reporting the final count themselves would race: a
/// preempted worker could deliver a stale intermediate count *after*
/// another worker's `(n, n)`.)
pub fn analyze_world(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> WorldAnalysis {
    analyze_world_with_mode(world, cfg, threads, progress, WorldRunMode::default())
}

/// [`analyze_world`] with an explicit [`WorldRunMode`]. Both modes produce
/// byte-identical [`WorldBlockReport`]s (asserted by the `scratch_equiv`
/// differential suite); [`WorldRunMode::SummaryOnly`] — the default — does
/// it without per-block heap allocation.
pub fn analyze_world_with_mode(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    mode: WorldRunMode,
) -> WorldAnalysis {
    run_world(world, cfg, threads, progress, None, Vec::new(), mode)
}

/// [`analyze_world`] with a crash-safe checkpoint journal at
/// `journal_path`: every completed block is appended to the journal
/// (fsync'd every [`journal::SYNC_EVERY`] records), and if the file
/// already holds a valid prefix for this exact run — same world seed,
/// block count, rounds and start time — those blocks are replayed instead
/// of recomputed. A truncated or bit-flipped tail costs only the damaged
/// suffix. The analysis is byte-identical to an uninterrupted
/// [`analyze_world`] at any thread count.
///
/// Errors only on IO failure or when the journal belongs to a different
/// run; corruption never errors.
pub fn analyze_world_resumable(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<WorldAnalysis, JournalError> {
    analyze_world_resumable_with_mode(
        world,
        cfg,
        threads,
        journal_path,
        progress,
        WorldRunMode::default(),
    )
}

/// [`analyze_world_resumable`] with an explicit [`WorldRunMode`]; the
/// journal format and resume semantics are mode-independent.
pub fn analyze_world_resumable_with_mode(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    mode: WorldRunMode,
) -> Result<WorldAnalysis, JournalError> {
    let n = world.blocks.len();
    let header = JournalHeader {
        world_seed: world.cfg.seed,
        num_blocks: n as u64,
        rounds: cfg.rounds,
        start_time: cfg.start_time,
    };
    let (writer, replayed, _stats) = journal::open_resume(journal_path, &header)?;
    let mut prefilled: Vec<Option<BlockOutcome>> = Vec::with_capacity(n);
    prefilled.resize_with(n, || None);
    for rep in replayed {
        let idx = rep.summary.block_id as usize;
        // Defensive: only trust records that name a real slot of this
        // world (generated worlds satisfy `blocks[i].id == i`).
        if idx < n && world.blocks[idx].id == rep.summary.block_id && prefilled[idx].is_none() {
            prefilled[idx] = Some(BlockOutcome::Analyzed(rep));
        }
    }
    let jmutex = parking_lot::Mutex::new(Some(writer));
    Ok(run_world(world, cfg, threads, progress, Some(&jmutex), prefilled, mode))
}

/// [`analyze_world`], additionally returning a [`RunReport`] isolating the
/// run's metric activity (snapshot delta around the call) with wall-clock
/// and thread context. With metrics disabled the report is present but
/// all-zero, and the analysis itself is byte-identical.
pub fn analyze_world_with_report(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    label: &str,
) -> (WorldAnalysis, RunReport) {
    let obs = sleepwatch_obs::global();
    let before = Snapshot::capture(obs);
    let start = std::time::Instant::now();
    let analysis = analyze_world(world, cfg, threads, progress);
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = Snapshot::capture(obs).delta(&before);
    let report =
        RunReport { label: label.to_string(), threads: threads.max(1), wall_seconds, snapshot };
    (analysis, report)
}

/// [`analyze_world_resumable`] with the same [`RunReport`] wrapper as
/// [`analyze_world_with_report`].
pub fn analyze_world_resumable_with_report(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    label: &str,
) -> Result<(WorldAnalysis, RunReport), JournalError> {
    let obs = sleepwatch_obs::global();
    let before = Snapshot::capture(obs);
    let start = std::time::Instant::now();
    let analysis = analyze_world_resumable(world, cfg, threads, journal_path, progress)?;
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = Snapshot::capture(obs).delta(&before);
    let report =
        RunReport { label: label.to_string(), threads: threads.max(1), wall_seconds, snapshot };
    Ok((analysis, report))
}

impl WorldAnalysis {
    /// Number of blocks analyzed (quarantined blocks excluded).
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when no blocks were analyzed.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Count and fraction of strictly diurnal blocks.
    pub fn strict_fraction(&self) -> (usize, f64) {
        let n = self.reports.iter().filter(|r| r.summary.class.is_strict()).count();
        (n, n as f64 / self.len().max(1) as f64)
    }

    /// Count and fraction of strict-or-relaxed diurnal blocks.
    pub fn diurnal_fraction(&self) -> (usize, f64) {
        let n = self.reports.iter().filter(|r| r.summary.class.is_diurnal()).count();
        (n, n as f64 / self.len().max(1) as f64)
    }

    /// Fraction of blocks passing the stationarity screen.
    pub fn stationary_fraction(&self) -> f64 {
        let n = self.reports.iter().filter(|r| r.summary.stationary).count();
        n as f64 / self.len().max(1) as f64
    }

    /// Detection quality against the planted labels:
    /// `(true_pos, false_pos, false_neg, true_neg)` using the strict class.
    pub fn confusion_vs_planted(&self) -> (usize, usize, usize, usize) {
        let mut tp = 0;
        let mut fp = 0;
        let mut fneg = 0;
        let mut tn = 0;
        for r in &self.reports {
            match (r.planted_diurnal, r.summary.class.is_strict()) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fneg += 1,
                (false, false) => tn += 1,
            }
        }
        (tp, fp, fneg, tn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::WorldConfig;

    fn tiny_analysis() -> WorldAnalysis {
        let world = World::generate(WorldConfig {
            num_blocks: 60,
            seed: 21,
            span_days: 4.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 2, None)
    }

    #[test]
    fn every_block_reported_in_order() {
        let a = tiny_analysis();
        assert_eq!(a.len(), 60);
        assert!(a.quarantined.is_empty());
        for (i, r) in a.reports.iter().enumerate() {
            assert_eq!(r.summary.block_id, i as u64);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let world = World::generate(WorldConfig {
            num_blocks: 24,
            seed: 5,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let seq = analyze_world(&world, &cfg, 1, None);
        let par = analyze_world(&world, &cfg, 4, None);
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(a.summary.class, b.summary.class);
            assert_eq!(a.summary.total_probes, b.summary.total_probes);
            assert_eq!(a.link_features, b.link_features);
        }
    }

    #[test]
    fn fixed_seed_world_classifies_deterministically() {
        // Two independent runs of the same fixed-seed 60-block world must
        // produce identical summaries — the planned FFT path may not perturb
        // classification across runs or thread schedules.
        let a = tiny_analysis();
        let b = tiny_analysis();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.summary.class, y.summary.class, "block {}", x.summary.block_id);
            assert_eq!(x.summary.phase, y.summary.phase);
            assert_eq!(x.summary.strongest_cpd, y.summary.strongest_cpd);
            assert_eq!(x.summary.total_probes, y.summary.total_probes);
        }
    }

    #[test]
    fn geolocation_coverage_near_ninety_three_percent() {
        let a = tiny_analysis();
        let located = a.reports.iter().filter(|r| r.location.is_some()).count();
        let frac = located as f64 / a.len() as f64;
        assert!(frac > 0.8 && frac <= 1.0, "coverage {frac}");
    }

    #[test]
    fn progress_callback_fires() {
        let world = World::generate(WorldConfig {
            num_blocks: 10,
            seed: 2,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let hits = AtomicUsize::new(0);
        let cb = |_d: usize, _n: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        analyze_world(&world, &cfg, 2, Some(&cb));
        assert!(hits.load(Ordering::Relaxed) >= 1, "final-progress callback expected");
    }

    #[test]
    fn progress_final_call_is_guaranteed_and_last() {
        // Regression: the final (n, n) invocation used to come from
        // whichever worker finished block n — a preempted worker could
        // deliver a stale intermediate count after it, and coarse-interval
        // reporting could skip it entirely. The contract now: exactly one
        // (n, n) call, strictly last.
        let world = World::generate(WorldConfig {
            num_blocks: 10,
            seed: 2,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        analyze_world(&world, &cfg, 3, Some(&cb));
        let calls = calls.into_inner();
        assert_eq!(calls.last(), Some(&(10, 10)), "final call must be (n, n): {calls:?}");
        assert_eq!(
            calls.iter().filter(|&&c| c == (10, 10)).count(),
            1,
            "final call must fire exactly once: {calls:?}"
        );
    }

    #[test]
    fn progress_fires_for_empty_world() {
        let world = World::generate(WorldConfig {
            num_blocks: 0,
            seed: 2,
            span_days: 1.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 1.0);
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        analyze_world(&world, &cfg, 2, Some(&cb));
        assert_eq!(calls.into_inner(), vec![(0, 0)], "empty worlds still get the final call");
    }

    #[test]
    fn with_report_returns_identical_analysis_and_labelled_report() {
        let world = World::generate(WorldConfig {
            num_blocks: 12,
            seed: 7,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let plain = analyze_world(&world, &cfg, 2, None);
        let (reported, report) = analyze_world_with_report(&world, &cfg, 2, None, "unit");
        assert_eq!(plain.len(), reported.len());
        for (a, b) in plain.reports.iter().zip(&reported.reports) {
            assert_eq!(a.summary.class, b.summary.class);
            assert_eq!(a.summary.total_probes, b.summary.total_probes);
        }
        assert_eq!(report.label, "unit");
        assert_eq!(report.threads, 2);
        assert!(report.wall_seconds >= 0.0);
        if sleepwatch_obs::global_enabled() {
            // The delta covers at least this run (other tests in the
            // binary may add to it concurrently, never subtract).
            assert!(report.snapshot.counter("pipeline.blocks_analyzed") >= 12);
            assert!(report.snapshot.counter("probing.probes_sent") > 0);
        }
    }

    #[test]
    fn fractions_are_consistent() {
        let a = tiny_analysis();
        let (strict, sf) = a.strict_fraction();
        let (diurnal, df) = a.diurnal_fraction();
        assert!(diurnal >= strict);
        assert!(df >= sf);
        let (tp, fp, fneg, tn) = a.confusion_vs_planted();
        assert_eq!(tp + fp + fneg + tn, a.len());
    }

    #[test]
    fn resumable_without_prior_journal_matches_plain_run() {
        let world = World::generate(WorldConfig {
            num_blocks: 20,
            seed: 11,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let dir = std::env::temp_dir().join(format!("swworldrun-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.journal");
        let _ = std::fs::remove_file(&path);
        let plain = analyze_world(&world, &cfg, 2, None);
        let resumable = analyze_world_resumable(&world, &cfg, 2, &path, None).unwrap();
        assert_eq!(format!("{:?}", plain.reports), format!("{:?}", resumable.reports));
        // And a second pass replays everything from the journal.
        let replayed = analyze_world_resumable(&world, &cfg, 2, &path, None).unwrap();
        assert_eq!(format!("{:?}", plain.reports), format!("{:?}", replayed.reports));
        let _ = std::fs::remove_file(&path);
    }
}
