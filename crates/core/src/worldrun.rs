//! World-scale analysis: run the per-block pipeline over every block of a
//! synthetic world in parallel, and join results with geolocation, reverse
//! DNS link classification, allocation dates, and country economics.
//!
//! Paper scale: blocks are claimed in fixed id-range chunks, and a chunk
//! can be fed either from a materialized [`World`] or pulled lazily from a
//! [`WorldSource`] — the 3.7M-block survey never holds more than
//! O(workers × chunk) specs in memory. Within a chunk, `SummaryOnly`
//! workers probe and clean up to [`MAX_BATCH_LANES`] blocks, then push the
//! same-length cleaned series through one batched real FFT
//! ([`sleepwatch_spectral::FftPlan::real_batch_with_scratch`]) — bit-identical to
//! the per-series kernel, so every golden and differential suite holds
//! byte-for-byte. Aggregation can likewise stream into a compact
//! [`WorldRunStats`] instead of collecting per-block reports.
//!
//! Resilience: workers wrap each phase of each block in `catch_unwind`, so
//! one poisoned block is quarantined (recorded in
//! [`WorldAnalysis::quarantined`]) instead of aborting the run, and the
//! `*_resumable` entry points journal every completed block to an
//! append-only checkpoint file ([`crate::journal`]) so a killed process
//! resumes where it stopped with byte-identical output — without
//! regenerating already-journaled blocks.

use crate::analyze::{
    analyze_block, analyze_block_with_scratch, classify_probed, probe_clean_into, AnalysisConfig,
    BlockScratch, BlockSummary, ProbedBlock,
};
use crate::journal::{self, JournalError, JournalHeader, JournalWriter};
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::{by_code, COUNTRIES};
use sleepwatch_geoecon::geolocate::{GeoDatabase, Location};
use sleepwatch_geoecon::region::Region;
use sleepwatch_linktype::{classify_block, LinkFeature};
use sleepwatch_obs::{RunReport, Snapshot, Stage, StageTimer};
use sleepwatch_simnet::{ptr_names, BlockSpec, World, WorldSource};
use sleepwatch_spectral::{plan_for, BatchRealScratch, Complex, MAX_BATCH_LANES};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Blocks per claimed chunk. Chunk composition is a pure function of the
/// block index, so which worker claims a chunk never changes what is in
/// it — quarantine order, batching, and (for lazy sources) generation all
/// stay deterministic across thread counts. Also the worker batch
/// capacity: one flush per chunk bounds local memory and keeps
/// `world.batch_grows` at zero.
const CHUNK: usize = 256;

/// One block's measurement, joined with every external data source the
/// paper correlates against.
#[derive(Debug, Clone)]
pub struct WorldBlockReport {
    /// Pipeline outcome.
    pub summary: BlockSummary,
    /// Geolocation (absent for the ~7 % the database cannot place).
    pub location: Option<Location>,
    /// UN-style region of the geolocated country.
    pub region: Option<Region>,
    /// Allocation date of the block's /8 (public registry data).
    pub alloc_date: YearMonth,
    /// Link features inferred from reverse DNS (kept keywords only).
    pub link_features: Vec<LinkFeature>,
    /// Origin AS.
    pub asn: u32,
    /// Ground-truth label carried along *for scoring only* — no aggregation
    /// below reads it.
    pub planted_diurnal: bool,
}

/// A block whose analysis panicked and was quarantined instead of
/// aborting the world run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Id of the poisoned block.
    pub block_id: u64,
    /// The panic message, for postmortem triage.
    pub diagnostic: String,
}

/// Outcome of one block's trip through a worker.
#[derive(Debug, Clone)]
pub enum BlockOutcome {
    /// The pipeline completed normally.
    Analyzed(WorldBlockReport),
    /// The pipeline panicked; the block is excluded from every
    /// aggregation and reported explicitly.
    Quarantined {
        /// Id of the poisoned block.
        block_id: u64,
        /// The panic message.
        diagnostic: String,
    },
}

/// How much per-block detail a world run materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorldRunMode {
    /// Allocate a full `BlockAnalysis` (raw run, cleaned series) per
    /// block and collapse it to a summary — the pre-scratch behaviour.
    FullDetail,
    /// Analyze through worker-local [`BlockScratch`] arenas and keep
    /// only the [`WorldBlockReport`]: zero steady-state allocations per
    /// block and far lower peak RSS, with same-length series batched
    /// through one FFT pass. Output is byte-identical to
    /// [`FullDetail`](Self::FullDetail); this is the default.
    #[default]
    SummaryOnly,
}

/// The analyzed world.
#[derive(Debug)]
pub struct WorldAnalysis {
    /// Per-block joined reports, in block order (quarantined blocks are
    /// absent — aggregations skip them by construction).
    pub reports: Vec<WorldBlockReport>,
    /// Blocks whose analysis panicked, in block order. Empty on healthy
    /// runs; deterministic across thread counts and schedules.
    pub quarantined: Vec<Quarantine>,
}

/// Streaming aggregate of a world run — everything the paper-scale survey
/// reports, in O(1) memory per run instead of O(blocks).
///
/// Produced by [`analyze_world_stats`]; [`WorldAnalysis::stats`] computes
/// the identical value from collected reports (the equivalence is a unit
/// test), so summary-level results never depend on which sink ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorldRunStats {
    /// Blocks analyzed (quarantined blocks excluded).
    pub blocks: usize,
    /// Strictly diurnal blocks.
    pub strict: usize,
    /// Strict-or-relaxed diurnal blocks.
    pub diurnal: usize,
    /// Blocks passing the §2.2 stationarity screen.
    pub stationary: usize,
    /// Blocks the geolocation database could place.
    pub located: usize,
    /// Planted diurnal, detected strict.
    pub true_pos: usize,
    /// Not planted, detected strict.
    pub false_pos: usize,
    /// Planted, not detected strict.
    pub false_neg: usize,
    /// Not planted, not detected strict.
    pub true_neg: usize,
    /// Total detected outages across all blocks.
    pub outages: u64,
    /// Total probes spent across all blocks.
    pub total_probes: u64,
    /// Blocks whose analysis panicked, sorted by block id.
    pub quarantined: Vec<Quarantine>,
}

impl WorldRunStats {
    /// Folds one completed block report into the aggregate.
    pub fn absorb_report(&mut self, r: &WorldBlockReport) {
        self.blocks += 1;
        if r.summary.class.is_strict() {
            self.strict += 1;
        }
        if r.summary.class.is_diurnal() {
            self.diurnal += 1;
        }
        if r.summary.stationary {
            self.stationary += 1;
        }
        if r.location.is_some() {
            self.located += 1;
        }
        match (r.planted_diurnal, r.summary.class.is_strict()) {
            (true, true) => self.true_pos += 1,
            (false, true) => self.false_pos += 1,
            (true, false) => self.false_neg += 1,
            (false, false) => self.true_neg += 1,
        }
        self.outages += r.summary.outages as u64;
        self.total_probes += r.summary.total_probes;
    }

    fn absorb_outcome(&mut self, outcome: BlockOutcome) {
        match outcome {
            BlockOutcome::Analyzed(r) => self.absorb_report(&r),
            BlockOutcome::Quarantined { block_id, diagnostic } => {
                self.quarantined.push(Quarantine { block_id, diagnostic });
            }
        }
    }

    /// Count and fraction of strictly diurnal blocks.
    pub fn strict_fraction(&self) -> (usize, f64) {
        (self.strict, self.strict as f64 / self.blocks.max(1) as f64)
    }

    /// Count and fraction of strict-or-relaxed diurnal blocks.
    pub fn diurnal_fraction(&self) -> (usize, f64) {
        (self.diurnal, self.diurnal as f64 / self.blocks.max(1) as f64)
    }

    /// Fraction of blocks passing the stationarity screen.
    pub fn stationary_fraction(&self) -> f64 {
        self.stationary as f64 / self.blocks.max(1) as f64
    }

    /// Detection quality against the planted labels:
    /// `(true_pos, false_pos, false_neg, true_neg)` using the strict class.
    pub fn confusion_vs_planted(&self) -> (usize, usize, usize, usize) {
        (self.true_pos, self.false_pos, self.false_neg, self.true_neg)
    }
}

/// Test-only failure injection. Hidden from docs and never armed outside
/// tests: the fast path is a single relaxed atomic load.
#[doc(hidden)]
pub mod hooks {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static PLANTED: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    /// Makes the analysis of block `block_id` panic (until cleared).
    pub fn plant_block_panic(block_id: u64) {
        PLANTED.lock().unwrap().push(block_id);
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Removes every planted panic.
    pub fn clear_block_panics() {
        PLANTED.lock().unwrap().clear();
        ARMED.store(false, Ordering::SeqCst);
    }

    pub(crate) fn fire(block_id: u64) {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        // Decide before panicking: the guard must be dropped first, or the
        // poisoned mutex would cascade panics into innocent workers.
        let planted = PLANTED.lock().unwrap().contains(&block_id);
        if planted {
            panic!("planted panic for block {block_id}");
        }
    }
}

/// Where a run's blocks come from: a materialized world, or a lazy
/// seed-keyed source that synthesizes each claimed chunk on demand.
enum Feed<'a> {
    World(&'a World),
    Source(&'a WorldSource),
}

impl<'a> Feed<'a> {
    fn len(&self) -> usize {
        match self {
            Feed::World(w) => w.blocks.len(),
            Feed::Source(s) => s.len(),
        }
    }

    fn geodb(&self) -> &'a GeoDatabase {
        match self {
            Feed::World(w) => &w.geodb,
            Feed::Source(s) => s.geodb(),
        }
    }
}

/// One claimed chunk's blocks: either a window into the materialized
/// world (indexed through the chunk's work list) or a freshly generated
/// dense buffer aligned with that list.
enum ChunkView<'a> {
    World(&'a [BlockSpec], &'a [usize]),
    Generated(&'a [BlockSpec]),
}

impl<'a> ChunkView<'a> {
    /// The block behind work item `j` of the chunk.
    fn get(&self, j: usize) -> &'a BlockSpec {
        match self {
            ChunkView::World(blocks, work) => &blocks[work[j]],
            ChunkView::Generated(buf) => &buf[j],
        }
    }
}

/// Where outcomes go: per-block collection (order restored by slot index)
/// or a streaming fold into [`WorldRunStats`].
enum Sink {
    Collect(Vec<Option<BlockOutcome>>),
    Stats(WorldRunStats),
}

/// What a finished run hands back, matching the sink it ran with.
enum RunOutput {
    Analysis(WorldAnalysis),
    Stats(WorldRunStats),
}

/// Geo/reverse-DNS/registry join for one completed summary — the
/// world-independent second half of the per-block pipeline.
pub(crate) fn join_block(
    geodb: &GeoDatabase,
    block: &BlockSpec,
    summary: BlockSummary,
) -> WorldBlockReport {
    let country = &COUNTRIES[block.country_idx];
    let location = geodb.locate(block.id, country, block.lon, block.lat);
    // Lookup-or-`None`: an out-of-table country code degrades this one
    // block to region-less instead of panicking a worker.
    let region = location.and_then(|l| match by_code(l.country) {
        Some(c) => Some(c.region),
        None => {
            sleepwatch_obs::global().geo.unknown_countries.incr();
            None
        }
    });
    let names = ptr_names(block);
    let label = classify_block(names.iter().map(|o| o.as_deref()));
    WorldBlockReport {
        summary,
        location,
        region,
        alloc_date: block.alloc_date,
        link_features: label.kept_features(),
        asn: block.asn,
        planted_diurnal: block.planted_diurnal,
    }
}

/// The full pipeline for one block: analysis plus every external join.
/// The scalar path — `FullDetail` always comes through here; the batched
/// `SummaryOnly` path splits the same stages across micro-batch phases.
fn analyze_one(
    block: &BlockSpec,
    geodb: &GeoDatabase,
    cfg: &AnalysisConfig,
    mode: WorldRunMode,
    scratch: &mut BlockScratch,
) -> WorldBlockReport {
    hooks::fire(block.id);
    let summary = match mode {
        WorldRunMode::FullDetail => analyze_block(block, cfg).summary(),
        WorldRunMode::SummaryOnly => analyze_block_with_scratch(block, cfg, scratch),
    };
    join_block(geodb, block, summary)
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Flushes a worker's local batch: journals completed reports (disabling
/// the journal on the first write error — the run itself must not die for
/// a full disk), then publishes outcomes into the shared sink.
fn flush_batch(
    local: &mut Vec<(usize, BlockOutcome)>,
    sink_mutex: &parking_lot::Mutex<&mut Sink>,
    journal: Option<&parking_lot::Mutex<Option<JournalWriter>>>,
) {
    if let Some(j) = journal {
        let mut jw = j.lock();
        if let Some(w) = jw.as_mut() {
            let mut failed = false;
            for (_, outcome) in local.iter() {
                if let BlockOutcome::Analyzed(rep) = outcome {
                    if let Err(e) = w.append(rep) {
                        eprintln!("[journal] write failed, journaling disabled: {e}");
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                *jw = None;
            }
        }
    }
    let mut guard = sink_mutex.lock();
    match &mut **guard {
        Sink::Collect(slots) => {
            for (idx, outcome) in local.drain(..) {
                slots[idx] = Some(outcome);
            }
        }
        Sink::Stats(stats) => {
            for (_, outcome) in local.drain(..) {
                stats.absorb_outcome(outcome);
            }
        }
    }
}

/// Records one outcome into the worker's batch, advances the shared done
/// counter, and reports coarse intermediate progress.
#[allow(clippy::too_many_arguments)]
fn emit(
    i: usize,
    outcome: BlockOutcome,
    n: usize,
    base: usize,
    local: &mut Vec<(usize, BlockOutcome)>,
    blocks_done: &mut u64,
    done: &AtomicUsize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) {
    if local.len() == local.capacity() {
        sleepwatch_obs::global().world.batch_grows.incr();
    }
    local.push((i, outcome));
    *blocks_done += 1;
    let d = done.fetch_add(1, Ordering::Relaxed) + 1 + base;
    if let Some(cb) = progress {
        // Final (n, n) is reported by the calling thread after the join;
        // workers only emit strictly intermediate counts.
        if d % 500 == 0 && d < n {
            cb(d, n);
        }
    }
}

/// Disjoint mutable references to the given scratch slots (ascending,
/// unique) — the lanes of one same-length FFT group.
fn lane_refs<'a>(scratches: &'a mut [BlockScratch], slots: &[usize]) -> Vec<&'a mut BlockScratch> {
    let mut out = Vec::with_capacity(slots.len());
    let mut rest = scratches;
    let mut consumed = 0;
    for &s in slots {
        let (_, tail) = std::mem::take(&mut rest).split_at_mut(s - consumed);
        let (head, tail2) = tail.split_at_mut(1);
        out.push(&mut head[0]);
        rest = tail2;
        consumed = s + 1;
    }
    out
}

/// Shared driver behind every `analyze_world*` entry point. `skip` marks
/// journal-replayed blocks (workers never touch them — for lazy sources a
/// fully replayed chunk is not even generated); `base` is how many were
/// replayed. Output depends only on the blocks and config — not on feed
/// kind, sink kind, thread count, schedule, journal presence, or how much
/// was replayed.
#[allow(clippy::too_many_arguments)]
fn run_world(
    feed: Feed<'_>,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    journal: Option<&parking_lot::Mutex<Option<JournalWriter>>>,
    skip: Vec<bool>,
    sink: Sink,
    mode: WorldRunMode,
) -> RunOutput {
    let obs = sleepwatch_obs::global();
    let _total_timer = StageTimer::start(obs.pipeline.stage(Stage::Total));
    let n = feed.len();
    debug_assert_eq!(skip.len(), n);
    let threads = threads.max(1);
    obs.world.runs.incr();
    obs.world.blocks_total.add(n as u64);
    obs.world.max_world_blocks.raise(n as u64);
    // Pre-warm the FFT plan for the nominal series length so workers start
    // from a populated cache instead of racing to plan it. Cleaning's
    // midnight trim can shorten some series; those lengths are planned once
    // on first use through the same cache. (`prewarm`, not `plan_for`:
    // warmup is not a caller-visible lookup and must not skew the
    // hit/miss-vs-transform accounting.)
    sleepwatch_spectral::prewarm(cfg.rounds as usize);
    let base = skip.iter().filter(|&&s| s).count();
    if let Some(cb) = progress {
        // Surface replayed work immediately: a resumed run starts its
        // progress at `base` instead of the first worker report jumping
        // from nothing. Strictly intermediate — a fully replayed run goes
        // straight to the final (n, n) below.
        if base > 0 && base < n {
            cb(base, n);
        }
    }
    let nchunks = n.div_ceil(CHUNK);
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let started = std::time::Instant::now();
    let mut sink = sink;
    {
        let sink_mutex = parking_lot::Mutex::new(&mut sink);
        crossbeam::thread::scope(|s| {
            for worker in 0..threads {
                // Rebind as shared references so `move` captures copies,
                // not the owned atomics/mutex themselves.
                let (next, done, sink_mutex, skip, feed) =
                    (&next, &done, &sink_mutex, &skip, &feed);
                s.spawn(move |_| {
                    // Worker arenas: one scratch per batch lane plus the
                    // lane-interleaved FFT workspace and (for lazy feeds)
                    // the chunk's spec buffer. All grow-only — after
                    // warm-up a chunk runs without allocating.
                    let mut local: Vec<(usize, BlockOutcome)> = Vec::with_capacity(CHUNK);
                    let mut scratches: Vec<BlockScratch> =
                        (0..MAX_BATCH_LANES).map(|_| BlockScratch::new()).collect();
                    let mut batch_scratch = BatchRealScratch::new();
                    let mut gen_buf: Vec<BlockSpec> = Vec::new();
                    let mut work: Vec<usize> = Vec::with_capacity(CHUNK);
                    let mut blocks_done = 0u64;
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks {
                            break;
                        }
                        let lo = c * CHUNK;
                        let hi = ((c + 1) * CHUNK).min(n);
                        work.clear();
                        work.extend((lo..hi).filter(|&i| !skip[i]));
                        if work.is_empty() {
                            // Fully replayed from the journal: resumed
                            // sources skip generation outright.
                            continue;
                        }
                        let view = match feed {
                            Feed::World(w) => ChunkView::World(&w.blocks, &work),
                            Feed::Source(src) => {
                                src.generate_into(work.iter().map(|&i| i as u64), &mut gen_buf);
                                obs.world.source_chunks.incr();
                                ChunkView::Generated(&gen_buf)
                            }
                        };
                        match mode {
                            WorldRunMode::FullDetail => {
                                for (j, &i) in work.iter().enumerate() {
                                    let block = view.get(j);
                                    let scr = &mut scratches[0];
                                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                                        analyze_one(block, feed.geodb(), cfg, mode, scr)
                                    })) {
                                        Ok(rep) => BlockOutcome::Analyzed(rep),
                                        Err(payload) => {
                                            obs.resilience.blocks_quarantined.incr();
                                            BlockOutcome::Quarantined {
                                                block_id: block.id,
                                                diagnostic: panic_message(payload),
                                            }
                                        }
                                    };
                                    emit(
                                        i,
                                        outcome,
                                        n,
                                        base,
                                        &mut local,
                                        &mut blocks_done,
                                        done,
                                        progress,
                                    );
                                }
                            }
                            WorldRunMode::SummaryOnly => {
                                run_chunk_batched(
                                    &view,
                                    &work,
                                    feed.geodb(),
                                    cfg,
                                    &mut scratches,
                                    &mut batch_scratch,
                                    &mut |i, outcome| {
                                        emit(
                                            i,
                                            outcome,
                                            n,
                                            base,
                                            &mut local,
                                            &mut blocks_done,
                                            done,
                                            progress,
                                        )
                                    },
                                );
                            }
                        }
                        flush_batch(&mut local, sink_mutex, journal);
                    }
                    obs.world.worker_blocks.add(worker, blocks_done);
                    let arena: usize = scratches.iter().map(|s| s.footprint_bytes()).sum::<usize>()
                        + batch_scratch.footprint_bytes()
                        + gen_buf.capacity() * std::mem::size_of::<BlockSpec>();
                    obs.world.peak_block_bytes.raise(arena as u64);
                });
            }
        })
        .expect("worker thread panicked");
    }

    let analyzed = n - base;
    let secs = started.elapsed().as_secs_f64();
    if analyzed > 0 && secs > 0.0 {
        obs.world.blocks_per_sec.raise((analyzed as f64 / secs) as u64);
    }
    let out = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Join));
        match sink {
            Sink::Collect(slots) => {
                let mut reports = Vec::with_capacity(n);
                let mut quarantined = Vec::new();
                for s in slots.into_iter().map(|s| s.expect("every block analyzed")) {
                    match s {
                        BlockOutcome::Analyzed(r) => reports.push(r),
                        BlockOutcome::Quarantined { block_id, diagnostic } => {
                            quarantined.push(Quarantine { block_id, diagnostic });
                        }
                    }
                }
                RunOutput::Analysis(WorldAnalysis { reports, quarantined })
            }
            Sink::Stats(mut stats) => {
                // Workers fold in claim order; counters commute but the
                // quarantine list must come out deterministic.
                stats.quarantined.sort_by_key(|q| q.block_id);
                RunOutput::Stats(stats)
            }
        }
    };
    if let Some(j) = journal {
        if let Some(w) = j.lock().as_mut() {
            if let Err(e) = w.sync() {
                eprintln!("[journal] final sync failed: {e}");
            }
        }
    }
    if let Some(cb) = progress {
        cb(n, n);
    }
    out
}

/// `SummaryOnly` chunk execution: probe/clean up to [`MAX_BATCH_LANES`]
/// blocks into per-lane arenas, FFT same-length series together through
/// the lane-interleaved kernel, then classify and join each lane. Every
/// phase keeps its own `catch_unwind` boundary so one poisoned block
/// quarantines alone, never its batch-mates.
fn run_chunk_batched(
    view: &ChunkView<'_>,
    work: &[usize],
    geodb: &GeoDatabase,
    cfg: &AnalysisConfig,
    scratches: &mut [BlockScratch],
    batch_scratch: &mut BatchRealScratch,
    emit: &mut dyn FnMut(usize, BlockOutcome),
) {
    let obs = sleepwatch_obs::global();
    let track = obs.pipeline.scratch_reuses.enabled();
    let m = work.len();
    for mb in (0..m).step_by(MAX_BATCH_LANES) {
        let lanes = (m - mb).min(MAX_BATCH_LANES);
        let mut probed: [Option<ProbedBlock>; MAX_BATCH_LANES] = [None; MAX_BATCH_LANES];
        let mut outcomes: [Option<BlockOutcome>; MAX_BATCH_LANES] = Default::default();
        let mut fp_before = [0usize; MAX_BATCH_LANES];

        // Phase 1: probe → estimate → clean, one lane per block.
        for l in 0..lanes {
            let block = view.get(mb + l);
            if track {
                fp_before[l] = scratches[l].footprint_bytes();
            }
            let scr = &mut scratches[l];
            match catch_unwind(AssertUnwindSafe(|| {
                hooks::fire(block.id);
                probe_clean_into(block, cfg, scr)
            })) {
                Ok(p) => probed[l] = Some(p),
                Err(payload) => {
                    obs.resilience.blocks_quarantined.incr();
                    outcomes[l] = Some(BlockOutcome::Quarantined {
                        block_id: block.id,
                        diagnostic: panic_message(payload),
                    });
                }
            }
        }

        // Phase 2: group surviving lanes by cleaned-series length (fixed
        // stack tables — lanes ≤ MAX_BATCH_LANES) and FFT each group in
        // one batched pass.
        let mut glen = [0usize; MAX_BATCH_LANES];
        let mut gmem = [[0usize; MAX_BATCH_LANES]; MAX_BATCH_LANES];
        let mut gcnt = [0usize; MAX_BATCH_LANES];
        let mut ngroups = 0usize;
        for l in 0..lanes {
            if probed[l].is_none() {
                continue;
            }
            let len = scratches[l].series_len();
            let gi = match (0..ngroups).find(|&g| glen[g] == len) {
                Some(g) => g,
                None => {
                    glen[ngroups] = len;
                    ngroups += 1;
                    ngroups - 1
                }
            };
            gmem[gi][gcnt[gi]] = l;
            gcnt[gi] += 1;
        }
        for g in 0..ngroups {
            let len = glen[g];
            let members = &gmem[g][..gcnt[g]];
            // One counted cache lookup per member: the batched kernel
            // records one transform per lane, and the metrics suite pins
            // `plan_cache.hits + misses == fft.transforms`.
            let mut plan = plan_for(len);
            for _ in 1..members.len() {
                plan = plan_for(len);
            }
            let hist = obs.pipeline.stage(Stage::Fft);
            let timed = hist.enabled();
            let start = timed.then(std::time::Instant::now);
            let batch_ok = catch_unwind(AssertUnwindSafe(|| {
                let mut lanes_mut = lane_refs(scratches, members);
                let mut ins: Vec<&[f64]> = Vec::with_capacity(lanes_mut.len());
                let mut outs: Vec<&mut [Complex]> = Vec::with_capacity(lanes_mut.len());
                for scr in lanes_mut.iter_mut() {
                    let (series, spec) = scr.series_and_spectrum();
                    ins.push(series);
                    outs.push(spec.prepare_coeffs(len, sleepwatch_spectral::ROUND_SECONDS));
                }
                plan.real_batch_with_scratch(&ins, &mut outs, batch_scratch);
            }))
            .is_ok();
            if !batch_ok {
                // A poisoned lane must not sink its batch-mates: redo each
                // lane through the scalar kernel with its own quarantine
                // boundary. (The batch kernel validates before recording
                // telemetry, so the scalar redo keeps the lookup/transform
                // ledger aligned up to the quarantined lanes.)
                for &l in members {
                    let block = view.get(mb + l);
                    let scr = &mut scratches[l];
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                        let (series, spec) = scr.series_and_spectrum();
                        spec.compute_with_plan(series, sleepwatch_spectral::ROUND_SECONDS, &plan);
                    })) {
                        obs.resilience.blocks_quarantined.incr();
                        probed[l] = None;
                        outcomes[l] = Some(BlockOutcome::Quarantined {
                            block_id: block.id,
                            diagnostic: panic_message(payload),
                        });
                    }
                }
            }
            if let Some(t0) = start {
                // The group's wall time split evenly keeps the per-block
                // stage histogram at one sample per block.
                let per_member = t0.elapsed().as_secs_f64() * 1e6 / members.len() as f64;
                for _ in members {
                    hist.record(per_member);
                }
            }
        }

        // Phase 3: classify and join each lane, in lane order.
        for l in 0..lanes {
            let i = work[mb + l];
            if let Some(outcome) = outcomes[l].take() {
                emit(i, outcome);
                continue;
            }
            let block = view.get(mb + l);
            let p = probed[l].expect("lane survived phases 1–2");
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                let (summary, _diurnal, _trend) = classify_probed(block, cfg, &scratches[l], p);
                if track {
                    // Same classification point as the scalar path: the
                    // whole block (probe buffers, series, spectrum) either
                    // fit the warm arena or grew it.
                    if scratches[l].footprint_bytes() > fp_before[l] {
                        obs.pipeline.scratch_grows.incr();
                    } else {
                        obs.pipeline.scratch_reuses.incr();
                    }
                }
                join_block(geodb, block, summary)
            })) {
                Ok(rep) => BlockOutcome::Analyzed(rep),
                Err(payload) => {
                    obs.resilience.blocks_quarantined.incr();
                    BlockOutcome::Quarantined {
                        block_id: block.id,
                        diagnostic: panic_message(payload),
                    }
                }
            };
            emit(i, outcome);
        }
    }
}

/// Empty per-block collection slots for a fresh run.
fn empty_slots(n: usize) -> Vec<Option<BlockOutcome>> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || None);
    v
}

fn expect_analysis(out: RunOutput) -> WorldAnalysis {
    match out {
        RunOutput::Analysis(a) => a,
        RunOutput::Stats(_) => unreachable!("collect sink returns an analysis"),
    }
}

fn expect_stats(out: RunOutput) -> WorldRunStats {
    match out {
        RunOutput::Stats(s) => s,
        RunOutput::Analysis(_) => unreachable!("stats sink returns stats"),
    }
}

/// Analyzes every block of `world` with `cfg`, using `threads` worker
/// threads (1 = sequential). An optional `progress` callback receives the
/// number of completed blocks at coarse intervals.
///
/// Progress contract: workers report coarse intermediate progress
/// (`done < n` at multiples of 500), and after every worker has joined the
/// callback receives exactly one final `(n, n)` invocation — guaranteed to
/// be the last call, even for empty worlds and regardless of worker
/// scheduling. (Workers reporting the final count themselves would race: a
/// preempted worker could deliver a stale intermediate count *after*
/// another worker's `(n, n)`.)
pub fn analyze_world(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> WorldAnalysis {
    analyze_world_with_mode(world, cfg, threads, progress, WorldRunMode::default())
}

/// [`analyze_world`] with an explicit [`WorldRunMode`]. Both modes produce
/// byte-identical [`WorldBlockReport`]s (asserted by the `scratch_equiv`
/// differential suite); [`WorldRunMode::SummaryOnly`] — the default — does
/// it without per-block heap allocation, batching same-length FFTs.
pub fn analyze_world_with_mode(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    mode: WorldRunMode,
) -> WorldAnalysis {
    let n = world.blocks.len();
    expect_analysis(run_world(
        Feed::World(world),
        cfg,
        threads,
        progress,
        None,
        vec![false; n],
        Sink::Collect(empty_slots(n)),
        mode,
    ))
}

/// [`analyze_world`] over a lazy [`WorldSource`]: blocks are synthesized
/// chunk-by-chunk as workers claim them, so peak memory is
/// O(threads × chunk) specs instead of the whole world. Byte-identical
/// to materializing the source and calling [`analyze_world`] (the source
/// is seed-keyed per block), at any thread count.
pub fn analyze_world_source(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> WorldAnalysis {
    let n = source.len();
    expect_analysis(run_world(
        Feed::Source(source),
        cfg,
        threads,
        progress,
        None,
        vec![false; n],
        Sink::Collect(empty_slots(n)),
        WorldRunMode::SummaryOnly,
    ))
}

/// Paper-scale entry point: lazy generation ([`WorldSource`]) and a
/// streaming [`WorldRunStats`] sink — O(1) memory in the number of blocks.
/// The aggregate equals [`WorldAnalysis::stats`] of the collected run
/// exactly.
pub fn analyze_world_stats(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> WorldRunStats {
    let n = source.len();
    expect_stats(run_world(
        Feed::Source(source),
        cfg,
        threads,
        progress,
        None,
        vec![false; n],
        Sink::Stats(WorldRunStats::default()),
        WorldRunMode::SummaryOnly,
    ))
}

/// The run identity a resumable world run stamps into its journal (and
/// that seed-joined binary datasets share, with `rounds` zeroed): the
/// four fields that decide whether two on-disk artifacts came from the
/// same world and analysis configuration.
pub fn run_identity(
    seed: u64,
    num_blocks: usize,
    cfg: &AnalysisConfig,
) -> crate::framing::RunIdentity {
    crate::framing::RunIdentity {
        world_seed: seed,
        num_blocks: num_blocks as u64,
        rounds: cfg.rounds,
        start_time: cfg.start_time,
    }
}

/// Builds the journal prefill for a resumable run: opens (or validates)
/// the journal at `path` and returns the writer, the replay skip-mask,
/// and the replayed reports.
pub(crate) fn open_journal(
    path: &Path,
    seed: u64,
    n: usize,
    cfg: &AnalysisConfig,
) -> Result<(JournalWriter, Vec<bool>, Vec<WorldBlockReport>), JournalError> {
    let header = JournalHeader::from_identity(&run_identity(seed, n, cfg));
    let (writer, replayed, _stats) = journal::open_resume(path, &header)?;
    let mut skip = vec![false; n];
    let mut kept = Vec::with_capacity(replayed.len());
    for rep in replayed {
        let idx = rep.summary.block_id as usize;
        // Defensive: only trust records that name a real slot of this
        // world (generated worlds satisfy `blocks[i].id == i`), first
        // record wins.
        if idx < n && !skip[idx] {
            skip[idx] = true;
            kept.push(rep);
        }
    }
    Ok((writer, skip, kept))
}

/// [`analyze_world`] with a crash-safe checkpoint journal at
/// `journal_path`: every completed block is appended to the journal
/// (fsync'd every [`journal::SYNC_EVERY`] records), and if the file
/// already holds a valid prefix for this exact run — same world seed,
/// block count, rounds and start time — those blocks are replayed instead
/// of recomputed. A truncated or bit-flipped tail costs only the damaged
/// suffix. The analysis is byte-identical to an uninterrupted
/// [`analyze_world`] at any thread count.
///
/// Errors only on IO failure or when the journal belongs to a different
/// run; corruption never errors.
pub fn analyze_world_resumable(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<WorldAnalysis, JournalError> {
    analyze_world_resumable_with_mode(
        world,
        cfg,
        threads,
        journal_path,
        progress,
        WorldRunMode::default(),
    )
}

/// [`analyze_world_resumable`] with an explicit [`WorldRunMode`]; the
/// journal format and resume semantics are mode-independent.
pub fn analyze_world_resumable_with_mode(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    mode: WorldRunMode,
) -> Result<WorldAnalysis, JournalError> {
    let n = world.blocks.len();
    let (writer, skip, replayed) = open_journal(journal_path, world.cfg.seed, n, cfg)?;
    let mut slots = empty_slots(n);
    for rep in replayed {
        let idx = rep.summary.block_id as usize;
        slots[idx] = Some(BlockOutcome::Analyzed(rep));
    }
    let jmutex = parking_lot::Mutex::new(Some(writer));
    Ok(expect_analysis(run_world(
        Feed::World(world),
        cfg,
        threads,
        progress,
        Some(&jmutex),
        skip,
        Sink::Collect(slots),
        mode,
    )))
}

/// [`analyze_world_source`] with the checkpoint journal of
/// [`analyze_world_resumable`]. Chunks whose blocks were all replayed are
/// never regenerated — resuming a mostly finished paper-scale run costs
/// only the missing tail.
pub fn analyze_world_source_resumable(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<WorldAnalysis, JournalError> {
    let n = source.len();
    let (writer, skip, replayed) = open_journal(journal_path, source.cfg().seed, n, cfg)?;
    let mut slots = empty_slots(n);
    for rep in replayed {
        let idx = rep.summary.block_id as usize;
        slots[idx] = Some(BlockOutcome::Analyzed(rep));
    }
    let jmutex = parking_lot::Mutex::new(Some(writer));
    Ok(expect_analysis(run_world(
        Feed::Source(source),
        cfg,
        threads,
        progress,
        Some(&jmutex),
        skip,
        Sink::Collect(slots),
        WorldRunMode::SummaryOnly,
    )))
}

/// [`analyze_world_stats`] with the checkpoint journal: replayed blocks
/// fold straight into the aggregate, unreplayed chunks are generated and
/// analyzed, and the result equals an uninterrupted stats run exactly.
pub fn analyze_world_stats_resumable(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<WorldRunStats, JournalError> {
    let n = source.len();
    let (writer, skip, replayed) = open_journal(journal_path, source.cfg().seed, n, cfg)?;
    let mut stats = WorldRunStats::default();
    for rep in &replayed {
        stats.absorb_report(rep);
    }
    let jmutex = parking_lot::Mutex::new(Some(writer));
    Ok(expect_stats(run_world(
        Feed::Source(source),
        cfg,
        threads,
        progress,
        Some(&jmutex),
        skip,
        Sink::Stats(stats),
        WorldRunMode::SummaryOnly,
    )))
}

/// [`analyze_world`], additionally returning a [`RunReport`] isolating the
/// run's metric activity (snapshot delta around the call) with wall-clock
/// and thread context. With metrics disabled the report is present but
/// all-zero, and the analysis itself is byte-identical.
pub fn analyze_world_with_report(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    label: &str,
) -> (WorldAnalysis, RunReport) {
    let obs = sleepwatch_obs::global();
    let before = Snapshot::capture(obs);
    let start = std::time::Instant::now();
    let analysis = analyze_world(world, cfg, threads, progress);
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = Snapshot::capture(obs).delta(&before);
    let report =
        RunReport { label: label.to_string(), threads: threads.max(1), wall_seconds, snapshot };
    (analysis, report)
}

/// [`analyze_world_resumable`] with the same [`RunReport`] wrapper as
/// [`analyze_world_with_report`].
pub fn analyze_world_resumable_with_report(
    world: &World,
    cfg: &AnalysisConfig,
    threads: usize,
    journal_path: &Path,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
    label: &str,
) -> Result<(WorldAnalysis, RunReport), JournalError> {
    let obs = sleepwatch_obs::global();
    let before = Snapshot::capture(obs);
    let start = std::time::Instant::now();
    let analysis = analyze_world_resumable(world, cfg, threads, journal_path, progress)?;
    let wall_seconds = start.elapsed().as_secs_f64();
    let snapshot = Snapshot::capture(obs).delta(&before);
    let report =
        RunReport { label: label.to_string(), threads: threads.max(1), wall_seconds, snapshot };
    Ok((analysis, report))
}

impl WorldAnalysis {
    /// Number of blocks analyzed (quarantined blocks excluded).
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when no blocks were analyzed.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The streaming aggregate of this analysis — identical to what
    /// [`analyze_world_stats`] would have produced for the same run.
    pub fn stats(&self) -> WorldRunStats {
        let mut stats = WorldRunStats::default();
        for r in &self.reports {
            stats.absorb_report(r);
        }
        stats.quarantined = self.quarantined.clone();
        stats.quarantined.sort_by_key(|q| q.block_id);
        stats
    }

    /// Count and fraction of strictly diurnal blocks.
    pub fn strict_fraction(&self) -> (usize, f64) {
        let n = self.reports.iter().filter(|r| r.summary.class.is_strict()).count();
        (n, n as f64 / self.len().max(1) as f64)
    }

    /// Count and fraction of strict-or-relaxed diurnal blocks.
    pub fn diurnal_fraction(&self) -> (usize, f64) {
        let n = self.reports.iter().filter(|r| r.summary.class.is_diurnal()).count();
        (n, n as f64 / self.len().max(1) as f64)
    }

    /// Fraction of blocks passing the stationarity screen.
    pub fn stationary_fraction(&self) -> f64 {
        let n = self.reports.iter().filter(|r| r.summary.stationary).count();
        n as f64 / self.len().max(1) as f64
    }

    /// Detection quality against the planted labels:
    /// `(true_pos, false_pos, false_neg, true_neg)` using the strict class.
    pub fn confusion_vs_planted(&self) -> (usize, usize, usize, usize) {
        let mut tp = 0;
        let mut fp = 0;
        let mut fneg = 0;
        let mut tn = 0;
        for r in &self.reports {
            match (r.planted_diurnal, r.summary.class.is_strict()) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fneg += 1,
                (false, false) => tn += 1,
            }
        }
        (tp, fp, fneg, tn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::WorldConfig;

    fn tiny_analysis() -> WorldAnalysis {
        let world = World::generate(WorldConfig {
            num_blocks: 60,
            seed: 21,
            span_days: 4.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 2, None)
    }

    #[test]
    fn every_block_reported_in_order() {
        let a = tiny_analysis();
        assert_eq!(a.len(), 60);
        assert!(a.quarantined.is_empty());
        for (i, r) in a.reports.iter().enumerate() {
            assert_eq!(r.summary.block_id, i as u64);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let world = World::generate(WorldConfig {
            num_blocks: 24,
            seed: 5,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let seq = analyze_world(&world, &cfg, 1, None);
        let par = analyze_world(&world, &cfg, 4, None);
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(a.summary.class, b.summary.class);
            assert_eq!(a.summary.total_probes, b.summary.total_probes);
            assert_eq!(a.link_features, b.link_features);
        }
    }

    #[test]
    fn fixed_seed_world_classifies_deterministically() {
        // Two independent runs of the same fixed-seed 60-block world must
        // produce identical summaries — the planned FFT path may not perturb
        // classification across runs or thread schedules.
        let a = tiny_analysis();
        let b = tiny_analysis();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.summary.class, y.summary.class, "block {}", x.summary.block_id);
            assert_eq!(x.summary.phase, y.summary.phase);
            assert_eq!(x.summary.strongest_cpd, y.summary.strongest_cpd);
            assert_eq!(x.summary.total_probes, y.summary.total_probes);
        }
    }

    #[test]
    fn lazy_source_run_matches_materialized_world_run() {
        // The tentpole equivalence: pulling blocks lazily from a
        // WorldSource (chunked generation + batched FFTs) must be
        // byte-identical to materializing the world first.
        let cfg_w = WorldConfig { num_blocks: 70, seed: 33, span_days: 4.0, ..Default::default() };
        let world = World::generate(cfg_w.clone());
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        let from_world = analyze_world(&world, &cfg, 2, None);
        let source = WorldSource::new(cfg_w);
        let from_source = analyze_world_source(&source, &cfg, 3, None);
        assert_eq!(
            format!("{:?}", from_world.reports),
            format!("{:?}", from_source.reports),
            "lazy source run diverged from materialized run"
        );
        assert!(from_source.quarantined.is_empty());
    }

    #[test]
    fn stats_sink_matches_collected_analysis() {
        let cfg_w = WorldConfig { num_blocks: 60, seed: 21, span_days: 4.0, ..Default::default() };
        let source = WorldSource::new(cfg_w.clone());
        let cfg = AnalysisConfig::over_days(source.cfg().start_time, 4.0);
        let stats = analyze_world_stats(&source, &cfg, 2, None);
        let collected = tiny_analysis(); // same world cfg as `source`
        assert_eq!(stats, collected.stats(), "streaming aggregate diverged from collected run");
        assert_eq!(stats.blocks, 60);
        let (_, sf) = stats.strict_fraction();
        assert!((0.0..=1.0).contains(&sf));
        let (tp, fp, fneg, tn) = stats.confusion_vs_planted();
        assert_eq!(tp + fp + fneg + tn, stats.blocks);
    }

    #[test]
    fn geolocation_coverage_near_ninety_three_percent() {
        let a = tiny_analysis();
        let located = a.reports.iter().filter(|r| r.location.is_some()).count();
        let frac = located as f64 / a.len() as f64;
        assert!(frac > 0.8 && frac <= 1.0, "coverage {frac}");
    }

    #[test]
    fn progress_callback_fires() {
        let world = World::generate(WorldConfig {
            num_blocks: 10,
            seed: 2,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let hits = AtomicUsize::new(0);
        let cb = |_d: usize, _n: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        analyze_world(&world, &cfg, 2, Some(&cb));
        assert!(hits.load(Ordering::Relaxed) >= 1, "final-progress callback expected");
    }

    #[test]
    fn progress_final_call_is_guaranteed_and_last() {
        // Regression: the final (n, n) invocation used to come from
        // whichever worker finished block n — a preempted worker could
        // deliver a stale intermediate count after it, and coarse-interval
        // reporting could skip it entirely. The contract now: exactly one
        // (n, n) call, strictly last.
        let world = World::generate(WorldConfig {
            num_blocks: 10,
            seed: 2,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        analyze_world(&world, &cfg, 3, Some(&cb));
        let calls = calls.into_inner();
        assert_eq!(calls.last(), Some(&(10, 10)), "final call must be (n, n): {calls:?}");
        assert_eq!(
            calls.iter().filter(|&&c| c == (10, 10)).count(),
            1,
            "final call must fire exactly once: {calls:?}"
        );
    }

    #[test]
    fn progress_fires_for_empty_world() {
        let world = World::generate(WorldConfig {
            num_blocks: 0,
            seed: 2,
            span_days: 1.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 1.0);
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        analyze_world(&world, &cfg, 2, Some(&cb));
        assert_eq!(calls.into_inner(), vec![(0, 0)], "empty worlds still get the final call");
    }

    #[test]
    fn resumed_run_surfaces_replayed_progress_first() {
        // Satellite: a resumed run's first progress report is the replayed
        // base, not a jump straight to (n, n) — while the exactly-one-final
        // guarantee still holds.
        let world = World::generate(WorldConfig {
            num_blocks: 20,
            seed: 13,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let dir = std::env::temp_dir().join(format!("swresumeprog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.journal");
        let _ = std::fs::remove_file(&path);
        // First pass: block 7 panics, so the journal holds 19 of 20.
        hooks::plant_block_panic(7);
        let first = analyze_world_resumable(&world, &cfg, 2, &path, None).unwrap();
        hooks::clear_block_panics();
        assert_eq!(first.quarantined.len(), 1);
        // Resume: 19 replayed, 1 recomputed.
        let calls = parking_lot::Mutex::new(Vec::new());
        let cb = |d: usize, n: usize| calls.lock().push((d, n));
        let resumed = analyze_world_resumable(&world, &cfg, 2, &path, Some(&cb)).unwrap();
        assert!(resumed.quarantined.is_empty());
        assert_eq!(resumed.len(), 20);
        let calls = calls.into_inner();
        assert_eq!(calls.first(), Some(&(19, 20)), "replayed base must surface: {calls:?}");
        assert_eq!(calls.last(), Some(&(20, 20)));
        assert_eq!(calls.iter().filter(|&&c| c == (20, 20)).count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn with_report_returns_identical_analysis_and_labelled_report() {
        let world = World::generate(WorldConfig {
            num_blocks: 12,
            seed: 7,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let plain = analyze_world(&world, &cfg, 2, None);
        let (reported, report) = analyze_world_with_report(&world, &cfg, 2, None, "unit");
        assert_eq!(plain.len(), reported.len());
        for (a, b) in plain.reports.iter().zip(&reported.reports) {
            assert_eq!(a.summary.class, b.summary.class);
            assert_eq!(a.summary.total_probes, b.summary.total_probes);
        }
        assert_eq!(report.label, "unit");
        assert_eq!(report.threads, 2);
        assert!(report.wall_seconds >= 0.0);
        if sleepwatch_obs::global_enabled() {
            // The delta covers at least this run (other tests in the
            // binary may add to it concurrently, never subtract).
            assert!(report.snapshot.counter("pipeline.blocks_analyzed") >= 12);
            assert!(report.snapshot.counter("probing.probes_sent") > 0);
        }
    }

    #[test]
    fn fractions_are_consistent() {
        let a = tiny_analysis();
        let (strict, sf) = a.strict_fraction();
        let (diurnal, df) = a.diurnal_fraction();
        assert!(diurnal >= strict);
        assert!(df >= sf);
        let (tp, fp, fneg, tn) = a.confusion_vs_planted();
        assert_eq!(tp + fp + fneg + tn, a.len());
    }

    #[test]
    fn resumable_without_prior_journal_matches_plain_run() {
        let world = World::generate(WorldConfig {
            num_blocks: 20,
            seed: 11,
            span_days: 3.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
        let dir = std::env::temp_dir().join(format!("swworldrun-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.journal");
        let _ = std::fs::remove_file(&path);
        let plain = analyze_world(&world, &cfg, 2, None);
        let resumable = analyze_world_resumable(&world, &cfg, 2, &path, None).unwrap();
        assert_eq!(format!("{:?}", plain.reports), format!("{:?}", resumable.reports));
        // And a second pass replays everything from the journal.
        let replayed = analyze_world_resumable(&world, &cfg, 2, &path, None).unwrap();
        assert_eq!(format!("{:?}", plain.reports), format!("{:?}", replayed.reports));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_resumable_matches_fresh_stats() {
        let cfg_w = WorldConfig { num_blocks: 30, seed: 17, span_days: 3.0, ..Default::default() };
        let source = WorldSource::new(cfg_w.clone());
        let cfg = AnalysisConfig::over_days(source.cfg().start_time, 3.0);
        let dir = std::env::temp_dir().join(format!("swstatsres-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.journal");
        let _ = std::fs::remove_file(&path);
        let fresh = analyze_world_stats(&source, &cfg, 2, None);
        let journaled = analyze_world_stats_resumable(&source, &cfg, 2, &path, None).unwrap();
        assert_eq!(fresh, journaled);
        // Second pass: everything replays, nothing is regenerated.
        let replayed = analyze_world_stats_resumable(&source, &cfg, 2, &path, None).unwrap();
        assert_eq!(fresh, replayed);
        let _ = std::fs::remove_file(&path);
    }
}
