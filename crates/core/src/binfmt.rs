//! Compact, versioned, memory-mappable binary container for world
//! datasets — the binary sibling of the TSV format in [`crate::export`].
//!
//! A TSV dataset row costs ~77 bytes. The A12w-scale worlds from PR 6
//! (millions of blocks) turn that into a multi-gigabyte wall between the
//! analysis and anything that wants to read it back. This container gets
//! the same rows to ≈7 bytes each by combining, per 4096-row frame:
//!
//! * **delta-coded block ids** (sorted ids, gap-1 in a per-frame width);
//! * **dictionary coding** for the repetitive columns — country codes,
//!   allocation dates, link-feature masks and the strongest-cpd values
//!   all draw from small global tables, frequency-sorted so Rice-coded
//!   indices spend under a bit on the common entries;
//! * **quantized floats**: values that survive a bit-exact
//!   quantize/dequantize roundtrip at the TSV print precision are stored
//!   as narrow integer deltas, with a per-value raw escape for the rest
//!   (`-0.0`, `NaN`, doubles that double-round);
//! * **frame-of-reference** coding for probes and AS numbers.
//!
//! Two container modes share the layout:
//!
//! * **self-contained** (`mode 0`): every column is stored; the file
//!   decodes with no outside context (this is what `convert` produces
//!   from a foreign TSV);
//! * **seed-joined** (`mode 1`): the columns that are pure functions of
//!   the world seed — longitude, latitude, country, centroid flag,
//!   allocation date, origin AS — are *not stored at all* (only the
//!   one-bit located flag survives, so aggregates skip regeneration) and
//!   are re-derived at decode from the [`WorldConfig`] the caller supplies,
//!   the same trick BIP-152 compact blocks play with transactions the
//!   peer already holds. The encoder verifies bit-exact derivability of
//!   every elided value before committing to this mode.
//!
//! Integrity reuses the journal's framing discipline via
//! [`crate::framing`]: the shared 64-byte prelude (magic, version,
//! endianness tag, run identity, record count, header CRC), a
//! CRC-guarded dictionary section, and a CRC32 per frame chained over
//! the header CRC, the dictionary CRC *and the frame index*, so a frame
//! spliced from a file with a different prelude or different
//! dictionaries — or reordered within this one — fails its checksum
//! even when the frame itself is intact. Decoding is total: [`BinDataset::parse`]
//! validates every frame up front and any malformed input yields a typed
//! [`DecodeError`], never a panic and never silently wrong rows.

use crate::export::DatasetRow;
use crate::framing::{
    check_identity, crc32, put_string_table, read_string_table, rice_best_k, rice_get, rice_put,
    BitReader, BitWriter, Crc32, DecodeError, Prelude, RunIdentity, RICE_MAX,
};
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::COUNTRIES;
use sleepwatch_linktype::LinkFeature;
use sleepwatch_simnet::{WorldConfig, WorldSource};
use sleepwatch_spectral::DiurnalClass;
use std::collections::HashMap;
use std::fmt;

/// Dataset container magic: `SLPWBIN1` as a little-endian u64.
pub const DATASET_MAGIC: u64 = u64::from_le_bytes(*b"SLPWBIN1");
/// Dataset container version this build reads and writes.
pub const DATASET_VERSION: u16 = 1;
/// Prelude `kind` byte for dataset containers.
pub const KIND_DATASET: u8 = 0;
/// Mode byte: every column stored in the file.
pub const MODE_SELF: u8 = 0;
/// Mode byte: seed-derivable columns elided and regenerated at decode.
pub const MODE_SEED_JOINED: u8 = 1;
/// Frame magic: `BFRM` as a little-endian u32.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"BFRM");
/// Rows per frame (the last frame may hold fewer).
pub const MAX_FRAME_ROWS: usize = 4096;
/// Frame header length: magic u32 | count u32 | payload_len u32 | first_id u64.
pub const FRAME_HEADER_LEN: usize = 20;

/// Quantization scale for 6-decimal TSV columns (phase, mean_a, lon, lat).
const SCALE6: f64 = 1e6;

// ---------------------------------------------------------------------------
// Encode errors
// ---------------------------------------------------------------------------

/// Why a row set cannot be encoded into the compact container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Block ids are not strictly increasing at this row index.
    Unsorted {
        /// Row index whose id does not exceed its predecessor's.
        index: usize,
    },
    /// A row field does not fit the container (unknown link keyword,
    /// oversized string, lon/lat on an unlocated row, …).
    Unrepresentable {
        /// Block the row describes.
        block_id: u64,
        /// Field that cannot be stored.
        field: &'static str,
    },
    /// Seed-joined mode was requested but a field is not bit-exactly
    /// derivable from the supplied world configuration.
    NotDerivable {
        /// Block the row describes.
        block_id: u64,
        /// Field whose stored value disagrees with the derived one.
        field: &'static str,
    },
    /// A dictionary outgrew its index space.
    TooMany {
        /// What overflowed.
        what: &'static str,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Unsorted { index } => {
                write!(f, "rows not sorted by block id at index {index}")
            }
            EncodeError::Unrepresentable { block_id, field } => {
                write!(f, "block {block_id}: field {field} cannot be stored")
            }
            EncodeError::NotDerivable { block_id, field } => {
                write!(f, "block {block_id}: field {field} is not derivable from the world seed")
            }
            EncodeError::TooMany { what } => write!(f, "too many distinct {what}"),
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------------------
// Float canonicalization
// ---------------------------------------------------------------------------

/// Rounds `x` to `decimals` fractional digits exactly the way the TSV
/// writer prints it, by formatting and re-parsing. Non-finite values are
/// returned unchanged.
pub fn canon(x: f64, decimals: usize) -> f64 {
    if !x.is_finite() {
        return x;
    }
    format!("{x:.decimals$}").parse().unwrap_or(x)
}

/// `x` as an integer multiple of `1/scale`, if the roundtrip
/// `n / scale` reproduces `x` bit-for-bit. `None` means the value needs
/// the raw-bits escape (non-finite, out of range, `-0.0`, or a double
/// that does not survive the quantization).
fn quantize(x: f64, scale: f64) -> Option<i64> {
    if !x.is_finite() {
        return None;
    }
    let n = (x * scale).round();
    if n.abs() > 9.0e15 {
        return None;
    }
    let q = n as i64;
    if (q as f64 / scale).to_bits() == x.to_bits() {
        Some(q)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Column codecs
// ---------------------------------------------------------------------------

/// Writes a quantized-float column: `min i64 | width u7`, then per value
/// either a `0` tag and a width-bit delta, or a `1` tag and the raw 64
/// bits.
fn put_scaled(w: &mut BitWriter, values: &[f64], scale: f64) {
    let qs: Vec<Option<i64>> = values.iter().map(|&x| quantize(x, scale)).collect();
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for &q in qs.iter().flatten() {
        min = min.min(q);
        max = max.max(q);
    }
    let (min, width) = if min > max {
        (0i64, 0u32)
    } else {
        let span = (max - min) as u64;
        (min, u64::BITS - span.leading_zeros())
    };
    w.put(min as u64, 64);
    w.put(width as u64, 7);
    for (&x, &q) in values.iter().zip(&qs) {
        match q {
            Some(q) => {
                w.put_bit(false);
                w.put((q - min) as u64, width);
            }
            None => {
                w.put_bit(true);
                w.put(x.to_bits(), 64);
            }
        }
    }
}

/// Reads `n` values written by [`put_scaled`] into `out`.
fn get_scaled(r: &mut BitReader<'_>, n: usize, scale: f64, out: &mut Vec<f64>) -> Option<()> {
    let min = r.get(64)? as i64;
    let width = r.get(7)? as u32;
    if width > 63 {
        return None;
    }
    for _ in 0..n {
        if r.get_bit()? {
            out.push(f64::from_bits(r.get(64)?));
        } else {
            let q = min.checked_add(r.get(width)? as i64)?;
            out.push(q as f64 / scale);
        }
    }
    Some(())
}

/// Writes a frame-of-reference integer column: `min u64 | width u7`,
/// then width-bit offsets from the minimum.
fn put_for(w: &mut BitWriter, values: &[u64]) {
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let width = u64::BITS - (max - min).leading_zeros();
    w.put(min, 64);
    w.put(width as u64, 7);
    for &v in values {
        w.put(v - min, width);
    }
}

/// Reads `n` values written by [`put_for`] into `out`.
fn get_for(r: &mut BitReader<'_>, n: usize, out: &mut Vec<u64>) -> Option<()> {
    let min = r.get(64)?;
    let width = r.get(7)? as u32;
    if width > 64 {
        return None;
    }
    for _ in 0..n {
        out.push(min.checked_add(r.get(width)?)?);
    }
    Some(())
}

/// Writes a Rice-coded column: the exact-argmin parameter in 5 bits,
/// then every value. Values must be ≤ [`RICE_MAX`].
fn put_rice_col(w: &mut BitWriter, values: &[u64]) {
    debug_assert!(values.iter().all(|&v| v <= RICE_MAX));
    let (k, _) = rice_best_k(values.iter().copied());
    w.put(k as u64, 5);
    for &v in values {
        rice_put(w, v, k);
    }
}

/// Reads `n` values written by [`put_rice_col`] into `out`.
fn get_rice_col(r: &mut BitReader<'_>, n: usize, out: &mut Vec<u64>) -> Option<()> {
    let k = r.get(5)? as u32;
    if k > 24 {
        return None;
    }
    for _ in 0..n {
        out.push(rice_get(r, k)?);
    }
    Some(())
}

// ---------------------------------------------------------------------------
// Link masks and class codes
// ---------------------------------------------------------------------------

/// The keywords a link mask expands to, in [`LinkFeature::ALL`] order.
fn mask_keywords(mask: u16) -> impl Iterator<Item = &'static str> {
    LinkFeature::ALL
        .iter()
        .enumerate()
        .filter(move |(i, _)| mask & (1 << i) != 0)
        .map(|(_, f)| f.keyword())
}

/// Compresses a row's link keywords into a [`LinkFeature::ALL`] bitmask,
/// verifying the mask expands back to exactly the stored list (order and
/// multiplicity included) so decode reproduces the TSV byte-for-byte.
fn link_mask(row: &DatasetRow) -> Result<u16, EncodeError> {
    let err = EncodeError::Unrepresentable { block_id: row.block_id, field: "links" };
    let mut mask = 0u16;
    for kw in &row.links {
        let pos =
            LinkFeature::ALL.iter().position(|f| f.keyword() == kw).ok_or_else(|| err.clone())?;
        mask |= 1 << pos;
    }
    let echoes = mask_keywords(mask).eq(row.links.iter().map(|s| s.as_str()));
    if echoes {
        Ok(mask)
    } else {
        Err(err)
    }
}

fn class_code(c: DiurnalClass) -> u64 {
    match c {
        DiurnalClass::Strict => 0,
        DiurnalClass::Relaxed => 1,
        DiurnalClass::NonDiurnal => 2,
    }
}

fn class_from_code(code: u64) -> Option<DiurnalClass> {
    match code {
        0 => Some(DiurnalClass::Strict),
        1 => Some(DiurnalClass::Relaxed),
        2 => Some(DiurnalClass::NonDiurnal),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// How a dataset is encoded: with every column stored, or with the
/// seed-derivable columns elided against a world configuration.
#[derive(Debug, Clone, Copy)]
pub enum DatasetMode<'w> {
    /// Store every column; the file decodes with no outside context.
    SelfContained,
    /// Elide lon/lat/country/centroid/alloc/asn and re-derive them at
    /// decode from this world configuration. The encoder verifies every
    /// elided value is bit-exactly derivable first.
    SeedJoined(&'w WorldConfig),
}

/// The run identity a dataset written against `cfg` carries (rounds is
/// not a dataset property and is pinned to zero).
pub fn dataset_identity(cfg: &WorldConfig) -> RunIdentity {
    RunIdentity {
        world_seed: cfg.seed,
        num_blocks: cfg.num_blocks as u64,
        rounds: 0,
        start_time: cfg.start_time,
    }
}

/// What the seed derives for one block: the TSV-canonicalized location
/// columns plus registry data.
struct Derived {
    location: Option<(f64, f64, &'static str, bool)>,
    alloc: YearMonth,
    asn: u32,
}

fn derive(source: &WorldSource, id: u64) -> Derived {
    let spec = source.generate_block(id);
    let country = &COUNTRIES[spec.country_idx];
    let location = source
        .geodb()
        .locate(id, country, spec.lon, spec.lat)
        .map(|l| (canon(l.lon, 6), canon(l.lat, 6), l.country, l.centroid_fallback));
    Derived { location, alloc: spec.alloc_date, asn: spec.asn }
}

/// Checks that every elided column of `row` is bit-exactly reproduced by
/// [`derive`], so seed-joined decode cannot silently differ from the row
/// that was encoded.
fn verify_derivable(source: &WorldSource, row: &DatasetRow) -> Result<(), EncodeError> {
    let fail = |field| EncodeError::NotDerivable { block_id: row.block_id, field };
    if row.block_id >= source.cfg().num_blocks as u64 {
        return Err(fail("block_id"));
    }
    let d = derive(source, row.block_id);
    match (&d.location, &row.country) {
        (Some((lon, lat, country, centroid)), Some(row_country)) => {
            if row_country != country {
                return Err(fail("country"));
            }
            if row.lon.map(f64::to_bits) != Some(lon.to_bits()) {
                return Err(fail("lon"));
            }
            if row.lat.map(f64::to_bits) != Some(lat.to_bits()) {
                return Err(fail("lat"));
            }
            if row.centroid != *centroid {
                return Err(fail("centroid"));
            }
        }
        (None, None) => {}
        _ => return Err(fail("country")),
    }
    if row.alloc != d.alloc.to_string() {
        return Err(fail("alloc"));
    }
    if row.asn != d.asn {
        return Err(fail("asn"));
    }
    Ok(())
}

/// Distinct values sorted by descending frequency (ascending value as
/// the tiebreak, for deterministic output), with an index map back.
fn freq_sorted<T: Ord + std::hash::Hash + Copy>(
    counts: &HashMap<T, u64>,
) -> (Vec<T>, HashMap<T, u64>) {
    let mut entries: Vec<(T, u64)> = counts.iter().map(|(&k, &c)| (k, c)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let values: Vec<T> = entries.into_iter().map(|(k, _)| k).collect();
    let index = values.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
    (values, index)
}

/// String-dictionary variant of [`freq_sorted`].
fn freq_sorted_str<'a>(counts: &HashMap<&'a str, u64>) -> (Vec<&'a str>, HashMap<&'a str, u64>) {
    let mut entries: Vec<(&str, u64)> = counts.iter().map(|(&k, &c)| (k, c)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let values: Vec<&str> = entries.into_iter().map(|(k, _)| k).collect();
    let index = values.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect();
    (values, index)
}

/// Encodes `rows` (strictly increasing by block id) into a compact
/// binary dataset. Self-contained files carry [`RunIdentity::default`];
/// seed-joined files carry [`dataset_identity`] of their configuration.
pub fn encode_dataset(rows: &[DatasetRow], mode: DatasetMode<'_>) -> Result<Vec<u8>, EncodeError> {
    for (i, pair) in rows.windows(2).enumerate() {
        if pair[1].block_id <= pair[0].block_id {
            return Err(EncodeError::Unsorted { index: i + 1 });
        }
    }
    for row in rows {
        let located = row.country.is_some();
        let coherent = if located {
            row.lon.is_some() && row.lat.is_some()
        } else {
            row.lon.is_none() && row.lat.is_none() && !row.centroid
        };
        if !coherent {
            return Err(EncodeError::Unrepresentable { block_id: row.block_id, field: "location" });
        }
        let long = |s: &str| s.len() > u8::MAX as usize;
        if row.country.as_deref().is_some_and(long) {
            return Err(EncodeError::Unrepresentable { block_id: row.block_id, field: "country" });
        }
        if long(&row.alloc) {
            return Err(EncodeError::Unrepresentable { block_id: row.block_id, field: "alloc" });
        }
    }
    let masks: Vec<u16> = rows.iter().map(link_mask).collect::<Result<_, _>>()?;

    let (mode_byte, identity) = match mode {
        DatasetMode::SelfContained => (MODE_SELF, RunIdentity::default()),
        DatasetMode::SeedJoined(cfg) => {
            let source = WorldSource::new(cfg.clone());
            for row in rows {
                verify_derivable(&source, row)?;
            }
            (MODE_SEED_JOINED, dataset_identity(cfg))
        }
    };

    // Global dictionaries, frequency-sorted for cheap Rice indices.
    let mut mask_counts: HashMap<u16, u64> = HashMap::new();
    let mut cpd_counts: HashMap<u64, u64> = HashMap::new();
    let mut country_counts: HashMap<&str, u64> = HashMap::new();
    let mut alloc_counts: HashMap<&str, u64> = HashMap::new();
    for (row, &mask) in rows.iter().zip(&masks) {
        *mask_counts.entry(mask).or_insert(0) += 1;
        *cpd_counts.entry(row.strongest_cpd.to_bits()).or_insert(0) += 1;
        if mode_byte == MODE_SELF {
            if let Some(c) = row.country.as_deref() {
                *country_counts.entry(c).or_insert(0) += 1;
            }
            *alloc_counts.entry(row.alloc.as_str()).or_insert(0) += 1;
        }
    }
    let (mask_dict, mask_idx) = freq_sorted(&mask_counts);
    let (cpd_dict, cpd_idx) = freq_sorted(&cpd_counts);
    let (country_dict, country_idx) = freq_sorted_str(&country_counts);
    let (alloc_dict, alloc_idx) = freq_sorted_str(&alloc_counts);
    if country_dict.len() > u16::MAX as usize {
        return Err(EncodeError::TooMany { what: "countries" });
    }
    if alloc_dict.len() > u16::MAX as usize {
        return Err(EncodeError::TooMany { what: "allocation dates" });
    }
    if cpd_dict.len() > u32::MAX as usize {
        return Err(EncodeError::TooMany { what: "cpd values" });
    }

    let prelude = Prelude {
        magic: DATASET_MAGIC,
        version: DATASET_VERSION,
        kind: KIND_DATASET,
        mode: mode_byte,
        identity,
        record_count: rows.len() as u64,
    };
    let header_crc = prelude.header_crc();
    let mut out = prelude.encode().to_vec();

    // Dictionary section: `len u32 | payload | crc32`.
    let mut dict = Vec::new();
    put_string_table(&mut dict, country_dict.iter().copied());
    put_string_table(&mut dict, alloc_dict.iter().copied());
    put_string_table(&mut dict, LinkFeature::ALL.iter().map(|f| f.keyword()));
    dict.extend_from_slice(&(mask_dict.len() as u32).to_le_bytes());
    for &m in &mask_dict {
        dict.extend_from_slice(&m.to_le_bytes());
    }
    dict.extend_from_slice(&(cpd_dict.len() as u32).to_le_bytes());
    for &c in &cpd_dict {
        dict.extend_from_slice(&c.to_le_bytes());
    }
    let dict_crc = crc32(&dict);
    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    out.extend_from_slice(&dict_crc.to_le_bytes());
    out.extend_from_slice(&dict);

    // Frames.
    let mut frame_count = 0u64;
    for (frame_index, chunk) in rows.chunks(MAX_FRAME_ROWS).enumerate() {
        let lo = frame_index * MAX_FRAME_ROWS;
        let chunk_masks = &masks[lo..lo + chunk.len()];
        let mut w = BitWriter::new();

        let gaps: Vec<u64> = chunk.windows(2).map(|p| p[1].block_id - p[0].block_id - 1).collect();
        let width = gaps.iter().copied().max().map_or(0, |m| u64::BITS - m.leading_zeros());
        w.put(width as u64, 7);
        for &g in &gaps {
            w.put(g, width);
        }
        for row in chunk {
            w.put(class_code(row.class), 2);
            w.put_bit(row.stationary);
            w.put_bit(row.phase.is_some());
        }
        let col: Vec<f64> = chunk.iter().map(|r| r.mean_a).collect();
        put_scaled(&mut w, &col, SCALE6);
        let col: Vec<u64> = chunk.iter().map(|r| cpd_idx[&r.strongest_cpd.to_bits()]).collect();
        put_rice_col(&mut w, &col);
        let col: Vec<u64> = chunk.iter().map(|r| r.outages as u64).collect();
        put_rice_col(&mut w, &col);
        let col: Vec<u64> = chunk.iter().map(|r| r.probes).collect();
        put_for(&mut w, &col);
        let col: Vec<u64> = chunk_masks.iter().map(|m| mask_idx[m]).collect();
        put_rice_col(&mut w, &col);
        let col: Vec<f64> = chunk.iter().filter_map(|r| r.phase).collect();
        put_scaled(&mut w, &col, SCALE6);
        // The located flag is stored in both modes: it lets a seed-joined
        // reader aggregate [`DatasetStats`] without regenerating a single
        // block. One bit per row; derivability is still verified above.
        for row in chunk {
            w.put_bit(row.country.is_some());
        }

        if mode_byte == MODE_SELF {
            let located: Vec<&DatasetRow> = chunk.iter().filter(|r| r.country.is_some()).collect();
            for row in &located {
                w.put_bit(row.centroid);
            }
            let col: Vec<f64> = located.iter().map(|r| r.lon.expect("checked located")).collect();
            put_scaled(&mut w, &col, SCALE6);
            let col: Vec<f64> = located.iter().map(|r| r.lat.expect("checked located")).collect();
            put_scaled(&mut w, &col, SCALE6);
            let col: Vec<u64> = located
                .iter()
                .map(|r| country_idx[r.country.as_deref().expect("checked located")])
                .collect();
            put_rice_col(&mut w, &col);
            let col: Vec<u64> = chunk.iter().map(|r| alloc_idx[r.alloc.as_str()]).collect();
            put_rice_col(&mut w, &col);
            let col: Vec<u64> = chunk.iter().map(|r| r.asn as u64).collect();
            put_for(&mut w, &col);
        }

        let payload = w.into_bytes();
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[12..20].copy_from_slice(&chunk[0].block_id.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&header_crc.to_le_bytes());
        crc.update(&dict_crc.to_le_bytes());
        crc.update(&(frame_index as u64).to_le_bytes());
        crc.update(&header);
        crc.update(&payload);
        out.extend_from_slice(&header);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        frame_count += 1;
    }

    let obs = sleepwatch_obs::global();
    obs.format.datasets_encoded.incr();
    obs.format.bytes_encoded.add(out.len() as u64);
    obs.format.records_encoded.add(rows.len() as u64);
    obs.format.frames_encoded.add(frame_count);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// One decoded row, borrowing its strings from the file (or the static
/// tables, in seed-joined mode) — nothing is copied until
/// [`BinRow::to_row`].
#[derive(Debug, Clone, PartialEq)]
pub struct BinRow<'a> {
    /// Block id.
    pub block_id: u64,
    /// Measured diurnal class.
    pub class: DiurnalClass,
    /// Phase of the daily component (diurnal blocks only).
    pub phase: Option<f64>,
    /// Mean `Âs`.
    pub mean_a: f64,
    /// Strongest spectral component, cycles/day.
    pub strongest_cpd: f64,
    /// Stationarity screen result.
    pub stationary: bool,
    /// Outages detected.
    pub outages: u32,
    /// Probes spent.
    pub probes: u64,
    /// Geolocated longitude (if located).
    pub lon: Option<f64>,
    /// Geolocated latitude.
    pub lat: Option<f64>,
    /// Country code, borrowed (if located).
    pub country: Option<&'a str>,
    /// Country-centroid fallback flag.
    pub centroid: bool,
    /// /8 allocation date.
    pub alloc: AllocDate<'a>,
    /// Origin AS.
    pub asn: u32,
    /// Kept link features as a [`LinkFeature::ALL`] bitmask.
    pub link_mask: u16,
}

/// An allocation date as the container holds it: borrowed text
/// (self-contained files) or a parsed year-month (seed-joined files).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocDate<'a> {
    /// Verbatim `YYYY-MM` text from the file's dictionary.
    Text(&'a str),
    /// Derived from the world seed.
    Date(YearMonth),
}

impl fmt::Display for AllocDate<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocDate::Text(s) => f.write_str(s),
            AllocDate::Date(ym) => write!(f, "{ym}"),
        }
    }
}

impl BinRow<'_> {
    /// The row's link keywords, in [`LinkFeature::ALL`] order.
    pub fn links(&self) -> impl Iterator<Item = &'static str> {
        mask_keywords(self.link_mask)
    }

    /// Materializes an owned [`DatasetRow`].
    pub fn to_row(&self) -> DatasetRow {
        DatasetRow {
            block_id: self.block_id,
            class: self.class,
            phase: self.phase,
            mean_a: self.mean_a,
            strongest_cpd: self.strongest_cpd,
            stationary: self.stationary,
            outages: self.outages,
            probes: self.probes,
            lon: self.lon,
            lat: self.lat,
            country: self.country.map(str::to_owned),
            centroid: self.centroid,
            alloc: self.alloc.to_string(),
            asn: self.asn,
            links: self.links().map(str::to_owned).collect(),
        }
    }
}

/// The file's dictionaries, borrowed from the mapped bytes.
struct Dicts<'a> {
    countries: Vec<&'a str>,
    allocs: Vec<&'a str>,
    masks: Vec<u16>,
    cpds: Vec<f64>,
}

/// Location and byte range of one validated frame.
struct FrameMeta {
    count: usize,
    first_id: u64,
    payload: std::ops::Range<usize>,
}

/// Per-frame decoded columns, reused across frames so steady-state
/// decoding allocates nothing.
#[derive(Default)]
struct FrameScratch {
    ids: Vec<u64>,
    class: Vec<DiurnalClass>,
    stationary: Vec<bool>,
    has_phase: Vec<bool>,
    mean_a: Vec<f64>,
    cpd: Vec<f64>,
    outages: Vec<u64>,
    probes: Vec<u64>,
    masks: Vec<u16>,
    phase: Vec<f64>,
    located: Vec<bool>,
    centroid: Vec<bool>,
    lon: Vec<f64>,
    lat: Vec<f64>,
    country: Vec<u64>,
    alloc: Vec<u64>,
    asn: Vec<u64>,
    /// Staging buffer for dictionary-index columns before remapping.
    idx: Vec<u64>,
}

impl FrameScratch {
    fn clear(&mut self) {
        let FrameScratch {
            ids,
            class,
            stationary,
            has_phase,
            mean_a,
            cpd,
            outages,
            probes,
            masks,
            phase,
            located,
            centroid,
            lon,
            lat,
            country,
            alloc,
            asn,
            idx,
        } = self;
        ids.clear();
        class.clear();
        stationary.clear();
        has_phase.clear();
        mean_a.clear();
        cpd.clear();
        outages.clear();
        probes.clear();
        masks.clear();
        phase.clear();
        located.clear();
        centroid.clear();
        lon.clear();
        lat.clear();
        country.clear();
        alloc.clear();
        asn.clear();
        idx.clear();
    }
}

/// A parsed, fully validated compact dataset over a borrowed byte slice
/// (e.g. a memory map). Construction decodes every frame once — after
/// [`parse`](BinDataset::parse) succeeds, the whole file is known good
/// and the row accessors cannot fail structurally.
pub struct BinDataset<'a> {
    bytes: &'a [u8],
    prelude: Prelude,
    dicts: Dicts<'a>,
    source: Option<WorldSource>,
    frames: Vec<FrameMeta>,
    stats: DatasetStats,
}

impl fmt::Debug for BinDataset<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinDataset")
            .field("mode", &self.prelude.mode)
            .field("records", &self.prelude.record_count)
            .field("frames", &self.frames.len())
            .finish()
    }
}

/// Parses the prelude, mode and dictionary section, returning the byte
/// offset where frames start.
fn parse_shell<'a>(
    bytes: &'a [u8],
    world: Option<&WorldConfig>,
) -> Result<(Prelude, Dicts<'a>, Option<WorldSource>, u32, usize), DecodeError> {
    let prelude = Prelude::decode(bytes)?;
    prelude.require(DATASET_MAGIC, DATASET_VERSION, KIND_DATASET)?;
    let source = match prelude.mode {
        MODE_SELF => None,
        MODE_SEED_JOINED => {
            let cfg = world.ok_or(DecodeError::WorldRequired)?;
            check_identity(&dataset_identity(cfg), &prelude.identity)?;
            Some(WorldSource::new(cfg.clone()))
        }
        other => return Err(DecodeError::BadMode { found: other }),
    };
    let corrupt = |detail| DecodeError::DictCorrupt { detail };
    let need = |n: usize| {
        if bytes.len() < n {
            Err(DecodeError::Truncated { need: n, have: bytes.len() })
        } else {
            Ok(())
        }
    };
    need(crate::framing::PRELUDE_LEN + 8)?;
    let mut pos = crate::framing::PRELUDE_LEN;
    let le_u32 = |pos: usize| {
        u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
    };
    let dict_len = le_u32(pos) as usize;
    let dict_crc = le_u32(pos + 4);
    pos += 8;
    need(pos + dict_len)?;
    let dict_bytes = &bytes[pos..pos + dict_len];
    if crc32(dict_bytes) != dict_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let frames_at = pos + dict_len;
    let mut dpos = 0usize;
    let countries = read_string_table(dict_bytes, &mut dpos)?;
    let allocs = read_string_table(dict_bytes, &mut dpos)?;
    let link_table = read_string_table(dict_bytes, &mut dpos)?;
    if !link_table.iter().copied().eq(LinkFeature::ALL.iter().map(|f| f.keyword())) {
        return Err(DecodeError::DictMismatch { table: "link" });
    }
    if prelude.mode == MODE_SEED_JOINED && (!countries.is_empty() || !allocs.is_empty()) {
        return Err(corrupt("seed-joined file carries stored-column tables"));
    }
    let take = |dpos: &mut usize, n: usize| -> Result<&'a [u8], DecodeError> {
        let end = dpos.checked_add(n).ok_or(corrupt("length overflow"))?;
        let slice = dict_bytes.get(*dpos..end).ok_or(corrupt("dictionary truncated"))?;
        *dpos = end;
        Ok(slice)
    };
    let n = take(&mut dpos, 4)?;
    let mask_count = u32::from_le_bytes([n[0], n[1], n[2], n[3]]) as usize;
    let mut masks = Vec::with_capacity(mask_count.min(1 << 16));
    for _ in 0..mask_count {
        let b = take(&mut dpos, 2)?;
        masks.push(u16::from_le_bytes([b[0], b[1]]));
    }
    let n = take(&mut dpos, 4)?;
    let cpd_count = u32::from_le_bytes([n[0], n[1], n[2], n[3]]) as usize;
    let mut cpds = Vec::with_capacity(cpd_count.min(1 << 16));
    for _ in 0..cpd_count {
        let b = take(&mut dpos, 8)?;
        cpds.push(f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])));
    }
    if dpos != dict_len {
        return Err(corrupt("trailing dictionary bytes"));
    }
    Ok((prelude, Dicts { countries, allocs, masks, cpds }, source, dict_crc, frames_at))
}

/// Validates the header and checksum of the frame at `pos`, returning
/// `(count, first_id, payload_range, next_pos)`.
fn frame_at(
    bytes: &[u8],
    header_crc: u32,
    dict_crc: u32,
    record_count: u64,
    decoded: u64,
    frame_index: usize,
    pos: usize,
) -> Result<(usize, u64, std::ops::Range<usize>, usize), DecodeError> {
    let torn = DecodeError::TornTail { valid_records: decoded, expected_records: record_count };
    let frame = |detail| DecodeError::FrameCorrupt { frame: frame_index, detail };
    if bytes.len() - pos < FRAME_HEADER_LEN + 4 {
        return Err(torn);
    }
    let header = &bytes[pos..pos + FRAME_HEADER_LEN];
    let le_u32 =
        |o: usize| u32::from_le_bytes([header[o], header[o + 1], header[o + 2], header[o + 3]]);
    if le_u32(0) != FRAME_MAGIC {
        return Err(frame("bad frame magic"));
    }
    let count = le_u32(4) as usize;
    if count == 0 || count > MAX_FRAME_ROWS {
        return Err(frame("row count out of range"));
    }
    if decoded + count as u64 > record_count {
        return Err(frame("record count overflow"));
    }
    let payload_len = le_u32(8) as usize;
    let first_id = u64::from_le_bytes(header[12..20].try_into().expect("20-byte header"));
    let end = pos + FRAME_HEADER_LEN + payload_len + 4;
    if end > bytes.len() {
        return Err(torn);
    }
    let payload = pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + payload_len;
    let mut crc = Crc32::new();
    crc.update(&header_crc.to_le_bytes());
    crc.update(&dict_crc.to_le_bytes());
    crc.update(&(frame_index as u64).to_le_bytes());
    crc.update(header);
    crc.update(&bytes[payload.clone()]);
    let stored = u32::from_le_bytes(bytes[end - 4..end].try_into().expect("bounds checked"));
    if crc.finish() != stored {
        return Err(frame("checksum mismatch"));
    }
    Ok((count, first_id, payload, end))
}

/// Bit-decodes one frame's columns into `s`, validating every field.
/// `prev_last` is the last block id of the previous frame, enforcing
/// file-wide id monotonicity.
#[allow(clippy::too_many_arguments)]
fn decode_frame(
    dicts: &Dicts<'_>,
    seed_joined: bool,
    num_blocks: u64,
    frame_index: usize,
    count: usize,
    first_id: u64,
    payload: &[u8],
    prev_last: Option<u64>,
    s: &mut FrameScratch,
) -> Result<(), DecodeError> {
    let frame = |detail| DecodeError::FrameCorrupt { frame: frame_index, detail };
    s.clear();
    let mut r = BitReader::new(payload);

    let width = r.get(7).ok_or(frame("ids truncated"))? as u32;
    if width > 64 {
        return Err(frame("gap width out of range"));
    }
    let mut id = first_id;
    if prev_last.is_some_and(|last| first_id <= last) {
        return Err(frame("block ids not increasing across frames"));
    }
    s.ids.push(id);
    for _ in 1..count {
        let gap = r.get(width).ok_or(frame("ids truncated"))?;
        id =
            gap.checked_add(1).and_then(|g| id.checked_add(g)).ok_or(frame("block id overflow"))?;
        s.ids.push(id);
    }
    if seed_joined && id >= num_blocks {
        return Err(frame("block id outside the world"));
    }
    for _ in 0..count {
        let code = r.get(2).ok_or(frame("flags truncated"))?;
        s.class.push(class_from_code(code).ok_or(frame("bad class code"))?);
        s.stationary.push(r.get_bit().ok_or(frame("flags truncated"))?);
        s.has_phase.push(r.get_bit().ok_or(frame("flags truncated"))?);
    }
    get_scaled(&mut r, count, SCALE6, &mut s.mean_a).ok_or(frame("mean_a column damaged"))?;
    get_rice_col(&mut r, count, &mut s.idx).ok_or(frame("cpd column damaged"))?;
    for &idx in &s.idx {
        let v = *dicts.cpds.get(idx as usize).ok_or(frame("cpd index out of range"))?;
        s.cpd.push(v);
    }
    get_rice_col(&mut r, count, &mut s.outages).ok_or(frame("outage column damaged"))?;
    for &o in &s.outages {
        if o > u32::MAX as u64 {
            return Err(frame("outage count out of range"));
        }
    }
    get_for(&mut r, count, &mut s.probes).ok_or(frame("probe column damaged"))?;
    s.idx.clear();
    get_rice_col(&mut r, count, &mut s.idx).ok_or(frame("link column damaged"))?;
    for &idx in &s.idx {
        let m = *dicts.masks.get(idx as usize).ok_or(frame("link index out of range"))?;
        s.masks.push(m);
    }
    let phases = s.has_phase.iter().filter(|&&p| p).count();
    get_scaled(&mut r, phases, SCALE6, &mut s.phase).ok_or(frame("phase column damaged"))?;
    for _ in 0..count {
        s.located.push(r.get_bit().ok_or(frame("located column damaged"))?);
    }

    if !seed_joined {
        let located = s.located.iter().filter(|&&l| l).count();
        for _ in 0..located {
            s.centroid.push(r.get_bit().ok_or(frame("centroid column damaged"))?);
        }
        get_scaled(&mut r, located, SCALE6, &mut s.lon).ok_or(frame("lon column damaged"))?;
        get_scaled(&mut r, located, SCALE6, &mut s.lat).ok_or(frame("lat column damaged"))?;
        get_rice_col(&mut r, located, &mut s.country).ok_or(frame("country column damaged"))?;
        for &idx in &s.country {
            if idx as usize >= dicts.countries.len() {
                return Err(frame("country index out of range"));
            }
        }
        get_rice_col(&mut r, count, &mut s.alloc).ok_or(frame("alloc column damaged"))?;
        for &idx in &s.alloc {
            if idx as usize >= dicts.allocs.len() {
                return Err(frame("alloc index out of range"));
            }
        }
        get_for(&mut r, count, &mut s.asn).ok_or(frame("asn column damaged"))?;
        for &a in &s.asn {
            if a > u32::MAX as u64 {
                return Err(frame("asn out of range"));
            }
        }
    }
    if r.bytes_consumed() != payload.len() {
        return Err(frame("payload length mismatch"));
    }
    Ok(())
}

/// Emits every row of the decoded frame in `s` to `f`.
fn emit_rows<'a>(
    dicts: &Dicts<'a>,
    source: Option<&WorldSource>,
    s: &FrameScratch,
    f: &mut impl FnMut(&BinRow<'_>),
) {
    let mut phase_i = 0usize;
    let mut loc_i = 0usize;
    for i in 0..s.ids.len() {
        let phase = if s.has_phase[i] {
            phase_i += 1;
            Some(s.phase[phase_i - 1])
        } else {
            None
        };
        let row = if let Some(source) = source {
            let d = derive(source, s.ids[i]);
            let (lon, lat, country, centroid) = match d.location {
                Some((lon, lat, country, centroid)) => {
                    (Some(lon), Some(lat), Some(country), centroid)
                }
                None => (None, None, None, false),
            };
            BinRow {
                block_id: s.ids[i],
                class: s.class[i],
                phase,
                mean_a: s.mean_a[i],
                strongest_cpd: s.cpd[i],
                stationary: s.stationary[i],
                outages: s.outages[i] as u32,
                probes: s.probes[i],
                lon,
                lat,
                country,
                centroid,
                alloc: AllocDate::Date(d.alloc),
                asn: d.asn,
                link_mask: s.masks[i],
            }
        } else {
            let located = s.located[i];
            let (lon, lat, country, centroid) = if located {
                loc_i += 1;
                let j = loc_i - 1;
                (
                    Some(s.lon[j]),
                    Some(s.lat[j]),
                    Some(dicts.countries[s.country[j] as usize]),
                    s.centroid[j],
                )
            } else {
                (None, None, None, false)
            };
            BinRow {
                block_id: s.ids[i],
                class: s.class[i],
                phase,
                mean_a: s.mean_a[i],
                strongest_cpd: s.cpd[i],
                stationary: s.stationary[i],
                outages: s.outages[i] as u32,
                probes: s.probes[i],
                lon,
                lat,
                country,
                centroid,
                alloc: AllocDate::Text(dicts.allocs[s.alloc[i] as usize]),
                asn: s.asn[i] as u32,
                link_mask: s.masks[i],
            }
        };
        f(&row);
    }
}

impl<'a> BinDataset<'a> {
    /// Parses and *fully validates* `bytes`: prelude, dictionary section
    /// and every frame (checksums, column shapes, id monotonicity, bit
    /// counts, declared record count). Seed-joined files additionally
    /// require `world`, whose identity must match the file's.
    pub fn parse(bytes: &'a [u8], world: Option<&WorldConfig>) -> Result<Self, DecodeError> {
        let r = Self::parse_inner(bytes, world);
        let obs = sleepwatch_obs::global();
        match &r {
            Ok(ds) => {
                obs.format.datasets_decoded.incr();
                obs.format.records_decoded.add(ds.prelude.record_count);
            }
            Err(_) => obs.format.decode_errors.incr(),
        }
        r
    }

    fn parse_inner(bytes: &'a [u8], world: Option<&WorldConfig>) -> Result<Self, DecodeError> {
        let (prelude, dicts, source, dict_crc, mut pos) = parse_shell(bytes, world)?;
        let header_crc = prelude.header_crc();
        let mut frames = Vec::new();
        let mut decoded = 0u64;
        let mut prev_last: Option<u64> = None;
        let mut scratch = FrameScratch::default();
        let mut stats = DatasetStats::default();
        while decoded < prelude.record_count {
            let idx = frames.len();
            let (count, first_id, payload, next) =
                frame_at(bytes, header_crc, dict_crc, prelude.record_count, decoded, idx, pos)?;
            decode_frame(
                &dicts,
                source.is_some(),
                prelude.identity.num_blocks,
                idx,
                count,
                first_id,
                &bytes[payload.clone()],
                prev_last,
                &mut scratch,
            )?;
            prev_last = scratch.ids.last().copied();
            // The validation pass already decoded every column this
            // aggregate needs, so the stats ride along for free.
            for i in 0..count {
                stats.accumulate(
                    scratch.class[i],
                    scratch.located[i],
                    scratch.outages[i] as u32,
                    scratch.probes[i],
                    scratch.mean_a[i],
                );
            }
            frames.push(FrameMeta { count, first_id, payload });
            decoded += count as u64;
            pos = next;
        }
        if pos != bytes.len() {
            return Err(DecodeError::FrameCorrupt {
                frame: frames.len(),
                detail: "trailing bytes after final frame",
            });
        }
        Ok(BinDataset { bytes, prelude, dicts, source, frames, stats })
    }

    /// Rows the file declares (and parse verified).
    pub fn record_count(&self) -> u64 {
        self.prelude.record_count
    }

    /// The run identity the file carries.
    pub fn identity(&self) -> RunIdentity {
        self.prelude.identity
    }

    /// The container mode byte ([`MODE_SELF`] or [`MODE_SEED_JOINED`]).
    pub fn mode(&self) -> u8 {
        self.prelude.mode
    }

    /// Checks the file against a caller-expected run identity.
    pub fn expect_identity(&self, expected: &RunIdentity) -> Result<(), DecodeError> {
        check_identity(expected, &self.prelude.identity)
    }

    /// Streams every row to `f` in block-id order, reusing one frame of
    /// scratch for the whole pass — no per-row allocation, strings
    /// borrowed from the file. Structural errors cannot occur after
    /// [`parse`](BinDataset::parse), but the signature keeps them typed.
    pub fn for_each_row(&self, mut f: impl FnMut(&BinRow<'_>)) -> Result<(), DecodeError> {
        let mut scratch = FrameScratch::default();
        let mut prev_last: Option<u64> = None;
        for (idx, meta) in self.frames.iter().enumerate() {
            decode_frame(
                &self.dicts,
                self.source.is_some(),
                self.prelude.identity.num_blocks,
                idx,
                meta.count,
                meta.first_id,
                &self.bytes[meta.payload.clone()],
                prev_last,
                &mut scratch,
            )?;
            prev_last = scratch.ids.last().copied();
            emit_rows(&self.dicts, self.source.as_ref(), &scratch, &mut f);
        }
        Ok(())
    }

    /// Materializes every row as an owned [`DatasetRow`].
    pub fn to_rows(&self) -> Result<Vec<DatasetRow>, DecodeError> {
        let mut rows = Vec::with_capacity(self.prelude.record_count as usize);
        self.for_each_row(|r| rows.push(r.to_row()))?;
        Ok(rows)
    }
}

/// Parses and fully decodes a compact dataset into owned rows.
pub fn decode_dataset(
    bytes: &[u8],
    world: Option<&WorldConfig>,
) -> Result<Vec<DatasetRow>, DecodeError> {
    BinDataset::parse(bytes, world)?.to_rows()
}

/// Best-effort decode of a possibly damaged file: every intact leading
/// frame is returned, together with the error that stopped the walk (or
/// `None` for a clean file). A damaged prelude or dictionary yields no
/// rows — nothing after them can be trusted.
pub fn decode_prefix(
    bytes: &[u8],
    world: Option<&WorldConfig>,
) -> (Vec<DatasetRow>, Option<DecodeError>) {
    let (prelude, dicts, source, dict_crc, mut pos) = match parse_shell(bytes, world) {
        Ok(shell) => shell,
        Err(e) => {
            sleepwatch_obs::global().format.decode_errors.incr();
            return (Vec::new(), Some(e));
        }
    };
    let header_crc = prelude.header_crc();
    let mut rows = Vec::new();
    let mut decoded = 0u64;
    let mut prev_last: Option<u64> = None;
    let mut scratch = FrameScratch::default();
    let mut idx = 0usize;
    while decoded < prelude.record_count {
        let step = frame_at(bytes, header_crc, dict_crc, prelude.record_count, decoded, idx, pos)
            .and_then(|(count, first_id, payload, next)| {
                decode_frame(
                    &dicts,
                    source.is_some(),
                    prelude.identity.num_blocks,
                    idx,
                    count,
                    first_id,
                    &bytes[payload],
                    prev_last,
                    &mut scratch,
                )?;
                Ok((count, next))
            });
        match step {
            Ok((count, next)) => {
                prev_last = scratch.ids.last().copied();
                emit_rows(&dicts, source.as_ref(), &scratch, &mut |r| rows.push(r.to_row()));
                decoded += count as u64;
                pos = next;
                idx += 1;
            }
            Err(e) => {
                sleepwatch_obs::global().format.decode_errors.incr();
                return (rows, Some(e));
            }
        }
    }
    if pos != bytes.len() {
        sleepwatch_obs::global().format.decode_errors.incr();
        let e =
            DecodeError::FrameCorrupt { frame: idx, detail: "trailing bytes after final frame" };
        return (rows, Some(e));
    }
    (rows, None)
}

// ---------------------------------------------------------------------------
// Streaming aggregation
// ---------------------------------------------------------------------------

/// A small aggregate computed in one pass over a dataset — the
/// decode-to-analysis workload the format bench gates on, and a cheap
/// cross-check that two read paths saw identical rows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DatasetStats {
    /// Rows aggregated.
    pub rows: u64,
    /// Strictly diurnal rows.
    pub strict: u64,
    /// Relaxed-diurnal rows.
    pub relaxed: u64,
    /// Rows with a geolocation.
    pub located: u64,
    /// Total outages.
    pub outages: u64,
    /// Total probes.
    pub total_probes: u64,
    /// Sum of mean `Âs` (summed in row order, so bitwise comparable).
    pub mean_a_sum: f64,
}

impl DatasetStats {
    /// Folds one row's fields into the aggregate.
    pub fn accumulate(
        &mut self,
        class: DiurnalClass,
        located: bool,
        outages: u32,
        probes: u64,
        mean_a: f64,
    ) {
        self.rows += 1;
        match class {
            DiurnalClass::Strict => self.strict += 1,
            DiurnalClass::Relaxed => self.relaxed += 1,
            DiurnalClass::NonDiurnal => {}
        }
        self.located += located as u64;
        self.outages += outages as u64;
        self.total_probes += probes;
        self.mean_a_sum += mean_a;
    }

    /// Aggregates owned rows (the TSV read path).
    pub fn from_rows(rows: &[DatasetRow]) -> Self {
        let mut s = Self::default();
        for r in rows {
            s.accumulate(r.class, r.country.is_some(), r.outages, r.probes, r.mean_a);
        }
        s
    }

    /// Aggregates a parsed binary dataset without materializing rows.
    ///
    /// This is free: [`BinDataset::parse`] folds the aggregate while it
    /// validates the frames, and the stored per-row located flag means a
    /// seed-joined file never has to regenerate a block to answer it.
    pub fn from_bin(ds: &BinDataset<'_>) -> Self {
        ds.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{dataset_rows, read_dataset, write_dataset, write_dataset_rows};
    use crate::worldrun::{analyze_world, WorldAnalysis};
    use crate::AnalysisConfig;
    use sleepwatch_simnet::World;

    fn fixture_cfg() -> WorldConfig {
        WorldConfig { num_blocks: 80, seed: 17, span_days: 4.0, ..Default::default() }
    }

    fn analysis() -> WorldAnalysis {
        let world = World::generate(fixture_cfg());
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 2, None)
    }

    fn tsv_of(a: &WorldAnalysis) -> Vec<u8> {
        let mut out = Vec::new();
        write_dataset(&mut out, a).unwrap();
        out
    }

    #[test]
    fn quantize_is_bit_exact_or_none() {
        assert_eq!(quantize(0.123456, SCALE6), Some(123_456));
        assert_eq!(quantize(-41.25, SCALE6), Some(-41_250_000));
        assert_eq!(quantize(0.0, SCALE6), Some(0));
        // -0.0 dequantizes to +0.0 — different bits, must escape.
        assert_eq!(quantize(-0.0, SCALE6), None);
        assert_eq!(quantize(f64::NAN, SCALE6), None);
        assert_eq!(quantize(f64::INFINITY, SCALE6), None);
        assert_eq!(quantize(1.0e17, SCALE6), None);
        // Values printed at 6 decimals always survive quantization.
        for x in [0.1, 1.0 / 3.0, 123.456_789_012, -7.9, 179.999_999_4] {
            let c = canon(x, 6);
            assert!(quantize(c, SCALE6).is_some(), "canon({x}) not quantizable");
        }
    }

    #[test]
    fn scaled_column_roundtrips_with_escapes() {
        let values = [0.5, -0.0, 1.25, f64::NAN, 0.000001, -3.0, f64::INFINITY];
        let mut w = BitWriter::new();
        put_scaled(&mut w, &values, SCALE6);
        let bytes = w.into_bytes();
        let mut out = Vec::new();
        get_scaled(&mut BitReader::new(&bytes), values.len(), SCALE6, &mut out).unwrap();
        for (a, b) in values.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn self_contained_roundtrips_and_matches_tsv() {
        let a = analysis();
        let rows = dataset_rows(&a);
        let bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        let ds = BinDataset::parse(&bin, None).unwrap();
        assert_eq!(ds.mode(), MODE_SELF);
        assert_eq!(ds.record_count(), rows.len() as u64);
        let back = ds.to_rows().unwrap();
        assert_eq!(back, rows);
        // Byte-identical TSV through the binary roundtrip.
        let mut via_bin = Vec::new();
        write_dataset_rows(&mut via_bin, &back).unwrap();
        assert_eq!(via_bin, tsv_of(&a));
        // Deterministic bytes.
        assert_eq!(bin, encode_dataset(&rows, DatasetMode::SelfContained).unwrap());
    }

    #[test]
    fn seed_joined_roundtrips_matches_tsv_and_is_smaller() {
        let a = analysis();
        let cfg = fixture_cfg();
        let rows = dataset_rows(&a);
        let self_bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        let seed_bin = encode_dataset(&rows, DatasetMode::SeedJoined(&cfg)).unwrap();
        assert!(seed_bin.len() < self_bin.len());
        let ds = BinDataset::parse(&seed_bin, Some(&cfg)).unwrap();
        assert_eq!(ds.mode(), MODE_SEED_JOINED);
        assert_eq!(ds.identity(), dataset_identity(&cfg));
        let mut via_bin = Vec::new();
        write_dataset_rows(&mut via_bin, &ds.to_rows().unwrap()).unwrap();
        assert_eq!(via_bin, tsv_of(&a));
        // The TSV the binary reproduces also parses back to the same rows.
        let parsed = read_dataset(&via_bin[..]).unwrap();
        assert_eq!(parsed, rows);
        // Size sanity: far below TSV even at 80 rows.
        assert!(seed_bin.len() * 3 < via_bin.len(), "{} vs {}", seed_bin.len(), via_bin.len());
    }

    #[test]
    fn seed_joined_requires_and_checks_the_world() {
        let cfg = fixture_cfg();
        let rows = dataset_rows(&analysis());
        let bin = encode_dataset(&rows, DatasetMode::SeedJoined(&cfg)).unwrap();
        assert_eq!(BinDataset::parse(&bin, None).err(), Some(DecodeError::WorldRequired));
        let wrong = WorldConfig { seed: 18, ..cfg.clone() };
        assert!(matches!(
            BinDataset::parse(&bin, Some(&wrong)),
            Err(DecodeError::IdentityMismatch {
                field: crate::framing::IdentityField::WorldSeed,
                ..
            })
        ));
        // A self-contained file ignores the config entirely.
        let self_bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        assert!(BinDataset::parse(&self_bin, Some(&wrong)).is_ok());
    }

    #[test]
    fn seed_joined_rejects_non_derivable_rows() {
        let cfg = fixture_cfg();
        let mut rows = dataset_rows(&analysis());
        rows[3].asn ^= 1;
        assert!(matches!(
            encode_dataset(&rows, DatasetMode::SeedJoined(&cfg)),
            Err(EncodeError::NotDerivable { field: "asn", .. })
        ));
    }

    #[test]
    fn encode_rejects_malformed_rows() {
        let rows = dataset_rows(&analysis());
        let mut unsorted = rows.clone();
        unsorted.swap(0, 1);
        assert!(matches!(
            encode_dataset(&unsorted, DatasetMode::SelfContained),
            Err(EncodeError::Unsorted { index: 1 })
        ));
        let mut bad_links = rows.clone();
        bad_links[0].links = vec!["not-a-keyword".into()];
        assert!(matches!(
            encode_dataset(&bad_links, DatasetMode::SelfContained),
            Err(EncodeError::Unrepresentable { field: "links", .. })
        ));
        let mut orphan_lon = rows;
        orphan_lon[0].country = None;
        orphan_lon[0].lon = Some(1.0);
        orphan_lon[0].lat = None;
        assert!(matches!(
            encode_dataset(&orphan_lon, DatasetMode::SelfContained),
            Err(EncodeError::Unrepresentable { field: "location", .. })
        ));
    }

    #[test]
    fn truncation_heals_to_the_frame_prefix() {
        let rows = dataset_rows(&analysis());
        let bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        // Sever inside the (single) frame's payload: strict parse fails
        // typed, prefix decode yields no rows but no panic.
        let cut = &bin[..bin.len() - 7];
        assert!(BinDataset::parse(cut, None).is_err());
        let (prefix, err) = decode_prefix(cut, None);
        assert!(prefix.is_empty());
        assert!(err.is_some());
        // Multi-frame file: first frame survives a tail cut.
        let many: Vec<DatasetRow> = (0..MAX_FRAME_ROWS as u64 + 10)
            .map(|i| DatasetRow { block_id: i, ..rows[0].clone() })
            .collect();
        let bin = encode_dataset(&many, DatasetMode::SelfContained).unwrap();
        let cut = &bin[..bin.len() - 5];
        let (prefix, err) = decode_prefix(cut, None);
        assert_eq!(prefix.len(), MAX_FRAME_ROWS);
        assert!(matches!(
            err,
            Some(DecodeError::TornTail { .. }) | Some(DecodeError::FrameCorrupt { .. })
        ));
        assert_eq!(prefix, many[..MAX_FRAME_ROWS].to_vec());
    }

    #[test]
    fn trailing_garbage_and_splices_are_rejected() {
        let rows = dataset_rows(&analysis());
        let bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        let mut padded = bin.clone();
        padded.extend_from_slice(b"junk");
        assert!(matches!(
            BinDataset::parse(&padded, None),
            Err(DecodeError::FrameCorrupt { detail: "trailing bytes after final frame", .. })
        ));
        // A frame from a file with a different prelude fails its chained
        // checksum even though the frame itself is intact.
        let other = encode_dataset(&rows[..rows.len() - 1], DatasetMode::SelfContained).unwrap();
        let mut spliced = bin[..shell_end(&bin)].to_vec();
        spliced.extend_from_slice(&other[shell_end(&other)..]);
        assert!(matches!(
            BinDataset::parse(&spliced, None),
            Err(DecodeError::FrameCorrupt { detail: "checksum mismatch", .. })
        ));
    }

    #[test]
    fn reordered_frames_fail_the_position_chain() {
        // Two full frames of identical-shape rows; swapping the frame
        // byte ranges leaves each frame self-consistent but moves it to
        // the wrong index, which the chained frame-index CRC catches.
        let template = dataset_rows(&analysis());
        let many: Vec<DatasetRow> = (0..2 * MAX_FRAME_ROWS as u64)
            .map(|i| DatasetRow { block_id: i, ..template[0].clone() })
            .collect();
        let bin = encode_dataset(&many, DatasetMode::SelfContained).unwrap();
        let shell = shell_end(&bin);
        let f0_payload = u32::from_le_bytes(bin[shell + 8..shell + 12].try_into().unwrap());
        let f0_end = shell + FRAME_HEADER_LEN + f0_payload as usize + 4;
        let mut swapped = bin[..shell].to_vec();
        swapped.extend_from_slice(&bin[f0_end..]);
        swapped.extend_from_slice(&bin[shell..f0_end]);
        assert!(matches!(
            BinDataset::parse(&swapped, None),
            Err(DecodeError::FrameCorrupt { frame: 0, detail: "checksum mismatch" })
        ));
    }

    /// Byte offset where the frame area starts.
    fn shell_end(bytes: &[u8]) -> usize {
        let dict_len = u32::from_le_bytes(
            bytes[crate::framing::PRELUDE_LEN..crate::framing::PRELUDE_LEN + 4].try_into().unwrap(),
        ) as usize;
        crate::framing::PRELUDE_LEN + 8 + dict_len
    }

    #[test]
    fn every_byte_flip_is_detected_or_harmless() {
        let rows = dataset_rows(&analysis());
        let bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        for i in 0..bin.len() {
            let mut bad = bin.clone();
            bad[i] ^= 0x10;
            match BinDataset::parse(&bad, None) {
                Err(_) => {}
                Ok(ds) => {
                    // CRC32 catches every single-bit error; a whole-nibble
                    // flip slipping through all three checksums would be a
                    // bug.
                    panic!("flip at byte {i} decoded {} rows", ds.record_count());
                }
            }
        }
    }

    #[test]
    fn stats_agree_between_row_and_streaming_paths() {
        let rows = dataset_rows(&analysis());
        let want = DatasetStats::from_rows(&rows);
        let bin = encode_dataset(&rows, DatasetMode::SelfContained).unwrap();
        let ds = BinDataset::parse(&bin, None).unwrap();
        assert_eq!(DatasetStats::from_bin(&ds), want);
        // The seed-joined file answers the same aggregate without ever
        // touching the world generator: the stats fold during parse.
        let cfg = fixture_cfg();
        let bin = encode_dataset(&rows, DatasetMode::SeedJoined(&cfg)).unwrap();
        let ds = BinDataset::parse(&bin, Some(&cfg)).unwrap();
        assert_eq!(DatasetStats::from_bin(&ds), want);
    }
}
