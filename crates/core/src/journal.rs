//! Checkpoint journal for world runs: a crash-safe, append-only WAL of
//! completed [`WorldBlockReport`]s.
//!
//! The paper's `A12w` collection ran for 35 days and visibly survived
//! prober restarts; a reproduction at that scale needs the same property.
//! [`crate::analyze_world_resumable`] appends every finished block to a
//! journal file and, on restart, replays it to skip work already done —
//! the resumed run's output is byte-identical to an uninterrupted one.
//!
//! # Formats
//!
//! Two record codecs share one file family (all little-endian, every
//! frame closed by a CRC32 over its body):
//!
//! * **v1** (`SLPWJNL1`): a 48-byte header followed by fixed-width
//!   84-byte records. Kept fully readable and appendable — an existing v1
//!   journal keeps being continued as v1 on resume.
//! * **v2** (`SLPWJNL2`): the shared 64-byte [`crate::framing::Prelude`]
//!   plus an embedded dictionary section (country codes and link-class
//!   keywords, the same tables [`crate::binfmt`] uses), followed by
//!   variable-width records that drop absent fields (phase, location)
//!   instead of zero-filling them — ~30% smaller in practice. New
//!   journals are written as v2.
//!
//! ```text
//! v1 header  (48 B): magic u64 | world_seed u64 | num_blocks u64 |
//!                    rounds u64 | start_time u64 | crc32 u32 | pad [0u8; 4]
//! v1 record  (84 B): magic u32 | flags u16 | class u8 | region u8 |
//!                    block_id u64 | phase f64 | strongest_cpd f64 |
//!                    mean_a f64 | outages u32 | asn u32 | total_probes u64 |
//!                    lon f64 | lat f64 | country [u8; 2] | alloc_year u16 |
//!                    alloc_month u8 | pad u8 | link_mask u16 | crc32 u32
//! v2 header:         prelude (64 B) | dict_len u32 | dict payload | crc32 u32
//! v2 record (41–67B): flags u8 | class+region u8 | block_id u32 |
//!                    strongest_cpd f64 | mean_a f64 | probes u32 |
//!                    outages u16 | asn u32 | alloc_year u16 | alloc_month u8 |
//!                    link_mask u16 | [phase f64] |
//!                    [lon f64 | lat f64 | country_idx u16] | crc32 u32
//! ```
//!
//! Floats are raw IEEE-754 bit patterns, so replay reproduces every value
//! exactly. Decoding is *total*: any input — truncated, bit-flipped,
//! garbage — yields `None` rather than a panic, and replay keeps only the
//! longest valid prefix, discarding the damaged suffix. Header validation
//! is shared with [`crate::binfmt`] through [`crate::framing`]: foreign
//! identities, byte-swapped files and future versions each surface as one
//! consistent [`DecodeError`] kind. Appends are batched to the OS and
//! `fsync`'d every [`SYNC_EVERY`] records and on [`JournalWriter::sync`],
//! bounding how much work a crash can lose.

use crate::framing::{check_identity, sniff_magic, DecodeError, Prelude, RunIdentity};
use crate::worldrun::WorldBlockReport;
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::{by_code, COUNTRIES};
use sleepwatch_geoecon::geolocate::Location;
use sleepwatch_geoecon::region::Region;
use sleepwatch_linktype::LinkFeature;
use sleepwatch_spectral::DiurnalClass;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

pub use crate::framing::crc32;

/// Byte length of the v1 journal header.
pub const HEADER_LEN: usize = 48;
/// Byte length of one v1 block record.
pub const RECORD_LEN: usize = 84;
/// Records between `fsync` calls (a crash loses at most this many
/// appended-but-unsynced records; replay re-analyzes them).
pub const SYNC_EVERY: u32 = 64;
/// Format version newly created journals are written as.
pub const JOURNAL_VERSION: u16 = 2;

const FILE_MAGIC: u64 = 0x534C_5057_4A4E_4C31; // "SLPWJNL1"
const FILE_MAGIC_V2: u64 = 0x534C_5057_4A4E_4C32; // "SLPWJNL2"
/// The journal magic family: everything but the trailing version digit.
const MAGIC_FAMILY: u64 = FILE_MAGIC & MAGIC_FAMILY_MASK;
const MAGIC_FAMILY_MASK: u64 = !0xFF;
/// `kind` byte journals carry in the shared prelude.
const KIND_JOURNAL: u8 = 1;
const REC_MAGIC: u32 = 0x424C_4B52; // "BLKR"

const FLAG_PHASE: u16 = 0x01;
const FLAG_STATIONARY: u16 = 0x02;
const FLAG_LOCATED: u16 = 0x04;
const FLAG_CENTROID: u16 = 0x08;
const FLAG_PLANTED: u16 = 0x10;
const FLAG_REGION: u16 = 0x20;
const FLAG_ALL: u16 = 0x3F;

/// Fixed leading portion of a v2 record, before the optional fields.
const RECORD_V2_FIXED: usize = 37;
/// Smallest possible v2 record (fixed part + CRC).
const RECORD_V2_MIN: usize = RECORD_V2_FIXED + 4;

/// Identity of the run a journal belongs to. Replay refuses to resume
/// from a journal whose header names a different world or analysis
/// configuration — resuming across runs would silently mix datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Seed of the generated world.
    pub world_seed: u64,
    /// Number of blocks in the world.
    pub num_blocks: u64,
    /// Analysis rounds per block.
    pub rounds: u64,
    /// Absolute start time of the observation.
    pub start_time: u64,
}

impl JournalHeader {
    /// The shared-framing view of this header.
    pub fn identity(&self) -> RunIdentity {
        RunIdentity {
            world_seed: self.world_seed,
            num_blocks: self.num_blocks,
            rounds: self.rounds,
            start_time: self.start_time,
        }
    }

    /// Rebuilds a header from its shared-framing view.
    pub fn from_identity(id: &RunIdentity) -> Self {
        JournalHeader {
            world_seed: id.world_seed,
            num_blocks: id.num_blocks,
            rounds: id.rounds,
            start_time: id.start_time,
        }
    }
}

/// Record codec a journal file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalVersion {
    /// Fixed-width 84-byte records behind the 48-byte v1 header.
    V1,
    /// Variable-width records behind the shared prelude + dictionary.
    V2,
}

/// Errors from opening or resuming a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The file holds a valid journal for a *different* run.
    HeaderMismatch {
        /// Header the caller's run would write.
        expected: JournalHeader,
        /// Header found in the file.
        found: JournalHeader,
        /// The first field that disagreed, as the shared decode error.
        mismatch: DecodeError,
    },
    /// The file is a journal this build cannot continue: byte-swapped,
    /// a future version, or carrying an incompatible dictionary.
    Incompatible(DecodeError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::HeaderMismatch { expected, found, .. } => write!(
                f,
                "journal belongs to a different run (found {found:?}, expected {expected:?})"
            ),
            JournalError::Incompatible(e) => write!(f, "incompatible journal: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Encodes the v1 header frame.
pub fn encode_header(h: &JournalHeader) -> [u8; HEADER_LEN] {
    let mut buf = [0u8; HEADER_LEN];
    buf[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    buf[8..16].copy_from_slice(&h.world_seed.to_le_bytes());
    buf[16..24].copy_from_slice(&h.num_blocks.to_le_bytes());
    buf[24..32].copy_from_slice(&h.rounds.to_le_bytes());
    buf[32..40].copy_from_slice(&h.start_time.to_le_bytes());
    let crc = crc32(&buf[0..40]);
    buf[40..44].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes a v1 header frame; `None` on any damage.
pub fn decode_header(bytes: &[u8]) -> Option<JournalHeader> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    if crc32(&bytes[0..40]) != le_u32(&bytes[40..44]) {
        return None;
    }
    if le_u64(&bytes[0..8]) != FILE_MAGIC || bytes[44..48] != [0, 0, 0, 0] {
        return None;
    }
    Some(JournalHeader {
        world_seed: le_u64(&bytes[8..16]),
        num_blocks: le_u64(&bytes[16..24]),
        rounds: le_u64(&bytes[24..32]),
        start_time: le_u64(&bytes[32..40]),
    })
}

/// Encodes one completed block as a v1 record. Returns `None` for the
/// (defensively handled, practically unreachable) case of a report the
/// fixed-width frame cannot represent faithfully — e.g. a located country
/// code absent from the country table. Such blocks are simply not
/// journaled and are re-analyzed on resume.
pub fn encode_record(r: &WorldBlockReport) -> Option<[u8; RECORD_LEN]> {
    let mut flags = 0u16;
    let mut buf = [0u8; RECORD_LEN];
    buf[0..4].copy_from_slice(&REC_MAGIC.to_le_bytes());
    let class = match r.summary.class {
        DiurnalClass::Strict => 0u8,
        DiurnalClass::Relaxed => 1,
        DiurnalClass::NonDiurnal => 2,
    };
    buf[6] = class;
    buf[7] = match r.region {
        Some(region) => {
            flags |= FLAG_REGION;
            Region::ALL.iter().position(|&x| x == region)? as u8
        }
        None => 0xFF,
    };
    buf[8..16].copy_from_slice(&r.summary.block_id.to_le_bytes());
    if let Some(phase) = r.summary.phase {
        flags |= FLAG_PHASE;
        buf[16..24].copy_from_slice(&phase.to_bits().to_le_bytes());
    }
    buf[24..32].copy_from_slice(&r.summary.strongest_cpd.to_bits().to_le_bytes());
    buf[32..40].copy_from_slice(&r.summary.mean_a.to_bits().to_le_bytes());
    buf[40..44].copy_from_slice(&r.summary.outages.to_le_bytes());
    buf[44..48].copy_from_slice(&r.asn.to_le_bytes());
    buf[48..56].copy_from_slice(&r.summary.total_probes.to_le_bytes());
    if let Some(loc) = r.location {
        flags |= FLAG_LOCATED;
        if loc.centroid_fallback {
            flags |= FLAG_CENTROID;
        }
        // The country must round-trip through the table so decode can
        // restore the same `&'static str`.
        let code = by_code(loc.country)?.code.as_bytes();
        if code.len() != 2 {
            return None;
        }
        buf[56..64].copy_from_slice(&loc.lon.to_bits().to_le_bytes());
        buf[64..72].copy_from_slice(&loc.lat.to_bits().to_le_bytes());
        buf[72..74].copy_from_slice(code);
    }
    buf[74..76].copy_from_slice(&r.alloc_date.year.to_le_bytes());
    buf[76] = r.alloc_date.month;
    if r.summary.stationary {
        flags |= FLAG_STATIONARY;
    }
    if r.planted_diurnal {
        flags |= FLAG_PLANTED;
    }
    let mut mask = 0u16;
    for f in &r.link_features {
        mask |= 1 << f.index();
    }
    buf[78..80].copy_from_slice(&mask.to_le_bytes());
    buf[4..6].copy_from_slice(&flags.to_le_bytes());
    let crc = crc32(&buf[0..80]);
    buf[80..84].copy_from_slice(&crc.to_le_bytes());
    Some(buf)
}

/// Decodes one v1 record frame. Total: `None` on any damage or internal
/// inconsistency, never a panic. Validation order: CRC first (rejects
/// random corruption), then magic, then every field and cross-field
/// consistency rule the encoder guarantees.
pub fn decode_record(bytes: &[u8]) -> Option<WorldBlockReport> {
    if bytes.len() < RECORD_LEN {
        return None;
    }
    let b = &bytes[0..RECORD_LEN];
    if crc32(&b[0..80]) != le_u32(&b[80..84]) {
        return None;
    }
    if le_u32(&b[0..4]) != REC_MAGIC {
        return None;
    }
    let flags = le_u16(&b[4..6]);
    if flags & !FLAG_ALL != 0 || b[77] != 0 {
        return None;
    }
    let class = match b[6] {
        0 => DiurnalClass::Strict,
        1 => DiurnalClass::Relaxed,
        2 => DiurnalClass::NonDiurnal,
        _ => return None,
    };
    let region = if flags & FLAG_REGION != 0 {
        Some(*Region::ALL.get(b[7] as usize)?)
    } else {
        if b[7] != 0xFF {
            return None;
        }
        None
    };
    let phase = if flags & FLAG_PHASE != 0 {
        Some(f64::from_bits(le_u64(&b[16..24])))
    } else {
        if le_u64(&b[16..24]) != 0 {
            return None;
        }
        None
    };
    let location = if flags & FLAG_LOCATED != 0 {
        let code = std::str::from_utf8(&b[72..74]).ok()?;
        let country = by_code(code)?.code;
        Some(Location {
            lon: f64::from_bits(le_u64(&b[56..64])),
            lat: f64::from_bits(le_u64(&b[64..72])),
            country,
            centroid_fallback: flags & FLAG_CENTROID != 0,
        })
    } else {
        // An unlocated block must have the location fields zeroed (and no
        // centroid flag): anything else is corruption.
        if flags & FLAG_CENTROID != 0
            || le_u64(&b[56..64]) != 0
            || le_u64(&b[64..72]) != 0
            || b[72..74] != [0, 0]
        {
            return None;
        }
        None
    };
    let month = b[76];
    if !(1..=12).contains(&month) {
        return None;
    }
    let mask = le_u16(&b[78..80]);
    let mut link_features = Vec::new();
    for (i, &f) in LinkFeature::ALL.iter().enumerate() {
        if mask & (1 << i) != 0 {
            link_features.push(f);
        }
    }
    Some(WorldBlockReport {
        summary: crate::analyze::BlockSummary {
            block_id: le_u64(&b[8..16]),
            class,
            phase,
            strongest_cpd: f64::from_bits(le_u64(&b[24..32])),
            mean_a: f64::from_bits(le_u64(&b[32..40])),
            stationary: flags & FLAG_STATIONARY != 0,
            outages: le_u32(&b[40..44]),
            total_probes: le_u64(&b[48..56]),
        },
        location,
        region,
        alloc_date: YearMonth::new(le_u16(&b[74..76]), month),
        link_features,
        asn: le_u32(&b[44..48]),
        planted_diurnal: flags & FLAG_PLANTED != 0,
    })
}

// ---------------------------------------------------------------------------
// v2 codec
// ---------------------------------------------------------------------------

/// The dictionary payload every v2 journal embeds: the country-code table
/// and the link-class keyword table, in their compiled order. Shared with
/// the compact dataset container so both formats resolve indices through
/// the same tables.
fn static_dict_payload() -> Vec<u8> {
    let mut payload = Vec::new();
    crate::framing::put_string_table(&mut payload, COUNTRIES.iter().map(|c| c.code));
    crate::framing::put_string_table(&mut payload, LinkFeature::ALL.iter().map(|f| f.keyword()));
    payload
}

/// Encodes the v2 header: the shared prelude plus the embedded dictionary
/// section.
pub fn encode_header_v2(h: &JournalHeader) -> Vec<u8> {
    let prelude = Prelude {
        magic: FILE_MAGIC_V2,
        version: JOURNAL_VERSION,
        kind: KIND_JOURNAL,
        mode: 0,
        identity: h.identity(),
        // Journals are append-only; their record count is implied by file
        // length, so the prelude's count stays 0.
        record_count: 0,
    };
    let mut out = prelude.encode().to_vec();
    let payload = static_dict_payload();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Parses and fully validates a v2 header, returning the run identity and
/// the header's byte length.
pub fn decode_header_v2(bytes: &[u8]) -> Result<(JournalHeader, usize), DecodeError> {
    let prelude = Prelude::decode(bytes)?;
    prelude.require(FILE_MAGIC_V2, JOURNAL_VERSION, KIND_JOURNAL)?;
    if prelude.mode != 0 {
        return Err(DecodeError::BadMode { found: prelude.mode });
    }
    let rest = &bytes[crate::framing::PRELUDE_LEN..];
    if rest.len() < 4 {
        return Err(DecodeError::DictCorrupt { detail: "dictionary length missing" });
    }
    let len = le_u32(&rest[0..4]) as usize;
    let Some(payload) = rest.get(4..4 + len) else {
        return Err(DecodeError::DictCorrupt { detail: "dictionary truncated" });
    };
    let Some(crc) = rest.get(4 + len..4 + len + 4) else {
        return Err(DecodeError::DictCorrupt { detail: "dictionary checksum missing" });
    };
    if crc32(payload) != le_u32(crc) {
        return Err(DecodeError::DictCorrupt { detail: "dictionary checksum mismatch" });
    }
    if payload != static_dict_payload().as_slice() {
        return Err(DecodeError::DictMismatch { table: "journal" });
    }
    let header_len = crate::framing::PRELUDE_LEN + 4 + len + 4;
    Ok((JournalHeader::from_identity(&prelude.identity), header_len))
}

/// Byte length of the v2 record a report with these optional fields
/// occupies.
fn record_v2_len(has_phase: bool, located: bool) -> usize {
    RECORD_V2_MIN + if has_phase { 8 } else { 0 } + if located { 18 } else { 0 }
}

/// Encodes one completed block as a v2 record. `None` when the report
/// does not fit the frame (block id or probe count beyond 32 bits,
/// outages beyond 16, or a country absent from the table) — such blocks
/// are skipped and re-analyzed on resume, exactly like v1.
pub fn encode_record_v2(r: &WorldBlockReport) -> Option<Vec<u8>> {
    let id = u32::try_from(r.summary.block_id).ok()?;
    let probes = u32::try_from(r.summary.total_probes).ok()?;
    let outages = u16::try_from(r.summary.outages).ok()?;
    let mut flags = 0u16;
    let mut cr = match r.summary.class {
        DiurnalClass::Strict => 0u8,
        DiurnalClass::Relaxed => 1,
        DiurnalClass::NonDiurnal => 2,
    };
    if let Some(region) = r.region {
        flags |= FLAG_REGION;
        cr |= (Region::ALL.iter().position(|&x| x == region)? as u8) << 2;
    }
    if r.summary.stationary {
        flags |= FLAG_STATIONARY;
    }
    if r.planted_diurnal {
        flags |= FLAG_PLANTED;
    }
    if r.summary.phase.is_some() {
        flags |= FLAG_PHASE;
    }
    let country_idx = match r.location {
        Some(loc) => {
            flags |= FLAG_LOCATED;
            if loc.centroid_fallback {
                flags |= FLAG_CENTROID;
            }
            Some(u16::try_from(COUNTRIES.iter().position(|c| c.code == loc.country)?).ok()?)
        }
        None => None,
    };
    let mut mask = 0u16;
    for f in &r.link_features {
        mask |= 1 << f.index();
    }
    let mut buf =
        Vec::with_capacity(record_v2_len(r.summary.phase.is_some(), r.location.is_some()));
    buf.push(flags as u8);
    buf.push(cr);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&r.summary.strongest_cpd.to_bits().to_le_bytes());
    buf.extend_from_slice(&r.summary.mean_a.to_bits().to_le_bytes());
    buf.extend_from_slice(&probes.to_le_bytes());
    buf.extend_from_slice(&outages.to_le_bytes());
    buf.extend_from_slice(&r.asn.to_le_bytes());
    buf.extend_from_slice(&r.alloc_date.year.to_le_bytes());
    buf.push(r.alloc_date.month);
    buf.extend_from_slice(&mask.to_le_bytes());
    debug_assert_eq!(buf.len(), RECORD_V2_FIXED);
    if let Some(phase) = r.summary.phase {
        buf.extend_from_slice(&phase.to_bits().to_le_bytes());
    }
    if let Some(loc) = r.location {
        buf.extend_from_slice(&loc.lon.to_bits().to_le_bytes());
        buf.extend_from_slice(&loc.lat.to_bits().to_le_bytes());
        buf.extend_from_slice(&country_idx.expect("set with location").to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    Some(buf)
}

/// Decodes one v2 record from the front of `bytes`, returning the report
/// and the frame's byte length. Total: `None` on any damage, truncation
/// or cross-field inconsistency.
pub fn decode_record_v2(bytes: &[u8]) -> Option<(WorldBlockReport, usize)> {
    if bytes.len() < RECORD_V2_MIN {
        return None;
    }
    let flags = bytes[0] as u16;
    if flags & !FLAG_ALL != 0 {
        return None;
    }
    let len = record_v2_len(flags & FLAG_PHASE != 0, flags & FLAG_LOCATED != 0);
    if bytes.len() < len {
        return None;
    }
    let b = &bytes[..len];
    if crc32(&b[..len - 4]) != le_u32(&b[len - 4..]) {
        return None;
    }
    let cr = b[1];
    if cr >> 6 != 0 {
        return None;
    }
    let class = match cr & 0x3 {
        0 => DiurnalClass::Strict,
        1 => DiurnalClass::Relaxed,
        2 => DiurnalClass::NonDiurnal,
        _ => return None,
    };
    let region_idx = (cr >> 2) & 0xF;
    let region = if flags & FLAG_REGION != 0 {
        Some(*Region::ALL.get(region_idx as usize)?)
    } else {
        if region_idx != 0 {
            return None;
        }
        None
    };
    if flags & FLAG_CENTROID != 0 && flags & FLAG_LOCATED == 0 {
        return None;
    }
    let month = b[34];
    if !(1..=12).contains(&month) {
        return None;
    }
    let mask = le_u16(&b[35..37]);
    let mut link_features = Vec::new();
    for (i, &f) in LinkFeature::ALL.iter().enumerate() {
        if mask & (1 << i) != 0 {
            link_features.push(f);
        }
    }
    let mut at = RECORD_V2_FIXED;
    let phase = if flags & FLAG_PHASE != 0 {
        let v = f64::from_bits(le_u64(&b[at..at + 8]));
        at += 8;
        Some(v)
    } else {
        None
    };
    let location = if flags & FLAG_LOCATED != 0 {
        let lon = f64::from_bits(le_u64(&b[at..at + 8]));
        let lat = f64::from_bits(le_u64(&b[at + 8..at + 16]));
        let idx = le_u16(&b[at + 16..at + 18]) as usize;
        Some(Location {
            lon,
            lat,
            country: COUNTRIES.get(idx)?.code,
            centroid_fallback: flags & FLAG_CENTROID != 0,
        })
    } else {
        None
    };
    let report = WorldBlockReport {
        summary: crate::analyze::BlockSummary {
            block_id: le_u32(&b[2..6]) as u64,
            class,
            phase,
            strongest_cpd: f64::from_bits(le_u64(&b[6..14])),
            mean_a: f64::from_bits(le_u64(&b[14..22])),
            stationary: flags & FLAG_STATIONARY != 0,
            outages: le_u16(&b[26..28]) as u32,
            total_probes: le_u32(&b[22..26]) as u64,
        },
        location,
        region,
        alloc_date: YearMonth::new(le_u16(&b[32..34]), month),
        link_features,
        asn: le_u32(&b[28..32]),
        planted_diurnal: flags & FLAG_PLANTED != 0,
    };
    Some((report, len))
}

/// Outcome of replaying a journal file's bytes.
#[derive(Debug)]
pub enum ReplayOutcome {
    /// No usable prefix (empty file, or damage starting in the header):
    /// the journal must be rewritten from scratch.
    Fresh {
        /// Whole-or-partial record frames dropped with the damage
        /// (counted in minimum-record units for v2, so an upper bound).
        discarded: u64,
    },
    /// A valid prefix was recovered.
    Resumed {
        /// Every block report in the valid prefix, in append order.
        reports: Vec<WorldBlockReport>,
        /// Byte length of the valid prefix (header + intact records);
        /// the file should be truncated here before appending resumes.
        valid_len: u64,
        /// Damaged or partial trailing frames discarded.
        discarded: u64,
    },
    /// The header is intact but names a different run.
    HeaderMismatch {
        /// Header found in the file.
        found: JournalHeader,
    },
}

/// Replays v1 journal `bytes` against the run identity `expect`. Total —
/// never panics, whatever the input. Replay stops at the first damaged
/// frame and reports everything before it; the damaged suffix (counted in
/// whole-record units, rounded up) is discarded.
pub fn replay_bytes(bytes: &[u8], expect: &JournalHeader) -> ReplayOutcome {
    let frames = |len: usize| len.div_ceil(RECORD_LEN) as u64;
    if bytes.is_empty() {
        return ReplayOutcome::Fresh { discarded: 0 };
    }
    let header = match decode_header(bytes) {
        Some(h) => h,
        // Damage inside the header poisons everything after it.
        None => return ReplayOutcome::Fresh { discarded: frames(bytes.len()) },
    };
    if header != *expect {
        return ReplayOutcome::HeaderMismatch { found: header };
    }
    let mut reports = Vec::new();
    let mut offset = HEADER_LEN;
    while offset + RECORD_LEN <= bytes.len() {
        match decode_record(&bytes[offset..offset + RECORD_LEN]) {
            Some(r) => reports.push(r),
            None => break,
        }
        offset += RECORD_LEN;
    }
    ReplayOutcome::Resumed {
        reports,
        valid_len: offset as u64,
        discarded: frames(bytes.len() - offset),
    }
}

/// Whether a [`DecodeError`] means "a real file from an incompatible
/// writer" (refuse) rather than "corruption" (heal by rewriting).
fn is_incompatible(e: &DecodeError) -> bool {
    matches!(
        e,
        DecodeError::EndianMismatch
            | DecodeError::UnsupportedVersion { .. }
            | DecodeError::BadMagic { .. }
            | DecodeError::BadKind { .. }
            | DecodeError::BadMode { .. }
            | DecodeError::DictMismatch { .. }
    )
}

/// Replays v2 journal `bytes` against the run identity `expect`. Returns
/// `Err` only for files this build must refuse (byte-swapped, future
/// version, foreign dictionary); corruption — a damaged prelude or
/// dictionary — degrades to [`ReplayOutcome::Fresh`] exactly like v1.
pub fn replay_bytes_v2(bytes: &[u8], expect: &JournalHeader) -> Result<ReplayOutcome, DecodeError> {
    let frames = |len: usize| len.div_ceil(RECORD_V2_MIN) as u64;
    if bytes.is_empty() {
        return Ok(ReplayOutcome::Fresh { discarded: 0 });
    }
    let (header, header_len) = match decode_header_v2(bytes) {
        Ok(h) => h,
        Err(e) if is_incompatible(&e) => return Err(e),
        Err(_) => return Ok(ReplayOutcome::Fresh { discarded: frames(bytes.len()) }),
    };
    if header != *expect {
        return Ok(ReplayOutcome::HeaderMismatch { found: header });
    }
    let mut reports = Vec::new();
    let mut offset = header_len;
    while let Some((r, len)) = decode_record_v2(&bytes[offset..]) {
        reports.push(r);
        offset += len;
    }
    Ok(ReplayOutcome::Resumed {
        reports,
        valid_len: offset as u64,
        discarded: frames(bytes.len() - offset),
    })
}

/// Byte offsets of the record boundaries in a journal's valid prefix:
/// element 0 is the end of the header (start of the first record),
/// element `i + 1` the end of record `i`. Empty when the header is
/// unusable. Works for both versions — meant for tools and tests that
/// need to sever or patch a journal at precise frame boundaries without
/// hard-coding a record width.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    match sniff_magic(bytes) {
        Some(FILE_MAGIC) => {
            if decode_header(bytes).is_none() {
                return Vec::new();
            }
            let mut out = vec![HEADER_LEN];
            let mut offset = HEADER_LEN;
            while offset + RECORD_LEN <= bytes.len()
                && decode_record(&bytes[offset..offset + RECORD_LEN]).is_some()
            {
                offset += RECORD_LEN;
                out.push(offset);
            }
            out
        }
        Some(FILE_MAGIC_V2) => {
            let Ok((_, header_len)) = decode_header_v2(bytes) else {
                return Vec::new();
            };
            let mut out = vec![header_len];
            let mut offset = header_len;
            while let Some((_, len)) = decode_record_v2(&bytes[offset..]) {
                offset += len;
                out.push(offset);
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Append handle for a journal file positioned at the end of its valid
/// prefix. Records are `fsync`'d every [`SYNC_EVERY`] appends and on
/// [`sync`](Self::sync).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    unsynced: u32,
    version: JournalVersion,
}

impl JournalWriter {
    /// The record codec this writer appends with (the version of the
    /// file it continues).
    pub fn version(&self) -> JournalVersion {
        self.version
    }

    /// Appends one completed block. Returns `Ok(false)` when the report
    /// cannot be represented in the frame (the block is skipped, not
    /// corrupted — see [`encode_record`] / [`encode_record_v2`]).
    pub fn append(&mut self, report: &WorldBlockReport) -> io::Result<bool> {
        match self.version {
            JournalVersion::V1 => {
                let Some(frame) = encode_record(report) else {
                    return Ok(false);
                };
                self.file.write_all(&frame)?;
            }
            JournalVersion::V2 => {
                let Some(frame) = encode_record_v2(report) else {
                    return Ok(false);
                };
                self.file.write_all(&frame)?;
            }
        }
        self.unsynced += 1;
        if self.unsynced >= SYNC_EVERY {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        sleepwatch_obs::global().resilience.journal_records_written.incr();
        Ok(true)
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.file.sync_data()
    }
}

/// Replay statistics from [`open_resume`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records recovered from the journal.
    pub replayed: u64,
    /// Damaged or partial trailing frames discarded.
    pub discarded: u64,
}

/// Opens (or creates) the journal at `path` for the run identified by
/// `header`: replays any existing contents, truncates away a damaged
/// tail, and returns a writer positioned for appending plus the recovered
/// reports.
///
/// Both format versions are continued in place (a v1 journal keeps
/// growing as v1); fresh or rewritten journals are created as v2. Errors
/// only on IO failure, a well-formed header from a different run, or a
/// file this build must refuse outright (byte-swapped, future version,
/// foreign dictionary) — corruption never errors, it only shrinks the
/// prefix.
pub fn open_resume(
    path: &Path,
    header: &JournalHeader,
) -> Result<(JournalWriter, Vec<WorldBlockReport>, ReplayStats), JournalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mismatch_err = |found: JournalHeader| {
        let mismatch = check_identity(&header.identity(), &found.identity())
            .expect_err("mismatching headers must differ in an identity field");
        JournalError::HeaderMismatch { expected: *header, found, mismatch }
    };
    let outcome = match sniff_magic(&bytes) {
        Some(FILE_MAGIC) => match replay_bytes(&bytes, header) {
            ReplayOutcome::HeaderMismatch { found } => return Err(mismatch_err(found)),
            ReplayOutcome::Fresh { discarded } => {
                (Vec::new(), 0u64, ReplayStats { replayed: 0, discarded }, JournalVersion::V2)
            }
            ReplayOutcome::Resumed { reports, valid_len, discarded } => {
                let stats = ReplayStats { replayed: reports.len() as u64, discarded };
                (reports, valid_len, stats, JournalVersion::V1)
            }
        },
        Some(FILE_MAGIC_V2) => {
            match replay_bytes_v2(&bytes, header).map_err(JournalError::Incompatible)? {
                ReplayOutcome::HeaderMismatch { found } => return Err(mismatch_err(found)),
                ReplayOutcome::Fresh { discarded } => {
                    (Vec::new(), 0u64, ReplayStats { replayed: 0, discarded }, JournalVersion::V2)
                }
                ReplayOutcome::Resumed { reports, valid_len, discarded } => {
                    let stats = ReplayStats { replayed: reports.len() as u64, discarded };
                    (reports, valid_len, stats, JournalVersion::V2)
                }
            }
        }
        Some(m) if m == FILE_MAGIC.swap_bytes() || m == FILE_MAGIC_V2.swap_bytes() => {
            return Err(JournalError::Incompatible(DecodeError::EndianMismatch));
        }
        Some(m) if m & MAGIC_FAMILY_MASK == MAGIC_FAMILY => {
            let digit = (m & 0xFF) as u8;
            let found = if digit.is_ascii_digit() { (digit - b'0') as u16 } else { digit as u16 };
            return Err(JournalError::Incompatible(DecodeError::UnsupportedVersion {
                found,
                supported: JOURNAL_VERSION,
            }));
        }
        // Garbage (or a short/empty file): rewrite from scratch.
        _ => {
            let discarded = bytes.len().div_ceil(RECORD_V2_MIN) as u64;
            (Vec::new(), 0u64, ReplayStats { replayed: 0, discarded }, JournalVersion::V2)
        }
    };
    let (reports, valid_len, stats, version) = outcome;
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    if valid_len == 0 {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        match version {
            JournalVersion::V1 => file.write_all(&encode_header(header))?,
            JournalVersion::V2 => file.write_all(&encode_header_v2(header))?,
        }
    } else {
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
    }
    file.sync_data()?;
    let obs = sleepwatch_obs::global();
    obs.resilience.journal_records_replayed.add(stats.replayed);
    obs.resilience.journal_records_discarded.add(stats.discarded);
    Ok((JournalWriter { file, unsynced: 0, version }, reports, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::BlockSummary;

    fn sample_report(id: u64) -> WorldBlockReport {
        WorldBlockReport {
            summary: BlockSummary {
                block_id: id,
                class: DiurnalClass::Strict,
                phase: Some(1.25),
                strongest_cpd: 1.0,
                mean_a: 0.625,
                stationary: true,
                outages: 3,
                total_probes: 4_321,
            },
            location: Some(Location {
                lon: 103.8,
                lat: 1.35,
                country: by_code("SG").unwrap().code,
                centroid_fallback: false,
            }),
            region: Some(Region::ALL[4]),
            alloc_date: YearMonth::new(1998, 7),
            link_features: vec![LinkFeature::ALL[0], LinkFeature::ALL[9]],
            asn: 64_500,
            planted_diurnal: true,
        }
    }

    fn header() -> JournalHeader {
        JournalHeader { world_seed: 21, num_blocks: 60, rounds: 523, start_time: 1_000 }
    }

    fn assert_roundtrip(r: &WorldBlockReport) {
        let frame = encode_record(r).expect("encodable");
        let back = decode_record(&frame).expect("decodable");
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
        // And through the v2 codec.
        let frame = encode_record_v2(r).expect("v2 encodable");
        let (back, len) = decode_record_v2(&frame).expect("v2 decodable");
        assert_eq!(len, frame.len());
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
    }

    #[test]
    fn record_roundtrips_exactly() {
        assert_roundtrip(&sample_report(7));
        // Unlocated, region-less, featureless, phaseless.
        let mut r = sample_report(8);
        r.location = None;
        r.region = None;
        r.summary.phase = None;
        r.link_features.clear();
        r.summary.stationary = false;
        r.planted_diurnal = false;
        assert_roundtrip(&r);
    }

    #[test]
    fn header_roundtrips_and_rejects_damage() {
        let h = header();
        let buf = encode_header(&h);
        assert_eq!(decode_header(&buf), Some(h));
        for i in 0..HEADER_LEN {
            let mut bad = buf;
            bad[i] ^= 0x40;
            assert_eq!(decode_header(&bad), None, "flip at byte {i} undetected");
        }
        assert_eq!(decode_header(&buf[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn header_v2_roundtrips_and_rejects_damage() {
        let h = header();
        let buf = encode_header_v2(&h);
        let (back, len) = decode_header_v2(&buf).expect("own header decodes");
        assert_eq!(back, h);
        assert_eq!(len, buf.len());
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(decode_header_v2(&bad).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn every_single_bit_flip_in_a_record_is_caught() {
        let frame = encode_record(&sample_report(3)).unwrap();
        for bit in 0..RECORD_LEN * 8 {
            let mut bad = frame;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_record(&bad).is_none(), "bit flip {bit} undetected");
        }
    }

    #[test]
    fn every_single_bit_flip_in_a_v2_record_is_caught() {
        let mut minimal = sample_report(9);
        minimal.summary.phase = None;
        minimal.location = None;
        for r in [sample_report(3), minimal] {
            let frame = encode_record_v2(&r).unwrap();
            for bit in 0..frame.len() * 8 {
                let mut bad = frame.clone();
                bad[bit / 8] ^= 1 << (bit % 8);
                assert!(decode_record_v2(&bad).is_none(), "bit flip {bit} undetected");
            }
        }
    }

    #[test]
    fn v2_records_are_smaller_than_v1() {
        let full = encode_record_v2(&sample_report(1)).unwrap();
        assert!(full.len() < RECORD_LEN, "full v2 record {} >= v1 {RECORD_LEN}", full.len());
        let mut bare = sample_report(2);
        bare.summary.phase = None;
        bare.location = None;
        assert_eq!(encode_record_v2(&bare).unwrap().len(), RECORD_V2_MIN);
    }

    #[test]
    fn replay_keeps_valid_prefix_and_discards_damaged_tail() {
        let h = header();
        let mut bytes = encode_header(&h).to_vec();
        for id in 0..5 {
            bytes.extend_from_slice(&encode_record(&sample_report(id)).unwrap());
        }
        // Corrupt record 3 and truncate record 4 in half.
        let r3 = HEADER_LEN + 3 * RECORD_LEN;
        bytes[r3 + 10] ^= 0xFF;
        bytes.truncate(HEADER_LEN + 4 * RECORD_LEN + RECORD_LEN / 2);
        match replay_bytes(&bytes, &h) {
            ReplayOutcome::Resumed { reports, valid_len, discarded } => {
                assert_eq!(reports.len(), 3);
                assert_eq!(valid_len as usize, HEADER_LEN + 3 * RECORD_LEN);
                assert_eq!(discarded, 2);
            }
            other => panic!("expected resume, got {other:?}"),
        }
    }

    #[test]
    fn replay_v2_keeps_valid_prefix_and_discards_damaged_tail() {
        let h = header();
        let mut bytes = encode_header_v2(&h);
        let rec_len = encode_record_v2(&sample_report(0)).unwrap().len();
        for id in 0..5 {
            bytes.extend_from_slice(&encode_record_v2(&sample_report(id)).unwrap());
        }
        let header_len = bytes.len() - 5 * rec_len;
        // Corrupt record 3 and truncate record 4 in half.
        bytes[header_len + 3 * rec_len + 10] ^= 0xFF;
        bytes.truncate(header_len + 4 * rec_len + rec_len / 2);
        match replay_bytes_v2(&bytes, &h).expect("compatible") {
            ReplayOutcome::Resumed { reports, valid_len, .. } => {
                assert_eq!(reports.len(), 3);
                assert_eq!(valid_len as usize, header_len + 3 * rec_len);
            }
            other => panic!("expected resume, got {other:?}"),
        }
        // Boundaries agree with the replay walk.
        let bounds = record_boundaries(&bytes);
        assert_eq!(bounds.len(), 4);
        assert_eq!(bounds[0], header_len);
        assert_eq!(bounds[3], header_len + 3 * rec_len);
    }

    #[test]
    fn replay_flags_foreign_headers() {
        let other = JournalHeader { world_seed: 99, ..header() };
        let bytes = encode_header(&other);
        assert!(matches!(
            replay_bytes(&bytes, &header()),
            ReplayOutcome::HeaderMismatch { found } if found == other
        ));
        let v2 = encode_header_v2(&other);
        assert!(matches!(
            replay_bytes_v2(&v2, &header()).expect("compatible"),
            ReplayOutcome::HeaderMismatch { found } if found == other
        ));
    }

    #[test]
    fn replay_of_garbage_is_fresh() {
        assert!(matches!(replay_bytes(&[], &header()), ReplayOutcome::Fresh { discarded: 0 }));
        let junk = vec![0xA5u8; 200];
        assert!(matches!(replay_bytes(&junk, &header()), ReplayOutcome::Fresh { .. }));
        assert!(matches!(
            replay_bytes_v2(&[], &header()),
            Ok(ReplayOutcome::Fresh { discarded: 0 })
        ));
    }

    #[test]
    fn open_resume_creates_replays_and_truncates() {
        let dir = std::env::temp_dir().join(format!("swjournal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.journal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        {
            let (mut w, reports, stats) = open_resume(&path, &h).unwrap();
            assert!(reports.is_empty());
            assert_eq!(stats, ReplayStats::default());
            assert_eq!(w.version(), JournalVersion::V2, "fresh journals are v2");
            for id in 0..4 {
                assert!(w.append(&sample_report(id)).unwrap());
            }
            w.sync().unwrap();
        }
        // Sever mid-record and resume.
        let full = std::fs::read(&path).unwrap();
        let bounds = record_boundaries(&full);
        assert_eq!(bounds.len(), 5, "header + 4 records");
        assert_eq!(*bounds.last().unwrap(), full.len());
        let cut = bounds[3] + (bounds[4] - bounds[3]) / 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (_w, reports, stats) = open_resume(&path, &h).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(stats.replayed, 3);
        assert!(stats.discarded >= 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bounds[3] as u64);
        // A different run must refuse the file.
        let foreign = JournalHeader { rounds: 1, ..h };
        assert!(matches!(open_resume(&path, &foreign), Err(JournalError::HeaderMismatch { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_resume_continues_v1_files_as_v1() {
        let dir = std::env::temp_dir().join(format!("swjournal-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.journal");
        let h = header();
        let mut bytes = encode_header(&h).to_vec();
        bytes.extend_from_slice(&encode_record(&sample_report(0)).unwrap());
        std::fs::write(&path, &bytes).unwrap();
        let (mut w, reports, _stats) = open_resume(&path, &h).unwrap();
        assert_eq!(w.version(), JournalVersion::V1, "existing v1 journals stay v1");
        assert_eq!(reports.len(), 1);
        assert!(w.append(&sample_report(1)).unwrap());
        w.sync().unwrap();
        drop(w);
        let grown = std::fs::read(&path).unwrap();
        assert_eq!(grown.len(), HEADER_LEN + 2 * RECORD_LEN, "appended record is v1-framed");
        let (_w2, reports, _stats) = open_resume(&path, &h).unwrap();
        assert_eq!(reports.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_resume_refuses_incompatible_files() {
        let dir = std::env::temp_dir().join(format!("swjournal-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let h = header();
        // Byte-swapped magic: a big-endian writer.
        let swapped = dir.join("swapped.journal");
        let mut bytes = encode_header(&h).to_vec();
        bytes[0..8].reverse();
        std::fs::write(&swapped, &bytes).unwrap();
        assert!(matches!(
            open_resume(&swapped, &h),
            Err(JournalError::Incompatible(DecodeError::EndianMismatch))
        ));
        // Future version digit in the magic family.
        let future = dir.join("future.journal");
        let magic3 = (FILE_MAGIC & MAGIC_FAMILY_MASK) | b'3' as u64;
        let mut bytes = magic3.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&future, &bytes).unwrap();
        assert!(matches!(
            open_resume(&future, &h),
            Err(JournalError::Incompatible(DecodeError::UnsupportedVersion {
                found: 3,
                supported: JOURNAL_VERSION
            }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
