//! Checkpoint journal for world runs: a crash-safe, append-only WAL of
//! completed [`WorldBlockReport`]s.
//!
//! The paper's `A12w` collection ran for 35 days and visibly survived
//! prober restarts; a reproduction at that scale needs the same property.
//! [`crate::analyze_world_resumable`] appends every finished block to a
//! journal file and, on restart, replays it to skip work already done —
//! the resumed run's output is byte-identical to an uninterrupted one.
//!
//! # Format
//!
//! One file: a 48-byte header followed by fixed-width 84-byte records,
//! all little-endian, each frame closed by a CRC32 (IEEE) over its body.
//!
//! ```text
//! header  (48 B): magic u64 | world_seed u64 | num_blocks u64 |
//!                 rounds u64 | start_time u64 | crc32 u32 | pad [0u8; 4]
//! record  (84 B): magic u32 | flags u16 | class u8 | region u8 |
//!                 block_id u64 | phase f64 | strongest_cpd f64 |
//!                 mean_a f64 | outages u32 | asn u32 | total_probes u64 |
//!                 lon f64 | lat f64 | country [u8; 2] | alloc_year u16 |
//!                 alloc_month u8 | pad u8 | link_mask u16 | crc32 u32
//! ```
//!
//! Floats are raw IEEE-754 bit patterns, so replay reproduces every value
//! exactly. Decoding is *total*: any input — truncated, bit-flipped,
//! garbage — yields `None` rather than a panic, and replay keeps only the
//! longest valid prefix, discarding the damaged suffix. Appends are
//! batched to the OS and `fsync`'d every [`SYNC_EVERY`] records and on
//! [`JournalWriter::sync`], bounding how much work a crash can lose.

use crate::worldrun::WorldBlockReport;
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::by_code;
use sleepwatch_geoecon::geolocate::Location;
use sleepwatch_geoecon::region::Region;
use sleepwatch_linktype::LinkFeature;
use sleepwatch_spectral::DiurnalClass;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// Byte length of the journal header.
pub const HEADER_LEN: usize = 48;
/// Byte length of one block record.
pub const RECORD_LEN: usize = 84;
/// Records between `fsync` calls (a crash loses at most this many
/// appended-but-unsynced records; replay re-analyzes them).
pub const SYNC_EVERY: u32 = 64;

const FILE_MAGIC: u64 = 0x534C_5057_4A4E_4C31; // "SLPWJNL1"
const REC_MAGIC: u32 = 0x424C_4B52; // "BLKR"

const FLAG_PHASE: u16 = 0x01;
const FLAG_STATIONARY: u16 = 0x02;
const FLAG_LOCATED: u16 = 0x04;
const FLAG_CENTROID: u16 = 0x08;
const FLAG_PLANTED: u16 = 0x10;
const FLAG_REGION: u16 = 0x20;
const FLAG_ALL: u16 = 0x3F;

// CRC32 (IEEE 802.3), table built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

/// Identity of the run a journal belongs to. Replay refuses to resume
/// from a journal whose header names a different world or analysis
/// configuration — resuming across runs would silently mix datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Seed of the generated world.
    pub world_seed: u64,
    /// Number of blocks in the world.
    pub num_blocks: u64,
    /// Analysis rounds per block.
    pub rounds: u64,
    /// Absolute start time of the observation.
    pub start_time: u64,
}

/// Errors from opening or resuming a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The file holds a valid journal for a *different* run.
    HeaderMismatch {
        /// Header the caller's run would write.
        expected: JournalHeader,
        /// Header found in the file.
        found: JournalHeader,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::HeaderMismatch { expected, found } => write!(
                f,
                "journal belongs to a different run (found {found:?}, expected {expected:?})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Encodes the header frame.
pub fn encode_header(h: &JournalHeader) -> [u8; HEADER_LEN] {
    let mut buf = [0u8; HEADER_LEN];
    buf[0..8].copy_from_slice(&FILE_MAGIC.to_le_bytes());
    buf[8..16].copy_from_slice(&h.world_seed.to_le_bytes());
    buf[16..24].copy_from_slice(&h.num_blocks.to_le_bytes());
    buf[24..32].copy_from_slice(&h.rounds.to_le_bytes());
    buf[32..40].copy_from_slice(&h.start_time.to_le_bytes());
    let crc = crc32(&buf[0..40]);
    buf[40..44].copy_from_slice(&crc.to_le_bytes());
    buf
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes a header frame; `None` on any damage.
pub fn decode_header(bytes: &[u8]) -> Option<JournalHeader> {
    if bytes.len() < HEADER_LEN {
        return None;
    }
    if crc32(&bytes[0..40]) != le_u32(&bytes[40..44]) {
        return None;
    }
    if le_u64(&bytes[0..8]) != FILE_MAGIC || bytes[44..48] != [0, 0, 0, 0] {
        return None;
    }
    Some(JournalHeader {
        world_seed: le_u64(&bytes[8..16]),
        num_blocks: le_u64(&bytes[16..24]),
        rounds: le_u64(&bytes[24..32]),
        start_time: le_u64(&bytes[32..40]),
    })
}

/// Encodes one completed block. Returns `None` for the (defensively
/// handled, practically unreachable) case of a report the fixed-width
/// frame cannot represent faithfully — e.g. a located country code absent
/// from the country table. Such blocks are simply not journaled and are
/// re-analyzed on resume.
pub fn encode_record(r: &WorldBlockReport) -> Option<[u8; RECORD_LEN]> {
    let mut flags = 0u16;
    let mut buf = [0u8; RECORD_LEN];
    buf[0..4].copy_from_slice(&REC_MAGIC.to_le_bytes());
    let class = match r.summary.class {
        DiurnalClass::Strict => 0u8,
        DiurnalClass::Relaxed => 1,
        DiurnalClass::NonDiurnal => 2,
    };
    buf[6] = class;
    buf[7] = match r.region {
        Some(region) => {
            flags |= FLAG_REGION;
            Region::ALL.iter().position(|&x| x == region)? as u8
        }
        None => 0xFF,
    };
    buf[8..16].copy_from_slice(&r.summary.block_id.to_le_bytes());
    if let Some(phase) = r.summary.phase {
        flags |= FLAG_PHASE;
        buf[16..24].copy_from_slice(&phase.to_bits().to_le_bytes());
    }
    buf[24..32].copy_from_slice(&r.summary.strongest_cpd.to_bits().to_le_bytes());
    buf[32..40].copy_from_slice(&r.summary.mean_a.to_bits().to_le_bytes());
    buf[40..44].copy_from_slice(&r.summary.outages.to_le_bytes());
    buf[44..48].copy_from_slice(&r.asn.to_le_bytes());
    buf[48..56].copy_from_slice(&r.summary.total_probes.to_le_bytes());
    if let Some(loc) = r.location {
        flags |= FLAG_LOCATED;
        if loc.centroid_fallback {
            flags |= FLAG_CENTROID;
        }
        // The country must round-trip through the table so decode can
        // restore the same `&'static str`.
        let code = by_code(loc.country)?.code.as_bytes();
        if code.len() != 2 {
            return None;
        }
        buf[56..64].copy_from_slice(&loc.lon.to_bits().to_le_bytes());
        buf[64..72].copy_from_slice(&loc.lat.to_bits().to_le_bytes());
        buf[72..74].copy_from_slice(code);
    }
    buf[74..76].copy_from_slice(&r.alloc_date.year.to_le_bytes());
    buf[76] = r.alloc_date.month;
    if r.summary.stationary {
        flags |= FLAG_STATIONARY;
    }
    if r.planted_diurnal {
        flags |= FLAG_PLANTED;
    }
    let mut mask = 0u16;
    for f in &r.link_features {
        mask |= 1 << f.index();
    }
    buf[78..80].copy_from_slice(&mask.to_le_bytes());
    buf[4..6].copy_from_slice(&flags.to_le_bytes());
    let crc = crc32(&buf[0..80]);
    buf[80..84].copy_from_slice(&crc.to_le_bytes());
    Some(buf)
}

/// Decodes one record frame. Total: `None` on any damage or internal
/// inconsistency, never a panic. Validation order: CRC first (rejects
/// random corruption), then magic, then every field and cross-field
/// consistency rule the encoder guarantees.
pub fn decode_record(bytes: &[u8]) -> Option<WorldBlockReport> {
    if bytes.len() < RECORD_LEN {
        return None;
    }
    let b = &bytes[0..RECORD_LEN];
    if crc32(&b[0..80]) != le_u32(&b[80..84]) {
        return None;
    }
    if le_u32(&b[0..4]) != REC_MAGIC {
        return None;
    }
    let flags = le_u16(&b[4..6]);
    if flags & !FLAG_ALL != 0 || b[77] != 0 {
        return None;
    }
    let class = match b[6] {
        0 => DiurnalClass::Strict,
        1 => DiurnalClass::Relaxed,
        2 => DiurnalClass::NonDiurnal,
        _ => return None,
    };
    let region = if flags & FLAG_REGION != 0 {
        Some(*Region::ALL.get(b[7] as usize)?)
    } else {
        if b[7] != 0xFF {
            return None;
        }
        None
    };
    let phase = if flags & FLAG_PHASE != 0 {
        Some(f64::from_bits(le_u64(&b[16..24])))
    } else {
        if le_u64(&b[16..24]) != 0 {
            return None;
        }
        None
    };
    let location = if flags & FLAG_LOCATED != 0 {
        let code = std::str::from_utf8(&b[72..74]).ok()?;
        let country = by_code(code)?.code;
        Some(Location {
            lon: f64::from_bits(le_u64(&b[56..64])),
            lat: f64::from_bits(le_u64(&b[64..72])),
            country,
            centroid_fallback: flags & FLAG_CENTROID != 0,
        })
    } else {
        // An unlocated block must have the location fields zeroed (and no
        // centroid flag): anything else is corruption.
        if flags & FLAG_CENTROID != 0
            || le_u64(&b[56..64]) != 0
            || le_u64(&b[64..72]) != 0
            || b[72..74] != [0, 0]
        {
            return None;
        }
        None
    };
    let month = b[76];
    if !(1..=12).contains(&month) {
        return None;
    }
    let mask = le_u16(&b[78..80]);
    let mut link_features = Vec::new();
    for (i, &f) in LinkFeature::ALL.iter().enumerate() {
        if mask & (1 << i) != 0 {
            link_features.push(f);
        }
    }
    Some(WorldBlockReport {
        summary: crate::analyze::BlockSummary {
            block_id: le_u64(&b[8..16]),
            class,
            phase,
            strongest_cpd: f64::from_bits(le_u64(&b[24..32])),
            mean_a: f64::from_bits(le_u64(&b[32..40])),
            stationary: flags & FLAG_STATIONARY != 0,
            outages: le_u32(&b[40..44]),
            total_probes: le_u64(&b[48..56]),
        },
        location,
        region,
        alloc_date: YearMonth::new(le_u16(&b[74..76]), month),
        link_features,
        asn: le_u32(&b[44..48]),
        planted_diurnal: flags & FLAG_PLANTED != 0,
    })
}

/// Outcome of replaying a journal file's bytes.
#[derive(Debug)]
pub enum ReplayOutcome {
    /// No usable prefix (empty file, or damage starting in the header):
    /// the journal must be rewritten from scratch.
    Fresh {
        /// Whole-or-partial record frames dropped with the damage.
        discarded: u64,
    },
    /// A valid prefix was recovered.
    Resumed {
        /// Every block report in the valid prefix, in append order.
        reports: Vec<WorldBlockReport>,
        /// Byte length of the valid prefix (header + intact records);
        /// the file should be truncated here before appending resumes.
        valid_len: u64,
        /// Damaged or partial trailing frames discarded.
        discarded: u64,
    },
    /// The header is intact but names a different run.
    HeaderMismatch {
        /// Header found in the file.
        found: JournalHeader,
    },
}

/// Replays journal `bytes` against the run identity `expect`. Total —
/// never panics, whatever the input. Replay stops at the first damaged
/// frame and reports everything before it; the damaged suffix (counted in
/// whole-record units, rounded up) is discarded.
pub fn replay_bytes(bytes: &[u8], expect: &JournalHeader) -> ReplayOutcome {
    let frames = |len: usize| len.div_ceil(RECORD_LEN) as u64;
    if bytes.is_empty() {
        return ReplayOutcome::Fresh { discarded: 0 };
    }
    let header = match decode_header(bytes) {
        Some(h) => h,
        // Damage inside the header poisons everything after it.
        None => return ReplayOutcome::Fresh { discarded: frames(bytes.len()) },
    };
    if header != *expect {
        return ReplayOutcome::HeaderMismatch { found: header };
    }
    let mut reports = Vec::new();
    let mut offset = HEADER_LEN;
    while offset + RECORD_LEN <= bytes.len() {
        match decode_record(&bytes[offset..offset + RECORD_LEN]) {
            Some(r) => reports.push(r),
            None => break,
        }
        offset += RECORD_LEN;
    }
    ReplayOutcome::Resumed {
        reports,
        valid_len: offset as u64,
        discarded: frames(bytes.len() - offset),
    }
}

/// Append handle for a journal file positioned at the end of its valid
/// prefix. Records are `fsync`'d every [`SYNC_EVERY`] appends and on
/// [`sync`](Self::sync).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    unsynced: u32,
}

impl JournalWriter {
    /// Appends one completed block. Returns `Ok(false)` when the report
    /// cannot be represented in the fixed-width frame (the block is
    /// skipped, not corrupted — see [`encode_record`]).
    pub fn append(&mut self, report: &WorldBlockReport) -> io::Result<bool> {
        let Some(frame) = encode_record(report) else {
            return Ok(false);
        };
        self.file.write_all(&frame)?;
        self.unsynced += 1;
        if self.unsynced >= SYNC_EVERY {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        sleepwatch_obs::global().resilience.journal_records_written.incr();
        Ok(true)
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.unsynced = 0;
        self.file.sync_data()
    }
}

/// Replay statistics from [`open_resume`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records recovered from the journal.
    pub replayed: u64,
    /// Damaged or partial trailing frames discarded.
    pub discarded: u64,
}

/// Opens (or creates) the journal at `path` for the run identified by
/// `header`: replays any existing contents, truncates away a damaged
/// tail, and returns a writer positioned for appending plus the recovered
/// reports. Errors only on IO failure or a well-formed header from a
/// different run — corruption never errors, it only shrinks the prefix.
pub fn open_resume(
    path: &Path,
    header: &JournalHeader,
) -> Result<(JournalWriter, Vec<WorldBlockReport>, ReplayStats), JournalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let (reports, valid_len, stats) = match replay_bytes(&bytes, header) {
        ReplayOutcome::HeaderMismatch { found } => {
            return Err(JournalError::HeaderMismatch { expected: *header, found });
        }
        ReplayOutcome::Fresh { discarded } => {
            (Vec::new(), 0u64, ReplayStats { replayed: 0, discarded })
        }
        ReplayOutcome::Resumed { reports, valid_len, discarded } => {
            let stats = ReplayStats { replayed: reports.len() as u64, discarded };
            (reports, valid_len, stats)
        }
    };
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    if valid_len == 0 {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(header))?;
    } else {
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
    }
    file.sync_data()?;
    let obs = sleepwatch_obs::global();
    obs.resilience.journal_records_replayed.add(stats.replayed);
    obs.resilience.journal_records_discarded.add(stats.discarded);
    Ok((JournalWriter { file, unsynced: 0 }, reports, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::BlockSummary;

    fn sample_report(id: u64) -> WorldBlockReport {
        WorldBlockReport {
            summary: BlockSummary {
                block_id: id,
                class: DiurnalClass::Strict,
                phase: Some(1.25),
                strongest_cpd: 1.0,
                mean_a: 0.625,
                stationary: true,
                outages: 3,
                total_probes: 4_321,
            },
            location: Some(Location {
                lon: 103.8,
                lat: 1.35,
                country: by_code("SG").unwrap().code,
                centroid_fallback: false,
            }),
            region: Some(Region::ALL[4]),
            alloc_date: YearMonth::new(1998, 7),
            link_features: vec![LinkFeature::ALL[0], LinkFeature::ALL[9]],
            asn: 64_500,
            planted_diurnal: true,
        }
    }

    fn header() -> JournalHeader {
        JournalHeader { world_seed: 21, num_blocks: 60, rounds: 523, start_time: 1_000 }
    }

    fn assert_roundtrip(r: &WorldBlockReport) {
        let frame = encode_record(r).expect("encodable");
        let back = decode_record(&frame).expect("decodable");
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
    }

    #[test]
    fn record_roundtrips_exactly() {
        assert_roundtrip(&sample_report(7));
        // Unlocated, region-less, featureless, phaseless.
        let mut r = sample_report(8);
        r.location = None;
        r.region = None;
        r.summary.phase = None;
        r.link_features.clear();
        r.summary.stationary = false;
        r.planted_diurnal = false;
        assert_roundtrip(&r);
    }

    #[test]
    fn header_roundtrips_and_rejects_damage() {
        let h = header();
        let buf = encode_header(&h);
        assert_eq!(decode_header(&buf), Some(h));
        for i in 0..HEADER_LEN {
            let mut bad = buf;
            bad[i] ^= 0x40;
            assert_eq!(decode_header(&bad), None, "flip at byte {i} undetected");
        }
        assert_eq!(decode_header(&buf[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn every_single_bit_flip_in_a_record_is_caught() {
        let frame = encode_record(&sample_report(3)).unwrap();
        for bit in 0..RECORD_LEN * 8 {
            let mut bad = frame;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_record(&bad).is_none(), "bit flip {bit} undetected");
        }
    }

    #[test]
    fn replay_keeps_valid_prefix_and_discards_damaged_tail() {
        let h = header();
        let mut bytes = encode_header(&h).to_vec();
        for id in 0..5 {
            bytes.extend_from_slice(&encode_record(&sample_report(id)).unwrap());
        }
        // Corrupt record 3 and truncate record 4 in half.
        let r3 = HEADER_LEN + 3 * RECORD_LEN;
        bytes[r3 + 10] ^= 0xFF;
        bytes.truncate(HEADER_LEN + 4 * RECORD_LEN + RECORD_LEN / 2);
        match replay_bytes(&bytes, &h) {
            ReplayOutcome::Resumed { reports, valid_len, discarded } => {
                assert_eq!(reports.len(), 3);
                assert_eq!(valid_len as usize, HEADER_LEN + 3 * RECORD_LEN);
                assert_eq!(discarded, 2);
            }
            other => panic!("expected resume, got {other:?}"),
        }
    }

    #[test]
    fn replay_flags_foreign_headers() {
        let other = JournalHeader { world_seed: 99, ..header() };
        let bytes = encode_header(&other);
        assert!(matches!(
            replay_bytes(&bytes, &header()),
            ReplayOutcome::HeaderMismatch { found } if found == other
        ));
    }

    #[test]
    fn replay_of_garbage_is_fresh() {
        assert!(matches!(replay_bytes(&[], &header()), ReplayOutcome::Fresh { discarded: 0 }));
        let junk = vec![0xA5u8; 200];
        assert!(matches!(replay_bytes(&junk, &header()), ReplayOutcome::Fresh { .. }));
    }

    #[test]
    fn open_resume_creates_replays_and_truncates() {
        let dir = std::env::temp_dir().join(format!("swjournal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.journal");
        let _ = std::fs::remove_file(&path);
        let h = header();
        {
            let (mut w, reports, stats) = open_resume(&path, &h).unwrap();
            assert!(reports.is_empty());
            assert_eq!(stats, ReplayStats::default());
            for id in 0..4 {
                assert!(w.append(&sample_report(id)).unwrap());
            }
            w.sync().unwrap();
        }
        // Sever mid-record and resume.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - RECORD_LEN / 3]).unwrap();
        let (_w, reports, stats) = open_resume(&path, &h).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(stats, ReplayStats { replayed: 3, discarded: 1 });
        assert_eq!(std::fs::metadata(&path).unwrap().len(), (HEADER_LEN + 3 * RECORD_LEN) as u64);
        // A different run must refuse the file.
        let foreign = JournalHeader { rounds: 1, ..h };
        assert!(matches!(open_resume(&path, &foreign), Err(JournalError::HeaderMismatch { .. })));
        let _ = std::fs::remove_file(&path);
    }
}
