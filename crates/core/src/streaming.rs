//! Online diurnal detection: classify as observations arrive.
//!
//! The batch pipeline ([`crate::analyze`]) stores a full series and runs
//! one FFT at the end. An operational monitor wants a verdict *while*
//! collecting — and at 3.7 M blocks it cannot afford a full spectrum per
//! block per round. [`OnlineDetector`] keeps a bounded window of recent
//! `Âs` values and re-classifies on a coarse schedule, preceded by a cheap
//! Goertzel screen of the daily bin so obviously-flat blocks never pay for
//! a full FFT.

use sleepwatch_availability::Estimates;
use sleepwatch_spectral::{classify, diurnal_energy_ratio, DiurnalClass, DiurnalConfig, Spectrum};

/// Configuration for [`OnlineDetector`].
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Sliding-window length in rounds (default: 14 days).
    pub window_rounds: usize,
    /// Re-classify every this many rounds once the window is full
    /// (default: half a day).
    pub reclassify_every: usize,
    /// Goertzel energy-ratio screen below which the full FFT is skipped
    /// and the block stays non-diurnal (0 disables the screen).
    pub screen_threshold: f64,
    /// Sampling period in seconds.
    pub sample_period: f64,
    /// Classifier margins.
    pub diurnal: DiurnalConfig,
    /// Number of consecutive identical raw verdicts required before the
    /// public classification changes (1 = report immediately). Smooths the
    /// flapping the loose relaxed class otherwise shows on noisy flat
    /// blocks.
    pub hysteresis: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window_rounds: 1_833,
            reclassify_every: 65,
            screen_threshold: 2.0,
            sample_period: 660.0,
            diurnal: DiurnalConfig::default(),
            hysteresis: 1,
        }
    }
}

/// A plain-data copy of an [`OnlineDetector`]'s full state.
///
/// Snapshots exist so a live ingest shard can checkpoint warm-up state
/// and a resumed process can continue *exactly* where the killed one
/// stopped: a detector restored from a snapshot is behaviorally
/// indistinguishable from one that ran uninterrupted (see the round-trip
/// equivalence tests). The window is stored in chronological order, so
/// the snapshot is independent of the ring buffer's internal rotation.
#[derive(Debug, Clone)]
pub struct DetectorSnapshot {
    /// Detector configuration, restored verbatim.
    pub cfg: OnlineConfig,
    /// Window contents in chronological order (oldest first). Shorter
    /// than `cfg.window_rounds` while the detector is still warming up.
    pub window: Vec<f64>,
    /// Rounds ingested so far.
    pub rounds_seen: u64,
    /// Rounds since the last reclassification pass.
    pub since_classify: usize,
    /// Public classification.
    pub class: DiurnalClass,
    /// Phase of the daily component, when known.
    pub phase: Option<f64>,
    /// In-flight hysteresis state: candidate class and streak length.
    pub pending: Option<(DiurnalClass, u32)>,
    /// Full FFT classifications performed.
    pub classifications: u64,
    /// Reclassifications skipped by the Goertzel screen.
    pub screens_skipped: u64,
}

const SNAPSHOT_MAGIC: u32 = 0x5357_4454; // "SWDT"
const SNAPSHOT_VERSION: u16 = 1;

fn class_tag(class: DiurnalClass) -> u8 {
    match class {
        DiurnalClass::Strict => 0,
        DiurnalClass::Relaxed => 1,
        DiurnalClass::NonDiurnal => 2,
    }
}

fn tag_class(tag: u8) -> Option<DiurnalClass> {
    match tag {
        0 => Some(DiurnalClass::Strict),
        1 => Some(DiurnalClass::Relaxed),
        2 => Some(DiurnalClass::NonDiurnal),
        _ => None,
    }
}

/// Little-endian field reader over a byte slice; every accessor returns
/// `None` past the end, so malformed input can never panic.
struct Fields<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Fields<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

impl DetectorSnapshot {
    /// Serializes the snapshot to a self-describing little-endian byte
    /// record (magic, version, config, verdict state, window).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96 + 8 * self.window.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.cfg.window_rounds as u64).to_le_bytes());
        out.extend_from_slice(&(self.cfg.reclassify_every as u64).to_le_bytes());
        out.extend_from_slice(&self.cfg.screen_threshold.to_le_bytes());
        out.extend_from_slice(&self.cfg.sample_period.to_le_bytes());
        out.extend_from_slice(&self.cfg.diurnal.strict_ratio.to_le_bytes());
        out.extend_from_slice(&(self.cfg.diurnal.bin_tolerance as u64).to_le_bytes());
        out.extend_from_slice(&self.cfg.diurnal.min_days.to_le_bytes());
        out.extend_from_slice(&self.cfg.hysteresis.to_le_bytes());
        out.extend_from_slice(&self.rounds_seen.to_le_bytes());
        out.extend_from_slice(&(self.since_classify as u64).to_le_bytes());
        out.extend_from_slice(&self.classifications.to_le_bytes());
        out.extend_from_slice(&self.screens_skipped.to_le_bytes());
        out.push(class_tag(self.class));
        match self.phase {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.to_le_bytes());
            }
            None => out.push(0),
        }
        match self.pending {
            Some((c, n)) => {
                out.push(1);
                out.push(class_tag(c));
                out.extend_from_slice(&n.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(self.window.len() as u64).to_le_bytes());
        for v in &self.window {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes a record produced by [`DetectorSnapshot::encode`]. Returns
    /// `None` for anything malformed: wrong magic or version, truncated
    /// fields, invalid tags, a window longer than its config allows, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<DetectorSnapshot> {
        let mut f = Fields { bytes, at: 0 };
        if f.u32()? != SNAPSHOT_MAGIC || f.u16()? != SNAPSHOT_VERSION {
            return None;
        }
        let cfg = OnlineConfig {
            window_rounds: usize::try_from(f.u64()?).ok()?,
            reclassify_every: usize::try_from(f.u64()?).ok()?,
            screen_threshold: f.f64()?,
            sample_period: f.f64()?,
            diurnal: DiurnalConfig {
                strict_ratio: f.f64()?,
                bin_tolerance: usize::try_from(f.u64()?).ok()?,
                min_days: f.f64()?,
            },
            hysteresis: f.u32()?,
        };
        if cfg.window_rounds < 4 {
            return None;
        }
        let rounds_seen = f.u64()?;
        let since_classify = usize::try_from(f.u64()?).ok()?;
        let classifications = f.u64()?;
        let screens_skipped = f.u64()?;
        let class = tag_class(f.u8()?)?;
        let phase = match f.u8()? {
            0 => None,
            1 => Some(f.f64()?),
            _ => return None,
        };
        let pending = match f.u8()? {
            0 => None,
            1 => Some((tag_class(f.u8()?)?, f.u32()?)),
            _ => return None,
        };
        let len = usize::try_from(f.u64()?).ok()?;
        if len > cfg.window_rounds {
            return None;
        }
        let mut window = Vec::with_capacity(len);
        for _ in 0..len {
            window.push(f.f64()?);
        }
        if f.at != bytes.len() {
            return None;
        }
        Some(DetectorSnapshot {
            cfg,
            window,
            rounds_seen,
            since_classify,
            class,
            phase,
            pending,
            classifications,
            screens_skipped,
        })
    }
}

/// Incremental diurnal detector over a sliding window of `Âs` estimates.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    cfg: OnlineConfig,
    window: Vec<f64>,
    head: usize,
    filled: bool,
    rounds_seen: u64,
    since_classify: usize,
    class: DiurnalClass,
    phase: Option<f64>,
    pending: Option<(DiurnalClass, u32)>,
    classifications: u64,
    screens_skipped: u64,
}

impl OnlineDetector {
    /// Creates a detector.
    pub fn new(cfg: OnlineConfig) -> Self {
        assert!(cfg.window_rounds >= 4, "window too small to classify");
        OnlineDetector {
            window: Vec::with_capacity(cfg.window_rounds),
            head: 0,
            filled: false,
            rounds_seen: 0,
            since_classify: 0,
            class: DiurnalClass::NonDiurnal,
            phase: None,
            pending: None,
            classifications: 0,
            screens_skipped: 0,
            cfg,
        }
    }

    /// Feeds one round's estimates; returns the current classification.
    pub fn push(&mut self, estimates: &Estimates) -> DiurnalClass {
        self.push_value(estimates.a_short)
    }

    /// Feeds one raw `Âs` value.
    pub fn push_value(&mut self, a_short: f64) -> DiurnalClass {
        if self.window.len() < self.cfg.window_rounds {
            self.window.push(a_short);
            self.filled = self.window.len() == self.cfg.window_rounds;
        } else {
            self.window[self.head] = a_short;
            self.head = (self.head + 1) % self.cfg.window_rounds;
        }
        self.rounds_seen += 1;
        self.since_classify += 1;
        if self.filled && self.since_classify >= self.cfg.reclassify_every {
            self.since_classify = 0;
            self.reclassify();
        }
        self.class
    }

    /// The window in chronological order.
    fn ordered_window(&self) -> Vec<f64> {
        if !self.filled || self.head == 0 {
            self.window.clone()
        } else {
            let mut out = Vec::with_capacity(self.window.len());
            out.extend_from_slice(&self.window[self.head..]);
            out.extend_from_slice(&self.window[..self.head]);
            out
        }
    }

    fn reclassify(&mut self) {
        let series = self.ordered_window();
        let (raw_class, raw_phase) = if self.cfg.screen_threshold > 0.0
            && diurnal_energy_ratio(&series, self.cfg.sample_period) < self.cfg.screen_threshold
        {
            self.screens_skipped += 1;
            (DiurnalClass::NonDiurnal, None)
        } else {
            let spectrum = Spectrum::compute(&series, self.cfg.sample_period);
            let report = classify(&spectrum, &self.cfg.diurnal);
            self.classifications += 1;
            (report.class, report.phase)
        };
        self.apply_verdict(raw_class, raw_phase);
    }

    /// Applies hysteresis: a change must repeat `hysteresis` times in a row
    /// before it becomes the public classification.
    fn apply_verdict(&mut self, raw_class: DiurnalClass, raw_phase: Option<f64>) {
        if raw_class == self.class {
            self.pending = None;
            self.phase = raw_phase.or(self.phase);
            return;
        }
        let needed = self.cfg.hysteresis.max(1);
        let count = match self.pending {
            Some((c, n)) if c == raw_class => n + 1,
            _ => 1,
        };
        if count >= needed {
            self.class = raw_class;
            self.phase = raw_phase;
            self.pending = None;
        } else {
            self.pending = Some((raw_class, count));
        }
    }

    /// Current verdict.
    pub fn class(&self) -> DiurnalClass {
        self.class
    }

    /// Phase of the daily component, when diurnal.
    pub fn phase(&self) -> Option<f64> {
        self.phase
    }

    /// `true` once the window holds a full span.
    pub fn warmed_up(&self) -> bool {
        self.filled
    }

    /// Rounds ingested.
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }

    /// Full FFT classifications performed (cost accounting).
    pub fn classifications(&self) -> u64 {
        self.classifications
    }

    /// Re-classifications avoided by the Goertzel screen.
    pub fn screens_skipped(&self) -> u64 {
        self.screens_skipped
    }

    /// Captures the detector's full state for checkpointing.
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            cfg: self.cfg,
            window: self.ordered_window(),
            rounds_seen: self.rounds_seen,
            since_classify: self.since_classify,
            class: self.class,
            phase: self.phase,
            pending: self.pending,
            classifications: self.classifications,
            screens_skipped: self.screens_skipped,
        }
    }

    /// Rebuilds a detector from a snapshot. The restored detector is
    /// behaviorally identical to the one that produced the snapshot: fed
    /// the same remaining stream, it yields the same verdicts, phases and
    /// cost counters as an uninterrupted detector.
    pub fn restore(snap: &DetectorSnapshot) -> OnlineDetector {
        assert!(snap.cfg.window_rounds >= 4, "window too small to classify");
        assert!(
            snap.window.len() <= snap.cfg.window_rounds,
            "snapshot window exceeds its configured length"
        );
        let mut window = Vec::with_capacity(snap.cfg.window_rounds);
        window.extend_from_slice(&snap.window);
        // The snapshot window is chronological, so `head = 0` points at
        // the oldest sample and the ring resumes rotating correctly.
        OnlineDetector {
            cfg: snap.cfg,
            filled: window.len() == snap.cfg.window_rounds,
            window,
            head: 0,
            rounds_seen: snap.rounds_seen,
            since_classify: snap.since_classify,
            class: snap.class,
            phase: snap.phase,
            pending: snap.pending,
            classifications: snap.classifications,
            screens_skipped: snap.screens_skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RPD: f64 = 86_400.0 / 660.0;

    fn diurnal_value(round: usize) -> f64 {
        let frac = (round as f64 / RPD).fract();
        if frac < 0.4 {
            0.8
        } else {
            0.2
        }
    }

    fn small_cfg() -> OnlineConfig {
        OnlineConfig {
            window_rounds: (7.0 * RPD) as usize,
            reclassify_every: 50,
            ..Default::default()
        }
    }

    #[test]
    fn detects_diurnal_after_warmup() {
        let mut det = OnlineDetector::new(small_cfg());
        let mut first_detection = None;
        for r in 0..(10.0 * RPD) as usize {
            let class = det.push_value(diurnal_value(r));
            if class.is_strict() && first_detection.is_none() {
                first_detection = Some(r);
            }
        }
        let at = first_detection.expect("diurnal block detected");
        assert!(det.warmed_up());
        // Detection within one reclassify interval of window fill.
        assert!(at <= (7.0 * RPD) as usize + 51, "detected at {at}");
    }

    #[test]
    fn flat_stream_never_classifies_and_skips_ffts() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..(10.0 * RPD) as usize {
            let noise = ((r as f64 * 12.9898).sin() * 43_758.545_3).fract() * 0.05;
            assert_eq!(det.push_value(0.6 + noise), DiurnalClass::NonDiurnal);
        }
        assert!(det.screens_skipped() > 0, "screen should fire");
        assert_eq!(det.classifications(), 0, "no full FFT needed for flat blocks");
    }

    #[test]
    fn behavior_change_flips_the_verdict() {
        // Diurnal for 10 days, then permanently flat: the verdict must
        // decay back to NonDiurnal once the window slides past the change.
        let mut det = OnlineDetector::new(small_cfg());
        let change = (10.0 * RPD) as usize;
        for r in 0..change {
            det.push_value(diurnal_value(r));
        }
        assert!(det.class().is_diurnal(), "diurnal before the change");
        for r in change..change + (9.0 * RPD) as usize {
            det.push_value(0.6 + 0.02 * ((r % 7) as f64));
        }
        assert_eq!(det.class(), DiurnalClass::NonDiurnal, "verdict follows behaviour");
    }

    #[test]
    fn no_verdict_before_warmup() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..100 {
            assert_eq!(det.push_value(diurnal_value(r)), DiurnalClass::NonDiurnal);
        }
        assert!(!det.warmed_up());
        assert_eq!(det.classifications(), 0);
    }

    #[test]
    fn screen_can_be_disabled() {
        let mut cfg = small_cfg();
        cfg.screen_threshold = 0.0;
        let mut det = OnlineDetector::new(cfg);
        for _ in 0..(8.0 * RPD) as usize {
            det.push_value(0.5);
        }
        assert!(det.classifications() > 0, "without the screen every pass FFTs");
    }

    #[test]
    fn phase_is_available_when_diurnal() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..(9.0 * RPD) as usize {
            det.push_value(diurnal_value(r));
        }
        assert!(det.class().is_diurnal());
        assert!(det.phase().is_some());
    }

    #[test]
    fn hysteresis_suppresses_single_round_flaps() {
        // Raw verdicts: N, R, N, R, R, R — with hysteresis 2 the public
        // class only changes once the verdict repeats.
        let mut det = OnlineDetector::new(OnlineConfig {
            window_rounds: 8,
            hysteresis: 2,
            ..Default::default()
        });
        use DiurnalClass::*;
        det.apply_verdict(Relaxed, Some(0.1));
        assert_eq!(det.class(), NonDiurnal, "first flap suppressed");
        det.apply_verdict(NonDiurnal, None);
        det.apply_verdict(Relaxed, Some(0.1));
        assert_eq!(det.class(), NonDiurnal, "counter reset by the revert");
        det.apply_verdict(Relaxed, Some(0.2));
        assert_eq!(det.class(), Relaxed, "two in a row switch the verdict");
        assert_eq!(det.phase(), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn rejects_tiny_window() {
        let _ = OnlineDetector::new(OnlineConfig { window_rounds: 2, ..Default::default() });
    }

    /// Feeds a raw-verdict sequence through the hysteresis filter and
    /// returns the rounds-between-flips of the public classification.
    fn flip_gaps(hysteresis: u32, raw: &[DiurnalClass]) -> Vec<usize> {
        let mut det = OnlineDetector::new(OnlineConfig {
            window_rounds: 8,
            hysteresis,
            ..Default::default()
        });
        let mut last_class = det.class();
        let mut last_flip = 0usize;
        let mut gaps = Vec::new();
        for (i, &c) in raw.iter().enumerate() {
            det.apply_verdict(c, None);
            if det.class() != last_class {
                gaps.push(i - last_flip);
                last_flip = i;
                last_class = det.class();
            }
        }
        gaps
    }

    #[test]
    fn verdicts_never_flap_faster_than_the_hysteresis_window() {
        use DiurnalClass::*;
        // A block flipping diurnal → flat → diurnal, with single-round
        // noise sprinkled in: adversarial input for the filter.
        let mut raw = Vec::new();
        raw.extend(std::iter::repeat(Strict).take(10));
        raw.push(NonDiurnal); // one-round dropout
        raw.extend(std::iter::repeat(Strict).take(5));
        raw.extend(std::iter::repeat(NonDiurnal).take(10));
        raw.push(Strict); // one-round blip
        raw.extend(std::iter::repeat(NonDiurnal).take(5));
        raw.extend(std::iter::repeat(Strict).take(10));
        for h in [2u32, 3, 5] {
            let gaps = flip_gaps(h, &raw);
            // After the first flip, consecutive public flips must be at
            // least the hysteresis window apart: a change needs h
            // consecutive identical raw verdicts to take effect.
            for &g in gaps.iter().skip(1) {
                assert!(g >= h as usize, "hysteresis {h}: public class flipped after {g} rounds");
            }
        }
    }

    #[test]
    fn single_round_flips_are_invisible_above_hysteresis_one() {
        use DiurnalClass::*;
        // Strictly alternating raw verdicts: with hysteresis ≥ 2 the
        // public class must never move at all.
        let raw: Vec<DiurnalClass> =
            (0..40).map(|i| if i % 2 == 0 { Strict } else { NonDiurnal }).collect();
        assert!(flip_gaps(2, &raw).is_empty(), "alternating verdicts leaked through");
        // With hysteresis 1 the same stream flaps constantly — the
        // difference is exactly what the filter is for.
        assert!(flip_gaps(1, &raw).len() > 10);
    }

    #[test]
    fn hysteresis_delays_but_does_not_lose_real_changes() {
        use DiurnalClass::*;
        let mut raw = Vec::new();
        raw.extend(std::iter::repeat(Strict).take(8));
        raw.extend(std::iter::repeat(NonDiurnal).take(8));
        raw.extend(std::iter::repeat(Strict).take(8));
        let mut det = OnlineDetector::new(OnlineConfig {
            window_rounds: 8,
            hysteresis: 3,
            ..Default::default()
        });
        let mut classes = Vec::new();
        for &c in &raw {
            det.apply_verdict(c, if c == Strict { Some(0.3) } else { None });
            classes.push(det.class());
        }
        // All three phases eventually surface...
        assert_eq!(classes[7], Strict);
        assert_eq!(classes[15], NonDiurnal);
        assert_eq!(classes[23], Strict);
        // ...each exactly hysteresis−1 verdicts late (the change lands on
        // the 3rd consecutive new verdict).
        assert_eq!(classes[8 + 1], Strict, "still old class one verdict in");
        assert_eq!(classes[8 + 2], NonDiurnal, "flips on the 3rd new verdict");
    }

    /// Asserts every externally observable detector property matches.
    fn assert_same_state(a: &OnlineDetector, b: &OnlineDetector, ctx: &str) {
        assert_eq!(a.class(), b.class(), "{ctx}: class");
        assert_eq!(a.phase(), b.phase(), "{ctx}: phase");
        assert_eq!(a.warmed_up(), b.warmed_up(), "{ctx}: warmed_up");
        assert_eq!(a.rounds_seen(), b.rounds_seen(), "{ctx}: rounds_seen");
        assert_eq!(a.classifications(), b.classifications(), "{ctx}: classifications");
        assert_eq!(a.screens_skipped(), b.screens_skipped(), "{ctx}: screens_skipped");
    }

    /// The round-trip equivalence pin: at *every* cut point — before
    /// warm-up, mid-window, straddling reclassify boundaries, and right
    /// through a behaviour change — a detector restored from a snapshot
    /// must track an uninterrupted detector exactly, round by round, for
    /// the whole remaining stream.
    #[test]
    fn snapshot_restore_equals_uninterrupted_detector() {
        let total = (12.0 * RPD) as usize;
        let change = (9.0 * RPD) as usize;
        let value = |r: usize| if r < change { diurnal_value(r) } else { 0.55 };
        let cuts = [
            1,
            100,                       // before warm-up
            (7.0 * RPD) as usize - 1,  // one round short of window fill
            (7.0 * RPD) as usize + 49, // one round before a reclassify
            (7.0 * RPD) as usize + 50, // exactly on a reclassify
            change + 17,               // after the behaviour change
        ];
        for cut in cuts {
            let mut uninterrupted = OnlineDetector::new(small_cfg());
            let mut first_half = OnlineDetector::new(small_cfg());
            for r in 0..cut {
                uninterrupted.push_value(value(r));
                first_half.push_value(value(r));
            }
            let snap = first_half.snapshot();
            let mut restored = OnlineDetector::restore(&snap);
            assert_same_state(&uninterrupted, &restored, &format!("cut {cut}, at restore"));
            for r in cut..total {
                let want = uninterrupted.push_value(value(r));
                let got = restored.push_value(value(r));
                assert_eq!(want, got, "cut {cut}: verdict diverged at round {r}");
            }
            assert_same_state(&uninterrupted, &restored, &format!("cut {cut}, end of stream"));
        }
    }

    #[test]
    fn snapshot_survives_nested_snapshot_restore_chains() {
        // Restoring, running, and snapshotting again must compose: three
        // chained restore hops still match the uninterrupted detector.
        let total = (10.0 * RPD) as usize;
        let mut reference = OnlineDetector::new(small_cfg());
        let mut hopped = OnlineDetector::new(small_cfg());
        for r in 0..total {
            reference.push_value(diurnal_value(r));
            if r % 300 == 299 {
                hopped = OnlineDetector::restore(&hopped.snapshot());
            }
            hopped.push_value(diurnal_value(r));
        }
        assert_same_state(&reference, &hopped, "after three restore hops");
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let mut det = OnlineDetector::new(OnlineConfig { hysteresis: 2, ..small_cfg() });
        for r in 0..(8.0 * RPD) as usize {
            det.push_value(diurnal_value(r));
        }
        let snap = det.snapshot();
        let bytes = snap.encode();
        let decoded = DetectorSnapshot::decode(&bytes).expect("decode own encoding");
        assert_eq!(bytes, decoded.encode(), "re-encode must be byte-identical");
        // The decoded snapshot restores to the same behaviour too.
        let mut a = OnlineDetector::restore(&snap);
        let mut b = OnlineDetector::restore(&decoded);
        for r in 0..200 {
            assert_eq!(a.push_value(diurnal_value(r)), b.push_value(diurnal_value(r)));
        }
        assert_same_state(&a, &b, "decoded snapshot");
    }

    #[test]
    fn snapshot_decode_rejects_malformed_input() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..500 {
            det.push_value(diurnal_value(r));
        }
        let bytes = det.snapshot().encode();
        assert!(DetectorSnapshot::decode(&[]).is_none(), "empty");
        for cut in [1, 4, 6, 40, bytes.len() - 1] {
            assert!(DetectorSnapshot::decode(&bytes[..cut]).is_none(), "truncated at {cut}");
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(DetectorSnapshot::decode(&wrong_magic).is_none(), "magic");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(DetectorSnapshot::decode(&trailing).is_none(), "trailing garbage");
    }

    #[test]
    fn end_to_end_flap_rate_is_bounded_on_flipping_input() {
        // Full detector path (window + reclassify + hysteresis): a block
        // that is diurnal for 10 days, flat for 10, diurnal for 10 again
        // must produce at most a handful of public transitions — never a
        // flap per reclassification.
        let cfg = OnlineConfig { hysteresis: 2, ..small_cfg() };
        let reclassify = cfg.reclassify_every;
        let mut det = OnlineDetector::new(cfg);
        let phase_len = (10.0 * RPD) as usize;
        let mut flips = Vec::new();
        let mut last = det.class();
        for r in 0..3 * phase_len {
            let v = match r / phase_len {
                0 | 2 => diurnal_value(r),
                _ => 0.55,
            };
            det.push_value(v);
            if det.class() != last {
                flips.push(r);
                last = det.class();
            }
        }
        assert!(
            (2..=6).contains(&flips.len()),
            "expected a few genuine transitions, saw {} at {flips:?}",
            flips.len()
        );
        // Consecutive flips are at least hysteresis reclassification
        // periods apart.
        for w in flips.windows(2) {
            assert!(
                w[1] - w[0] >= 2 * reclassify,
                "public flips {} and {} closer than the hysteresis window",
                w[0],
                w[1]
            );
        }
    }
}
