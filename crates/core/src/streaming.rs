//! Online diurnal detection: classify as observations arrive.
//!
//! The batch pipeline ([`crate::analyze`]) stores a full series and runs
//! one FFT at the end. An operational monitor wants a verdict *while*
//! collecting — and at 3.7 M blocks it cannot afford a full spectrum per
//! block per round. [`OnlineDetector`] keeps a bounded window of recent
//! `Âs` values and re-classifies on a coarse schedule, preceded by a cheap
//! Goertzel screen of the daily bin so obviously-flat blocks never pay for
//! a full FFT.

use sleepwatch_availability::Estimates;
use sleepwatch_spectral::{classify, diurnal_energy_ratio, DiurnalClass, DiurnalConfig, Spectrum};

/// Configuration for [`OnlineDetector`].
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Sliding-window length in rounds (default: 14 days).
    pub window_rounds: usize,
    /// Re-classify every this many rounds once the window is full
    /// (default: half a day).
    pub reclassify_every: usize,
    /// Goertzel energy-ratio screen below which the full FFT is skipped
    /// and the block stays non-diurnal (0 disables the screen).
    pub screen_threshold: f64,
    /// Sampling period in seconds.
    pub sample_period: f64,
    /// Classifier margins.
    pub diurnal: DiurnalConfig,
    /// Number of consecutive identical raw verdicts required before the
    /// public classification changes (1 = report immediately). Smooths the
    /// flapping the loose relaxed class otherwise shows on noisy flat
    /// blocks.
    pub hysteresis: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window_rounds: 1_833,
            reclassify_every: 65,
            screen_threshold: 2.0,
            sample_period: 660.0,
            diurnal: DiurnalConfig::default(),
            hysteresis: 1,
        }
    }
}

/// Incremental diurnal detector over a sliding window of `Âs` estimates.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    cfg: OnlineConfig,
    window: Vec<f64>,
    head: usize,
    filled: bool,
    rounds_seen: u64,
    since_classify: usize,
    class: DiurnalClass,
    phase: Option<f64>,
    pending: Option<(DiurnalClass, u32)>,
    classifications: u64,
    screens_skipped: u64,
}

impl OnlineDetector {
    /// Creates a detector.
    pub fn new(cfg: OnlineConfig) -> Self {
        assert!(cfg.window_rounds >= 4, "window too small to classify");
        OnlineDetector {
            window: Vec::with_capacity(cfg.window_rounds),
            head: 0,
            filled: false,
            rounds_seen: 0,
            since_classify: 0,
            class: DiurnalClass::NonDiurnal,
            phase: None,
            pending: None,
            classifications: 0,
            screens_skipped: 0,
            cfg,
        }
    }

    /// Feeds one round's estimates; returns the current classification.
    pub fn push(&mut self, estimates: &Estimates) -> DiurnalClass {
        self.push_value(estimates.a_short)
    }

    /// Feeds one raw `Âs` value.
    pub fn push_value(&mut self, a_short: f64) -> DiurnalClass {
        if self.window.len() < self.cfg.window_rounds {
            self.window.push(a_short);
            self.filled = self.window.len() == self.cfg.window_rounds;
        } else {
            self.window[self.head] = a_short;
            self.head = (self.head + 1) % self.cfg.window_rounds;
        }
        self.rounds_seen += 1;
        self.since_classify += 1;
        if self.filled && self.since_classify >= self.cfg.reclassify_every {
            self.since_classify = 0;
            self.reclassify();
        }
        self.class
    }

    /// The window in chronological order.
    fn ordered_window(&self) -> Vec<f64> {
        if !self.filled || self.head == 0 {
            self.window.clone()
        } else {
            let mut out = Vec::with_capacity(self.window.len());
            out.extend_from_slice(&self.window[self.head..]);
            out.extend_from_slice(&self.window[..self.head]);
            out
        }
    }

    fn reclassify(&mut self) {
        let series = self.ordered_window();
        let (raw_class, raw_phase) = if self.cfg.screen_threshold > 0.0
            && diurnal_energy_ratio(&series, self.cfg.sample_period) < self.cfg.screen_threshold
        {
            self.screens_skipped += 1;
            (DiurnalClass::NonDiurnal, None)
        } else {
            let spectrum = Spectrum::compute(&series, self.cfg.sample_period);
            let report = classify(&spectrum, &self.cfg.diurnal);
            self.classifications += 1;
            (report.class, report.phase)
        };
        self.apply_verdict(raw_class, raw_phase);
    }

    /// Applies hysteresis: a change must repeat `hysteresis` times in a row
    /// before it becomes the public classification.
    fn apply_verdict(&mut self, raw_class: DiurnalClass, raw_phase: Option<f64>) {
        if raw_class == self.class {
            self.pending = None;
            self.phase = raw_phase.or(self.phase);
            return;
        }
        let needed = self.cfg.hysteresis.max(1);
        let count = match self.pending {
            Some((c, n)) if c == raw_class => n + 1,
            _ => 1,
        };
        if count >= needed {
            self.class = raw_class;
            self.phase = raw_phase;
            self.pending = None;
        } else {
            self.pending = Some((raw_class, count));
        }
    }

    /// Current verdict.
    pub fn class(&self) -> DiurnalClass {
        self.class
    }

    /// Phase of the daily component, when diurnal.
    pub fn phase(&self) -> Option<f64> {
        self.phase
    }

    /// `true` once the window holds a full span.
    pub fn warmed_up(&self) -> bool {
        self.filled
    }

    /// Rounds ingested.
    pub fn rounds_seen(&self) -> u64 {
        self.rounds_seen
    }

    /// Full FFT classifications performed (cost accounting).
    pub fn classifications(&self) -> u64 {
        self.classifications
    }

    /// Re-classifications avoided by the Goertzel screen.
    pub fn screens_skipped(&self) -> u64 {
        self.screens_skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RPD: f64 = 86_400.0 / 660.0;

    fn diurnal_value(round: usize) -> f64 {
        let frac = (round as f64 / RPD).fract();
        if frac < 0.4 {
            0.8
        } else {
            0.2
        }
    }

    fn small_cfg() -> OnlineConfig {
        OnlineConfig {
            window_rounds: (7.0 * RPD) as usize,
            reclassify_every: 50,
            ..Default::default()
        }
    }

    #[test]
    fn detects_diurnal_after_warmup() {
        let mut det = OnlineDetector::new(small_cfg());
        let mut first_detection = None;
        for r in 0..(10.0 * RPD) as usize {
            let class = det.push_value(diurnal_value(r));
            if class.is_strict() && first_detection.is_none() {
                first_detection = Some(r);
            }
        }
        let at = first_detection.expect("diurnal block detected");
        assert!(det.warmed_up());
        // Detection within one reclassify interval of window fill.
        assert!(at <= (7.0 * RPD) as usize + 51, "detected at {at}");
    }

    #[test]
    fn flat_stream_never_classifies_and_skips_ffts() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..(10.0 * RPD) as usize {
            let noise = ((r as f64 * 12.9898).sin() * 43_758.545_3).fract() * 0.05;
            assert_eq!(det.push_value(0.6 + noise), DiurnalClass::NonDiurnal);
        }
        assert!(det.screens_skipped() > 0, "screen should fire");
        assert_eq!(det.classifications(), 0, "no full FFT needed for flat blocks");
    }

    #[test]
    fn behavior_change_flips_the_verdict() {
        // Diurnal for 10 days, then permanently flat: the verdict must
        // decay back to NonDiurnal once the window slides past the change.
        let mut det = OnlineDetector::new(small_cfg());
        let change = (10.0 * RPD) as usize;
        for r in 0..change {
            det.push_value(diurnal_value(r));
        }
        assert!(det.class().is_diurnal(), "diurnal before the change");
        for r in change..change + (9.0 * RPD) as usize {
            det.push_value(0.6 + 0.02 * ((r % 7) as f64));
        }
        assert_eq!(det.class(), DiurnalClass::NonDiurnal, "verdict follows behaviour");
    }

    #[test]
    fn no_verdict_before_warmup() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..100 {
            assert_eq!(det.push_value(diurnal_value(r)), DiurnalClass::NonDiurnal);
        }
        assert!(!det.warmed_up());
        assert_eq!(det.classifications(), 0);
    }

    #[test]
    fn screen_can_be_disabled() {
        let mut cfg = small_cfg();
        cfg.screen_threshold = 0.0;
        let mut det = OnlineDetector::new(cfg);
        for _ in 0..(8.0 * RPD) as usize {
            det.push_value(0.5);
        }
        assert!(det.classifications() > 0, "without the screen every pass FFTs");
    }

    #[test]
    fn phase_is_available_when_diurnal() {
        let mut det = OnlineDetector::new(small_cfg());
        for r in 0..(9.0 * RPD) as usize {
            det.push_value(diurnal_value(r));
        }
        assert!(det.class().is_diurnal());
        assert!(det.phase().is_some());
    }

    #[test]
    fn hysteresis_suppresses_single_round_flaps() {
        // Raw verdicts: N, R, N, R, R, R — with hysteresis 2 the public
        // class only changes once the verdict repeats.
        let mut det = OnlineDetector::new(OnlineConfig {
            window_rounds: 8,
            hysteresis: 2,
            ..Default::default()
        });
        use DiurnalClass::*;
        det.apply_verdict(Relaxed, Some(0.1));
        assert_eq!(det.class(), NonDiurnal, "first flap suppressed");
        det.apply_verdict(NonDiurnal, None);
        det.apply_verdict(Relaxed, Some(0.1));
        assert_eq!(det.class(), NonDiurnal, "counter reset by the revert");
        det.apply_verdict(Relaxed, Some(0.2));
        assert_eq!(det.class(), Relaxed, "two in a row switch the verdict");
        assert_eq!(det.phase(), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "window too small")]
    fn rejects_tiny_window() {
        let _ = OnlineDetector::new(OnlineConfig { window_rounds: 2, ..Default::default() });
    }

    /// Feeds a raw-verdict sequence through the hysteresis filter and
    /// returns the rounds-between-flips of the public classification.
    fn flip_gaps(hysteresis: u32, raw: &[DiurnalClass]) -> Vec<usize> {
        let mut det = OnlineDetector::new(OnlineConfig {
            window_rounds: 8,
            hysteresis,
            ..Default::default()
        });
        let mut last_class = det.class();
        let mut last_flip = 0usize;
        let mut gaps = Vec::new();
        for (i, &c) in raw.iter().enumerate() {
            det.apply_verdict(c, None);
            if det.class() != last_class {
                gaps.push(i - last_flip);
                last_flip = i;
                last_class = det.class();
            }
        }
        gaps
    }

    #[test]
    fn verdicts_never_flap_faster_than_the_hysteresis_window() {
        use DiurnalClass::*;
        // A block flipping diurnal → flat → diurnal, with single-round
        // noise sprinkled in: adversarial input for the filter.
        let mut raw = Vec::new();
        raw.extend(std::iter::repeat(Strict).take(10));
        raw.push(NonDiurnal); // one-round dropout
        raw.extend(std::iter::repeat(Strict).take(5));
        raw.extend(std::iter::repeat(NonDiurnal).take(10));
        raw.push(Strict); // one-round blip
        raw.extend(std::iter::repeat(NonDiurnal).take(5));
        raw.extend(std::iter::repeat(Strict).take(10));
        for h in [2u32, 3, 5] {
            let gaps = flip_gaps(h, &raw);
            // After the first flip, consecutive public flips must be at
            // least the hysteresis window apart: a change needs h
            // consecutive identical raw verdicts to take effect.
            for &g in gaps.iter().skip(1) {
                assert!(g >= h as usize, "hysteresis {h}: public class flipped after {g} rounds");
            }
        }
    }

    #[test]
    fn single_round_flips_are_invisible_above_hysteresis_one() {
        use DiurnalClass::*;
        // Strictly alternating raw verdicts: with hysteresis ≥ 2 the
        // public class must never move at all.
        let raw: Vec<DiurnalClass> =
            (0..40).map(|i| if i % 2 == 0 { Strict } else { NonDiurnal }).collect();
        assert!(flip_gaps(2, &raw).is_empty(), "alternating verdicts leaked through");
        // With hysteresis 1 the same stream flaps constantly — the
        // difference is exactly what the filter is for.
        assert!(flip_gaps(1, &raw).len() > 10);
    }

    #[test]
    fn hysteresis_delays_but_does_not_lose_real_changes() {
        use DiurnalClass::*;
        let mut raw = Vec::new();
        raw.extend(std::iter::repeat(Strict).take(8));
        raw.extend(std::iter::repeat(NonDiurnal).take(8));
        raw.extend(std::iter::repeat(Strict).take(8));
        let mut det = OnlineDetector::new(OnlineConfig {
            window_rounds: 8,
            hysteresis: 3,
            ..Default::default()
        });
        let mut classes = Vec::new();
        for &c in &raw {
            det.apply_verdict(c, if c == Strict { Some(0.3) } else { None });
            classes.push(det.class());
        }
        // All three phases eventually surface...
        assert_eq!(classes[7], Strict);
        assert_eq!(classes[15], NonDiurnal);
        assert_eq!(classes[23], Strict);
        // ...each exactly hysteresis−1 verdicts late (the change lands on
        // the 3rd consecutive new verdict).
        assert_eq!(classes[8 + 1], Strict, "still old class one verdict in");
        assert_eq!(classes[8 + 2], NonDiurnal, "flips on the 3rd new verdict");
    }

    #[test]
    fn end_to_end_flap_rate_is_bounded_on_flipping_input() {
        // Full detector path (window + reclassify + hysteresis): a block
        // that is diurnal for 10 days, flat for 10, diurnal for 10 again
        // must produce at most a handful of public transitions — never a
        // flap per reclassification.
        let cfg = OnlineConfig { hysteresis: 2, ..small_cfg() };
        let reclassify = cfg.reclassify_every;
        let mut det = OnlineDetector::new(cfg);
        let phase_len = (10.0 * RPD) as usize;
        let mut flips = Vec::new();
        let mut last = det.class();
        for r in 0..3 * phase_len {
            let v = match r / phase_len {
                0 | 2 => diurnal_value(r),
                _ => 0.55,
            };
            det.push_value(v);
            if det.class() != last {
                flips.push(r);
                last = det.class();
            }
        }
        assert!(
            (2..=6).contains(&flips.len()),
            "expected a few genuine transitions, saw {} at {flips:?}",
            flips.len()
        );
        // Consecutive flips are at least hysteresis reclassification
        // periods apart.
        for w in flips.windows(2) {
            assert!(
                w[1] - w[0] >= 2 * reclassify,
                "public flips {} and {} closer than the hysteresis window",
                w[0],
                w[1]
            );
        }
    }
}
