//! Dataset export/import.
//!
//! The paper publishes its per-block analysis results as public datasets
//! (§2.5: "we add new public datasets for link technology and our new
//! availability and diurnal analysis"). This module writes a
//! [`WorldAnalysis`] in the same spirit — one TSV row per block with the
//! measured diurnal class, phase, availability, location, allocation date
//! and link features — and reads it back, so downstream analyses don't
//! need to re-run probing.
//!
//! Format: a `#`-prefixed header line naming the columns, then
//! tab-separated rows. Missing values are the literal `-`.

use crate::worldrun::{WorldAnalysis, WorldBlockReport};
use sleepwatch_spectral::DiurnalClass;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

/// Column header written (and required on import).
const HEADER: &str = "#block_id\tclass\tphase\tmean_a\tstrongest_cpd\tstationary\toutages\tprobes\tlon\tlat\tcountry\tcentroid\talloc\tasn\tlinks";

/// One parsed dataset row (a deserialized [`WorldBlockReport`] without the
/// planted ground-truth label, which is deliberately not exported).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Block id.
    pub block_id: u64,
    /// Measured diurnal class.
    pub class: DiurnalClass,
    /// Phase of the daily component (diurnal blocks only).
    pub phase: Option<f64>,
    /// Mean `Âs`.
    pub mean_a: f64,
    /// Strongest spectral component, cycles/day.
    pub strongest_cpd: f64,
    /// Stationarity screen result.
    pub stationary: bool,
    /// Outages detected.
    pub outages: u32,
    /// Probes spent.
    pub probes: u64,
    /// Geolocated longitude (if located).
    pub lon: Option<f64>,
    /// Geolocated latitude.
    pub lat: Option<f64>,
    /// Country code (if located).
    pub country: Option<String>,
    /// Country-centroid fallback flag.
    pub centroid: bool,
    /// /8 allocation date, `YYYY-MM`.
    pub alloc: String,
    /// Origin AS.
    pub asn: u32,
    /// Kept link keywords, comma-separated.
    pub links: Vec<String>,
}

fn class_str(c: DiurnalClass) -> &'static str {
    match c {
        DiurnalClass::Strict => "d",
        DiurnalClass::Relaxed => "r",
        DiurnalClass::NonDiurnal => "n",
    }
}

fn class_from(s: &str) -> Result<DiurnalClass, ParseError> {
    match s {
        "d" => Ok(DiurnalClass::Strict),
        "r" => Ok(DiurnalClass::Relaxed),
        "n" => Ok(DiurnalClass::NonDiurnal),
        other => Err(ParseError::BadField(format!("unknown class {other:?}"))),
    }
}

/// Writes one report row.
fn write_row<W: Write>(w: &mut W, r: &WorldBlockReport) -> io::Result<()> {
    let opt = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_else(|| "-".into());
    let links: Vec<&str> = r.link_features.iter().map(|f| f.keyword()).collect();
    writeln!(
        w,
        "{}\t{}\t{}\t{:.6}\t{:.4}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        r.summary.block_id,
        class_str(r.summary.class),
        opt(r.summary.phase),
        r.summary.mean_a,
        r.summary.strongest_cpd,
        if r.summary.stationary { 1 } else { 0 },
        r.summary.outages,
        r.summary.total_probes,
        opt(r.location.map(|l| l.lon)),
        opt(r.location.map(|l| l.lat)),
        r.location.map(|l| l.country).unwrap_or("-"),
        r.location.map(|l| l.centroid_fallback as u8).unwrap_or(0),
        r.alloc_date,
        r.asn,
        if links.is_empty() { "-".to_string() } else { links.join(",") },
    )
}

/// Writes the full analysis as a TSV dataset.
pub fn write_dataset<W: Write>(w: &mut W, analysis: &WorldAnalysis) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for r in &analysis.reports {
        write_row(w, r)?;
    }
    Ok(())
}

/// The analysis as owned [`DatasetRow`]s with every float canonicalized
/// to the TSV print precision — exactly the rows [`read_dataset`] would
/// return after a [`write_dataset`] roundtrip, without going through
/// text. This is the canonical input to [`crate::binfmt::encode_dataset`]:
/// serializing these rows with [`write_dataset_rows`] is byte-identical
/// to [`write_dataset`] on the same analysis.
pub fn dataset_rows(analysis: &WorldAnalysis) -> Vec<DatasetRow> {
    use crate::binfmt::canon;
    analysis
        .reports
        .iter()
        .map(|r| DatasetRow {
            block_id: r.summary.block_id,
            class: r.summary.class,
            phase: r.summary.phase.map(|x| canon(x, 6)),
            mean_a: canon(r.summary.mean_a, 6),
            strongest_cpd: canon(r.summary.strongest_cpd, 4),
            stationary: r.summary.stationary,
            outages: r.summary.outages,
            probes: r.summary.total_probes,
            lon: r.location.map(|l| canon(l.lon, 6)),
            lat: r.location.map(|l| canon(l.lat, 6)),
            country: r.location.map(|l| l.country.to_string()),
            centroid: r.location.map(|l| l.centroid_fallback).unwrap_or(false),
            alloc: r.alloc_date.to_string(),
            asn: r.asn,
            links: r.link_features.iter().map(|f| f.keyword().to_string()).collect(),
        })
        .collect()
}

/// Writes owned rows as a TSV dataset with the exact [`write_dataset`]
/// formatting, so a binary decode re-serializes byte-identically.
pub fn write_dataset_rows<W: Write>(w: &mut W, rows: &[DatasetRow]) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    let opt = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_else(|| "-".into());
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}\t{:.6}\t{:.4}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.block_id,
            class_str(r.class),
            opt(r.phase),
            r.mean_a,
            r.strongest_cpd,
            r.stationary as u8,
            r.outages,
            r.probes,
            opt(r.lon),
            opt(r.lat),
            r.country.as_deref().unwrap_or("-"),
            r.centroid as u8,
            r.alloc,
            r.asn,
            if r.links.is_empty() { "-".to_string() } else { r.links.join(",") },
        )?;
    }
    Ok(())
}

/// Errors from the path-based dataset entry points, carrying the file
/// the failure happened on so callers can surface an actionable message.
/// Hand-rolled (no derive-macro dependency), like [`ParseError`].
#[derive(Debug)]
pub enum ExportError {
    /// IO failure reading or writing `path`.
    Io {
        /// File involved.
        path: PathBuf,
        /// Underlying error.
        source: io::Error,
    },
    /// `path` held a malformed dataset.
    Parse {
        /// File involved.
        path: PathBuf,
        /// What was malformed.
        source: ParseError,
    },
    /// The rows could not be encoded into the binary container bound
    /// for `path`.
    Encode {
        /// File involved.
        path: PathBuf,
        /// Why encoding failed.
        source: crate::binfmt::EncodeError,
    },
    /// `path` held a malformed binary container.
    Decode {
        /// File involved.
        path: PathBuf,
        /// What was malformed.
        source: crate::framing::DecodeError,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ExportError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ExportError::Encode { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ExportError::Decode { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Io { source, .. } => Some(source),
            ExportError::Parse { source, .. } => Some(source),
            ExportError::Encode { source, .. } => Some(source),
            ExportError::Decode { source, .. } => Some(source),
        }
    }
}

/// Writes the dataset to a file (created or truncated), buffered, with
/// the failing path carried in the error.
pub fn write_dataset_file(path: &Path, analysis: &WorldAnalysis) -> Result<(), ExportError> {
    let err = |source| ExportError::Io { path: path.to_path_buf(), source };
    let file = std::fs::File::create(path).map_err(err)?;
    let mut w = io::BufWriter::new(file);
    write_dataset(&mut w, analysis).map_err(err)?;
    w.flush().map_err(err)
}

/// Reads a dataset file written by [`write_dataset_file`], with the
/// failing path carried in the error.
pub fn read_dataset_file(path: &Path) -> Result<Vec<DatasetRow>, ExportError> {
    let file = std::fs::File::open(path)
        .map_err(|source| ExportError::Io { path: path.to_path_buf(), source })?;
    read_dataset(io::BufReader::new(file))
        .map_err(|source| ExportError::Parse { path: path.to_path_buf(), source })
}

/// Writes the analysis as a compact binary dataset
/// ([`crate::binfmt`]): seed-joined against `world` when a
/// configuration is supplied (the seed-derivable columns are elided and
/// verified), self-contained otherwise.
pub fn write_dataset_bin_file(
    path: &Path,
    analysis: &WorldAnalysis,
    world: Option<&sleepwatch_simnet::WorldConfig>,
) -> Result<(), ExportError> {
    let rows = dataset_rows(analysis);
    write_dataset_rows_bin_file(path, &rows, world)
}

/// Writes pre-canonicalized rows as a compact binary dataset file.
pub fn write_dataset_rows_bin_file(
    path: &Path,
    rows: &[DatasetRow],
    world: Option<&sleepwatch_simnet::WorldConfig>,
) -> Result<(), ExportError> {
    let mode = match world {
        Some(cfg) => crate::binfmt::DatasetMode::SeedJoined(cfg),
        None => crate::binfmt::DatasetMode::SelfContained,
    };
    let bytes = crate::binfmt::encode_dataset(rows, mode)
        .map_err(|source| ExportError::Encode { path: path.to_path_buf(), source })?;
    std::fs::write(path, bytes)
        .map_err(|source| ExportError::Io { path: path.to_path_buf(), source })
}

/// Reads a compact binary dataset file. Seed-joined files need the
/// matching `world` configuration; self-contained files ignore it.
pub fn read_dataset_bin_file(
    path: &Path,
    world: Option<&sleepwatch_simnet::WorldConfig>,
) -> Result<Vec<DatasetRow>, ExportError> {
    let bytes = std::fs::read(path)
        .map_err(|source| ExportError::Io { path: path.to_path_buf(), source })?;
    crate::binfmt::decode_dataset(&bytes, world)
        .map_err(|source| ExportError::Decode { path: path.to_path_buf(), source })
}

/// Errors from [`read_dataset`].
#[derive(Debug)]
pub enum ParseError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The header line is missing or doesn't match this format version.
    BadHeader(String),
    /// A row has the wrong number of fields.
    BadShape {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        fields: usize,
    },
    /// A field failed to parse.
    BadField(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::BadHeader(h) => write!(f, "unrecognized header: {h:?}"),
            ParseError::BadShape { line, fields } => {
                write!(f, "line {line}: expected 15 fields, found {fields}")
            }
            ParseError::BadField(msg) => write!(f, "bad field: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn parse_opt_f64(s: &str) -> Result<Option<f64>, ParseError> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse().map(Some).map_err(|_| ParseError::BadField(format!("not a number: {s:?}")))
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, ParseError> {
    s.parse().map_err(|_| ParseError::BadField(format!("not a number: {s:?}")))
}

/// Reads a dataset written by [`write_dataset`].
pub fn read_dataset<R: BufRead>(r: R) -> Result<Vec<DatasetRow>, ParseError> {
    let mut lines = r.lines();
    let header = lines.next().ok_or_else(|| ParseError::BadHeader("<empty file>".into()))??;
    if header != HEADER {
        return Err(ParseError::BadHeader(header));
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 15 {
            return Err(ParseError::BadShape { line: i + 2, fields: fields.len() });
        }
        rows.push(DatasetRow {
            block_id: parse_num(fields[0])?,
            class: class_from(fields[1])?,
            phase: parse_opt_f64(fields[2])?,
            mean_a: parse_num(fields[3])?,
            strongest_cpd: parse_num(fields[4])?,
            stationary: fields[5] == "1",
            outages: parse_num(fields[6])?,
            probes: parse_num(fields[7])?,
            lon: parse_opt_f64(fields[8])?,
            lat: parse_opt_f64(fields[9])?,
            country: if fields[10] == "-" { None } else { Some(fields[10].to_string()) },
            centroid: fields[11] == "1",
            alloc: fields[12].to_string(),
            asn: parse_num(fields[13])?,
            links: if fields[14] == "-" {
                Vec::new()
            } else {
                fields[14].split(',').map(str::to_string).collect()
            },
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalysisConfig;
    use crate::worldrun::analyze_world;
    use sleepwatch_simnet::{World, WorldConfig};

    fn analysis() -> WorldAnalysis {
        let world = World::generate(WorldConfig {
            num_blocks: 80,
            seed: 17,
            span_days: 4.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 2, None)
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let a = analysis();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &a).unwrap();
        let rows = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(rows.len(), a.reports.len());
        for (row, rep) in rows.iter().zip(&a.reports) {
            assert_eq!(row.block_id, rep.summary.block_id);
            assert_eq!(row.class, rep.summary.class);
            assert_eq!(row.stationary, rep.summary.stationary);
            assert_eq!(row.outages, rep.summary.outages);
            assert_eq!(row.probes, rep.summary.total_probes);
            assert_eq!(row.asn, rep.asn);
            assert_eq!(row.country.as_deref(), rep.location.map(|l| l.country));
            assert!((row.mean_a - rep.summary.mean_a).abs() < 1e-5);
            match (row.phase, rep.summary.phase) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-5),
                (None, None) => {}
                other => panic!("phase mismatch {other:?}"),
            }
            assert_eq!(
                row.links,
                rep.link_features.iter().map(|f| f.keyword().to_string()).collect::<Vec<_>>()
            );
            assert_eq!(row.alloc, rep.alloc_date.to_string());
        }
    }

    #[test]
    fn header_is_validated() {
        let bad = "wrong header\n1\td\t-\n";
        assert!(matches!(read_dataset(bad.as_bytes()), Err(ParseError::BadHeader(_))));
        assert!(matches!(read_dataset(&b""[..]), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn shape_errors_carry_line_numbers() {
        let text = format!("{HEADER}\n1\td\n");
        match read_dataset(text.as_bytes()) {
            Err(ParseError::BadShape { line, fields }) => {
                assert_eq!(line, 2);
                assert_eq!(fields, 2);
            }
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn bad_class_is_rejected() {
        let text = format!("{HEADER}\n1\tX\t-\t0.5\t1.0\t1\t0\t10\t-\t-\t-\t0\t1990-01\t7\t-\n");
        assert!(matches!(read_dataset(text.as_bytes()), Err(ParseError::BadField(_))));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let a = analysis();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &a).unwrap();
        buf.extend_from_slice(b"\n\n");
        let rows = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(rows.len(), a.reports.len());
    }

    #[test]
    fn file_roundtrip_and_error_paths() {
        let a = analysis();
        let dir = std::env::temp_dir().join(format!("swexport-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.tsv");
        write_dataset_file(&path, &a).unwrap();
        let rows = read_dataset_file(&path).unwrap();
        assert_eq!(rows.len(), a.reports.len());
        // A missing file names itself in the error.
        let missing = dir.join("nope.tsv");
        let err = read_dataset_file(&missing).unwrap_err();
        assert!(matches!(err, ExportError::Io { .. }));
        assert!(err.to_string().contains("nope.tsv"));
        // A malformed file surfaces as a parse error with the path.
        std::fs::write(&path, "wrong header\n").unwrap();
        let err = read_dataset_file(&path).unwrap_err();
        assert!(matches!(err, ExportError::Parse { .. }));
        assert!(err.to_string().contains("ds.tsv"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_rows_serialize_byte_identically() {
        let a = analysis();
        let mut direct = Vec::new();
        write_dataset(&mut direct, &a).unwrap();
        let mut via_rows = Vec::new();
        write_dataset_rows(&mut via_rows, &dataset_rows(&a)).unwrap();
        assert_eq!(via_rows, direct);
        // And the canonicalized rows are exactly what a text roundtrip
        // would have produced.
        assert_eq!(dataset_rows(&a), read_dataset(direct.as_slice()).unwrap());
    }

    #[test]
    fn bin_file_roundtrip_both_modes() {
        let a = analysis();
        let world_cfg =
            WorldConfig { num_blocks: 80, seed: 17, span_days: 4.0, ..Default::default() };
        let dir = std::env::temp_dir().join(format!("swexport-bin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rows = dataset_rows(&a);
        for world in [None, Some(&world_cfg)] {
            let path = dir.join(if world.is_some() { "ds-seed.bin" } else { "ds-self.bin" });
            write_dataset_bin_file(&path, &a, world).unwrap();
            assert_eq!(read_dataset_bin_file(&path, world).unwrap(), rows);
            let _ = std::fs::remove_file(&path);
        }
        // Error paths carry the file name.
        let missing = dir.join("nope.bin");
        let err = read_dataset_bin_file(&missing, None).unwrap_err();
        assert!(matches!(err, ExportError::Io { .. }));
        let garbled = dir.join("garbled.bin");
        std::fs::write(&garbled, b"not a dataset").unwrap();
        let err = read_dataset_bin_file(&garbled, None).unwrap_err();
        assert!(matches!(err, ExportError::Decode { .. }));
        assert!(err.to_string().contains("garbled.bin"));
        let _ = std::fs::remove_file(&garbled);
    }

    #[test]
    fn planted_labels_never_leak() {
        let a = analysis();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &a).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("planted"), "ground truth must not be exported");
    }
}
