//! The §5.6 applications: using diurnal knowledge to calibrate other
//! measurements and to size the active Internet.
//!
//! A fast full-IPv4 snapshot (ZMap-style, "tens of minutes") measures each
//! block at one arbitrary time of day. For non-diurnal blocks that snapshot
//! is representative; for diurnal blocks it can land anywhere between the
//! nightly trough and the daily peak. Knowing which blocks are diurnal —
//! and their daily amplitude — turns one snapshot into a calibrated range,
//! and summing availabilities estimates the active, public address
//! population the way the paper's census line of work does.

use crate::worldrun::WorldAnalysis;
use sleepwatch_spectral::DiurnalClass;

/// Address-population estimate derived from a world analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimate {
    /// Expected active addresses at a random instant (mean availability ×
    /// 256 per block, summed).
    pub mean_active: f64,
    /// Lower bound: every diurnal block caught at its trough.
    pub trough_active: f64,
    /// Upper bound: every diurnal block caught at its peak.
    pub peak_active: f64,
    /// Blocks contributing.
    pub blocks: usize,
    /// Of which diurnal (strict or relaxed).
    pub diurnal_blocks: usize,
}

impl SizeEstimate {
    /// The swing a one-shot snapshot can miss, in addresses.
    pub fn snapshot_uncertainty(&self) -> f64 {
        self.peak_active - self.trough_active
    }

    /// Relative uncertainty of a one-shot snapshot vs the mean.
    pub fn relative_uncertainty(&self) -> f64 {
        if self.mean_active > 0.0 {
            self.snapshot_uncertainty() / self.mean_active
        } else {
            0.0
        }
    }
}

/// Assumed peak-to-trough swing of a diurnal block's availability, as a
/// fraction of its mean. The paper's diurnal examples swing by roughly
/// half their mean; blocks classified relaxed swing less.
const STRICT_SWING: f64 = 0.5;
const RELAXED_SWING: f64 = 0.25;

/// Estimates the active address population and the snapshot error bars.
pub fn estimate_size(analysis: &WorldAnalysis) -> SizeEstimate {
    let mut mean = 0.0;
    let mut lo = 0.0;
    let mut hi = 0.0;
    let mut diurnal = 0usize;
    for r in &analysis.reports {
        let base = r.summary.mean_a * 256.0;
        mean += base;
        let swing = match r.summary.class {
            DiurnalClass::Strict => {
                diurnal += 1;
                STRICT_SWING
            }
            DiurnalClass::Relaxed => {
                diurnal += 1;
                RELAXED_SWING
            }
            DiurnalClass::NonDiurnal => 0.0,
        };
        lo += base * (1.0 - swing);
        hi += base * (1.0 + swing);
    }
    SizeEstimate {
        mean_active: mean,
        trough_active: lo,
        peak_active: hi,
        blocks: analysis.len(),
        diurnal_blocks: diurnal,
    }
}

/// Corrects one snapshot observation of a block for time-of-day: given the
/// block's diurnal phase, the snapshot's time, and the observed
/// availability, returns the estimated *daily mean* availability.
///
/// Snapshot near the peak → observation revised downward; near the trough
/// → upward; non-diurnal blocks pass through unchanged.
pub fn correct_snapshot(
    observed_a: f64,
    class: DiurnalClass,
    phase: Option<f64>,
    snapshot_utc_hour: f64,
) -> f64 {
    let (Some(phase), true) = (phase, class.is_diurnal()) else {
        return observed_a;
    };
    let swing = if class.is_strict() { STRICT_SWING } else { RELAXED_SWING };
    let peak_hour = crate::timeofday::peak_utc_hour(phase);
    // Cosine model: A(t) = mean · (1 + swing·cos(2π(t − peak)/24)).
    let ang = (snapshot_utc_hour - peak_hour) / 24.0 * std::f64::consts::TAU;
    let factor = 1.0 + swing * ang.cos();
    (observed_a / factor.max(0.1)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalysisConfig;
    use crate::timeofday::phase_for_peak_utc_hour;
    use crate::worldrun::analyze_world;
    use sleepwatch_simnet::{World, WorldConfig};

    fn analysis() -> WorldAnalysis {
        let world = World::generate(WorldConfig {
            num_blocks: 150,
            seed: 55,
            span_days: 5.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 5.0);
        analyze_world(&world, &cfg, 2, None)
    }

    #[test]
    fn size_estimate_orders_bounds() {
        let a = analysis();
        let e = estimate_size(&a);
        assert!(e.trough_active <= e.mean_active);
        assert!(e.mean_active <= e.peak_active);
        assert!(e.mean_active > 0.0);
        assert_eq!(e.blocks, 150);
        assert!(e.diurnal_blocks <= e.blocks);
        assert!(e.snapshot_uncertainty() >= 0.0);
        assert!(e.relative_uncertainty() < 1.0);
    }

    #[test]
    fn uncertainty_grows_with_diurnal_share() {
        // A China-heavy world has more diurnal blocks than a US-only one.
        let mk = |codes: Vec<&'static str>| {
            let world = World::generate(WorldConfig {
                num_blocks: 200,
                seed: 77,
                span_days: 5.0,
                country_filter: Some(codes),
                ..Default::default()
            });
            let cfg = AnalysisConfig::over_days(world.cfg.start_time, 5.0);
            estimate_size(&analyze_world(&world, &cfg, 2, None))
        };
        let us = mk(vec!["US"]);
        let cn = mk(vec!["CN", "AM", "GE"]);
        assert!(
            cn.relative_uncertainty() > us.relative_uncertainty(),
            "diurnal world must be harder to snapshot: {} vs {}",
            cn.relative_uncertainty(),
            us.relative_uncertainty()
        );
    }

    #[test]
    fn snapshot_correction_direction() {
        let phase = phase_for_peak_utc_hour(12.0);
        // Observed at the peak: mean is lower than observed.
        let at_peak = correct_snapshot(0.6, DiurnalClass::Strict, Some(phase), 12.0);
        assert!(at_peak < 0.6, "peak observation corrected down: {at_peak}");
        // Observed at the trough: mean is higher.
        let at_trough = correct_snapshot(0.6, DiurnalClass::Strict, Some(phase), 0.0);
        assert!(at_trough > 0.6, "trough observation corrected up: {at_trough}");
        // Non-diurnal passes through.
        assert_eq!(correct_snapshot(0.6, DiurnalClass::NonDiurnal, None, 5.0), 0.6);
    }

    #[test]
    fn correction_is_bounded() {
        for h in 0..24 {
            let v = correct_snapshot(
                0.9,
                DiurnalClass::Strict,
                Some(phase_for_peak_utc_hour(7.0)),
                h as f64,
            );
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn relaxed_swing_smaller_than_strict() {
        let phase = phase_for_peak_utc_hour(12.0);
        let strict = correct_snapshot(0.5, DiurnalClass::Strict, Some(phase), 12.0);
        let relaxed = correct_snapshot(0.5, DiurnalClass::Relaxed, Some(phase), 12.0);
        assert!(strict < relaxed, "strict correction is stronger");
    }
}
