//! Phase-to-time-of-day calibration.
//!
//! The paper ties phase to longitude and leaves "calibrating phase with
//! local time of day" as future work (§5.2). Because our series are trimmed
//! to start at midnight UTC (§2.2), the calibration is closed-form: the
//! daily component of a series starting at midnight peaks at UTC hour
//! `(−φ/2π)·24 mod 24`, and the local peak hour follows from longitude at
//! 15° per hour.

use std::f64::consts::TAU;

/// UTC hour (0–24) at which the daily component peaks, for a phase `φ`
/// measured on a series that starts at midnight UTC.
///
/// Derivation: a pure daily cosine peaking at round `m₀` contributes
/// `α_{N_d} ∝ e^{−2πi·m₀·N_d/n}`, so `φ = −2π·m₀/r` with `r = n/N_d`
/// rounds per day, giving `m₀/r = −φ/2π` of a day.
pub fn peak_utc_hour(phase: f64) -> f64 {
    ((-phase / TAU) * 24.0).rem_euclid(24.0)
}

/// Local solar hour of the daily peak, given phase and longitude
/// (degrees east).
pub fn peak_local_hour(phase: f64, lon_deg: f64) -> f64 {
    (peak_utc_hour(phase) + lon_deg / 15.0).rem_euclid(24.0)
}

/// Inverse of [`peak_utc_hour`]: the phase a block peaking at `utc_hour`
/// will show. Useful for constructing expectations in tests and for
/// seeding phase-based geolocation.
pub fn phase_for_peak_utc_hour(utc_hour: f64) -> f64 {
    let mut phase = -(utc_hour / 24.0) * TAU;
    while phase <= -std::f64::consts::PI {
        phase += TAU;
    }
    while phase > std::f64::consts::PI {
        phase -= TAU;
    }
    phase
}

/// Classifies a local peak hour into a coarse activity pattern, a
/// convenience for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityPattern {
    /// Peak between 06:00 and 12:00 local.
    Morning,
    /// Peak between 12:00 and 18:00 local.
    Afternoon,
    /// Peak between 18:00 and 24:00 local.
    Evening,
    /// Peak between 00:00 and 06:00 local.
    Night,
}

/// Buckets a local hour into an [`ActivityPattern`].
pub fn activity_pattern(local_hour: f64) -> ActivityPattern {
    match local_hour.rem_euclid(24.0) {
        h if h < 6.0 => ActivityPattern::Night,
        h if h < 12.0 => ActivityPattern::Morning,
        h if h < 18.0 => ActivityPattern::Afternoon,
        _ => ActivityPattern::Evening,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_block, AnalysisConfig};
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    #[test]
    fn roundtrip_phase_and_hour() {
        for h in [0.0, 3.5, 8.0, 12.0, 17.25, 23.9] {
            let phase = phase_for_peak_utc_hour(h);
            assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&phase));
            let back = peak_utc_hour(phase);
            assert!((back - h).abs() < 1e-9 || (back - h).abs() > 23.9, "h={h}, back={back}");
        }
    }

    #[test]
    fn local_hour_shifts_with_longitude() {
        let phase = phase_for_peak_utc_hour(12.0);
        assert!((peak_local_hour(phase, 0.0) - 12.0).abs() < 1e-9);
        assert!((peak_local_hour(phase, 90.0) - 18.0).abs() < 1e-9);
        assert!((peak_local_hour(phase, -90.0) - 6.0).abs() < 1e-9);
        // Wraps around midnight.
        let late = peak_local_hour(phase_for_peak_utc_hour(22.0), 45.0);
        assert!((late - 1.0).abs() < 1e-9, "got {late}");
    }

    #[test]
    fn measured_block_peaks_during_its_working_day() {
        // Block at UTC+8 active 08:00–18:00 local → peak near 13:00 local.
        let block = BlockSpec::bare(
            1,
            321,
            BlockProfile {
                n_stable: 20,
                n_diurnal: 180,
                stable_avail: 0.9,
                diurnal_avail: 0.9,
                onset_hours: 8.0,
                onset_spread: 1.0,
                duration_hours: 10.0,
                duration_spread: 0.5,
                sigma_start: 0.3,
                sigma_duration: 0.3,
                utc_offset_hours: 8.0,
            },
        );
        // Start at midnight UTC so the calibration assumption holds.
        let analysis = analyze_block(&block, &AnalysisConfig::over_days(0, 14.0));
        let phase = analysis.diurnal.phase.expect("diurnal block");
        let local = peak_local_hour(phase, 8.0 * 15.0);
        assert!(
            (10.0..17.0).contains(&local),
            "peak should fall in the working day, got {local:.1}h local"
        );
        assert_eq!(activity_pattern(local), ActivityPattern::Afternoon);
    }

    #[test]
    fn pattern_buckets() {
        assert_eq!(activity_pattern(2.0), ActivityPattern::Night);
        assert_eq!(activity_pattern(8.0), ActivityPattern::Morning);
        assert_eq!(activity_pattern(13.0), ActivityPattern::Afternoon);
        assert_eq!(activity_pattern(20.0), ActivityPattern::Evening);
        assert_eq!(activity_pattern(24.5), ActivityPattern::Night);
        assert_eq!(activity_pattern(-1.0), ActivityPattern::Evening);
    }
}
