//! Per-block analysis: probe → estimate → clean → FFT → classify.
//!
//! This is the paper's measurement pipeline for one /24: run Trinocular
//! over the observation window, track `Âs` (§2.1), clean the timeseries and
//! trim it to midnight UTC (§2.2), then classify diurnality and extract
//! phase from the spectrum (§2.2), with the stationarity screen alongside.

use sleepwatch_availability::cleaning::{clean_series_into, CleanScratch};
use sleepwatch_obs::{Stage, StageTimer};
use sleepwatch_probing::{
    BlockRun, FaultPlan, ProberScratch, RoundRecord, TrinocularConfig, TrinocularProber,
};
use sleepwatch_simnet::{BlockSpec, ROUND_SECONDS};
use sleepwatch_spectral::{
    classify, plan_for, trend_default, DiurnalClass, DiurnalConfig, DiurnalReport, Spectrum,
    SpectrumScratch, TrendReport,
};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Prober parameters.
    pub trinocular: TrinocularConfig,
    /// Diurnal-classifier margins.
    pub diurnal: DiurnalConfig,
    /// Measurement start (unix seconds).
    pub start_time: u64,
    /// Rounds to observe.
    pub rounds: u64,
    /// Reject classification when more than this fraction of rounds had to
    /// be interpolated.
    pub max_fill_fraction: f64,
    /// Injected measurement faults ([`FaultPlan::none`] by default — the
    /// zero-cost path, byte-identical to a fault-free run).
    pub faults: FaultPlan,
}

impl AnalysisConfig {
    /// A configuration covering `days` from `start_time` with defaults
    /// otherwise.
    pub fn over_days(start_time: u64, days: f64) -> Self {
        AnalysisConfig {
            trinocular: TrinocularConfig::default(),
            diurnal: DiurnalConfig::default(),
            start_time,
            rounds: (days * 86_400.0 / ROUND_SECONDS as f64).round() as u64,
            max_fill_fraction: 0.25,
            faults: FaultPlan::none(),
        }
    }
}

/// Everything the pipeline produced for one block (full detail — see
/// [`BlockAnalysis::summary`] for the compact world-scale form).
#[derive(Debug, Clone)]
pub struct BlockAnalysis {
    /// The analyzed block's id.
    pub block_id: u64,
    /// The raw probing run.
    pub run: BlockRun,
    /// Cleaned, midnight-trimmed `Âs` series.
    pub series: Vec<f64>,
    /// Fraction of rounds interpolated during cleaning.
    pub fill_fraction: f64,
    /// Diurnal classification of the series.
    pub diurnal: DiurnalReport,
    /// Stationarity screen.
    pub trend: TrendReport,
    /// Mean of the cleaned series.
    pub mean_a_short: f64,
}

/// Compact per-block result for world-scale aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSummary {
    /// Block id.
    pub block_id: u64,
    /// Diurnal class.
    pub class: DiurnalClass,
    /// Phase of the daily component (diurnal blocks only).
    pub phase: Option<f64>,
    /// Frequency (cycles/day) of the strongest non-DC spectral component.
    pub strongest_cpd: f64,
    /// Mean `Âs` over the observation.
    pub mean_a: f64,
    /// Stationary per the §2.2 screen.
    pub stationary: bool,
    /// Number of detected outages.
    pub outages: u32,
    /// Total probes spent.
    pub total_probes: u64,
}

/// Classifies an availability series that is already dense and trimmed
/// (e.g. a survey's ground-truth `A(t)`).
pub fn analyze_series(series: &[f64], cfg: &DiurnalConfig) -> (DiurnalReport, TrendReport) {
    let spectrum = Spectrum::compute_rounds(series);
    (classify(&spectrum, cfg), trend_default(series))
}

/// Worker-local arena holding every buffer one block analysis needs:
/// probe walk and records, `(round, Âs)` observations, cleaning
/// workspace, the cleaned series and the spectral output/scratch.
///
/// Grow-only: buffers are cleared between blocks but never shrunk, so
/// after one warm-up block a steady stream of same-length analyses runs
/// with **zero heap allocations** (asserted by `tests/scratch_alloc.rs`).
/// Every field is overwritten before use — outputs are independent of
/// prior contents (property-tested in `tests/scratch_poison.rs`).
#[derive(Debug, Default)]
pub struct BlockScratch {
    prober: ProberScratch,
    records: Vec<RoundRecord>,
    observations: Vec<(u64, f64)>,
    clean: CleanScratch,
    series: Vec<f64>,
    spectrum: SpectrumScratch,
}

impl BlockScratch {
    /// An empty arena; the first block sizes it.
    pub fn new() -> Self {
        BlockScratch::default()
    }

    /// Bytes currently reserved across all buffers (capacity, not
    /// length). Feeds the `world.peak_block_bytes` gauge and the
    /// grow-vs-reuse counters.
    pub fn footprint_bytes(&self) -> usize {
        self.prober.footprint_bytes()
            + self.records.capacity() * std::mem::size_of::<RoundRecord>()
            + self.observations.capacity() * std::mem::size_of::<(u64, f64)>()
            + self.clean.footprint_bytes()
            + self.series.capacity() * std::mem::size_of::<f64>()
            + self.spectrum.footprint_bytes()
    }

    /// Test-only: fill every buffer with NaN/garbage that a correct
    /// pipeline must fully overwrite or ignore.
    #[doc(hidden)]
    pub fn poison(&mut self, seed: u64) {
        self.prober.poison(seed);
        self.records.clear();
        self.observations.clear();
        self.observations.extend((0..89u64).map(|i| (seed.wrapping_add(i), f64::NAN)));
        self.clean.poison(seed);
        self.series.clear();
        self.series.extend((0..71u64).map(|i| f64::NAN + (seed ^ i) as f64));
        self.spectrum.poison(seed);
    }

    /// Length of the cleaned series currently in the arena (the grouping
    /// key of the batched world FFT).
    pub(crate) fn series_len(&self) -> usize {
        self.series.len()
    }

    /// Split borrow for the batched FFT: the cleaned series (kernel input)
    /// alongside the spectrum workspace (kernel output).
    pub(crate) fn series_and_spectrum(&mut self) -> (&[f64], &mut SpectrumScratch) {
        (&self.series, &mut self.spectrum)
    }
}

/// Probe → estimate → clean results carried between the split phases of
/// the batched world path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbedBlock {
    pub outages: u32,
    pub total_probes: u64,
    pub fill_fraction: f64,
}

/// Stages Probe → Estimate → Clean into `scratch`, leaving the cleaned
/// series in the arena for the FFT phase. First half of the pipeline body;
/// the batched world path runs it per block, then FFTs same-length groups
/// together before finishing each block with [`classify_probed`].
pub(crate) fn probe_clean_into(
    block: &BlockSpec,
    cfg: &AnalysisConfig,
    scratch: &mut BlockScratch,
) -> ProbedBlock {
    let obs = sleepwatch_obs::global();
    let (outages, total_probes) = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Probe));
        let mut prober = TrinocularProber::new_reusing(block, cfg.trinocular, &mut scratch.prober);
        prober.run_into_with_faults(
            block,
            cfg.start_time,
            cfg.rounds,
            &cfg.faults,
            &mut scratch.records,
        );
        let counts = (prober.outages().len() as u32, prober.total_probes());
        prober.recycle(&mut scratch.prober);
        counts
    };
    {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Estimate));
        scratch.observations.clear();
        scratch.observations.extend(scratch.records.iter().map(|r| (r.round, r.a_short)));
    }
    let fill_fraction = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Clean));
        clean_series_into(
            &scratch.observations,
            cfg.rounds as usize,
            cfg.start_time,
            ROUND_SECONDS,
            &mut scratch.clean,
            &mut scratch.series,
        )
    };
    ProbedBlock { outages, total_probes, fill_fraction }
}

/// Stages Estimate → Clean → Fft for observations collected elsewhere —
/// the streaming ingest path. Byte-for-byte the same code the batch
/// pipeline runs after probing (the tail of [`probe_clean_into`] plus the
/// FFT phase of `analyze_block_into`), so a shard finalizing a block's
/// event stream lands in exactly the scratch state the batch pipeline
/// reaches before [`classify_probed`].
pub(crate) fn clean_fft_observations(
    observations: &[(u64, f64)],
    cfg: &AnalysisConfig,
    scratch: &mut BlockScratch,
) -> f64 {
    let obs = sleepwatch_obs::global();
    {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Estimate));
        scratch.observations.clear();
        scratch.observations.extend_from_slice(observations);
    }
    let fill_fraction = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Clean));
        clean_series_into(
            &scratch.observations,
            cfg.rounds as usize,
            cfg.start_time,
            ROUND_SECONDS,
            &mut scratch.clean,
            &mut scratch.series,
        )
    };
    {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Fft));
        let plan = plan_for(scratch.series.len());
        scratch.spectrum.compute_with_plan(
            &scratch.series,
            sleepwatch_spectral::ROUND_SECONDS,
            &plan,
        );
    }
    fill_fraction
}

/// Stage Classify plus summary assembly. Expects `scratch.spectrum` to
/// hold the spectrum of `scratch.series` — either from the scalar FFT
/// phase in [`analyze_block_into`] or a lane of the batched world kernel
/// (bit-identical by construction).
pub(crate) fn classify_probed(
    block: &BlockSpec,
    cfg: &AnalysisConfig,
    scratch: &BlockScratch,
    probed: ProbedBlock,
) -> (BlockSummary, DiurnalReport, TrendReport) {
    let obs = sleepwatch_obs::global();
    let spectrum = scratch.spectrum.spectrum();
    let (diurnal, trend) = {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Classify));
        let mut diurnal = classify(spectrum, &cfg.diurnal);
        if probed.fill_fraction > cfg.max_fill_fraction {
            // Too much interpolation to trust periodicity claims.
            diurnal.class = DiurnalClass::NonDiurnal;
            diurnal.phase = None;
            obs.pipeline.blocks_rejected.incr();
        }
        (diurnal, trend_default(&scratch.series))
    };
    let strongest_cpd = spectrum.strongest_bin().map(|k| spectrum.cycles_per_day(k)).unwrap_or(0.0);
    let mean_a_short = if scratch.series.is_empty() {
        0.0
    } else {
        scratch.series.iter().sum::<f64>() / scratch.series.len() as f64
    };
    obs.pipeline.blocks_analyzed.incr();
    let summary = BlockSummary {
        block_id: block.id,
        class: diurnal.class,
        phase: diurnal.phase,
        strongest_cpd,
        mean_a: mean_a_short,
        stationary: trend.stationary,
        outages: probed.outages,
        total_probes: probed.total_probes,
    };
    (summary, diurnal, trend)
}

/// The pipeline body shared by [`analyze_block`] and
/// [`analyze_block_with_scratch`]: every stage reads from and writes into
/// `scratch`, allocating only when a buffer must grow.
fn analyze_block_into(
    block: &BlockSpec,
    cfg: &AnalysisConfig,
    scratch: &mut BlockScratch,
) -> (BlockSummary, DiurnalReport, TrendReport, f64) {
    let obs = sleepwatch_obs::global();
    let track = obs.pipeline.scratch_reuses.enabled();
    let footprint_before = if track { scratch.footprint_bytes() } else { 0 };
    let probed = probe_clean_into(block, cfg, scratch);
    {
        let _t = StageTimer::start(obs.pipeline.stage(Stage::Fft));
        // Every block of a run produces the same post-trim length, so this
        // hits the global plan cache after the first block — the FFT tables
        // are built once per world, not once per /24.
        let plan = plan_for(scratch.series.len());
        scratch.spectrum.compute_with_plan(
            &scratch.series,
            sleepwatch_spectral::ROUND_SECONDS,
            &plan,
        );
    }
    let (summary, diurnal, trend) = classify_probed(block, cfg, scratch, probed);
    if track {
        if scratch.footprint_bytes() > footprint_before {
            obs.pipeline.scratch_grows.incr();
        } else {
            obs.pipeline.scratch_reuses.incr();
        }
    }
    (summary, diurnal, trend, probed.fill_fraction)
}

/// Runs the full pipeline over one block reusing `scratch` — the
/// zero-allocation steady-state path. Returns only the compact
/// [`BlockSummary`]; the cleaned series and raw run live in `scratch`
/// until the next call. The summary is identical to
/// `analyze_block(block, cfg).summary()`.
pub fn analyze_block_with_scratch(
    block: &BlockSpec,
    cfg: &AnalysisConfig,
    scratch: &mut BlockScratch,
) -> BlockSummary {
    analyze_block_into(block, cfg, scratch).0
}

/// Runs the full pipeline over one block.
///
/// Each stage reports wall time into the [`sleepwatch_obs`] stage
/// histograms; on the disabled registry the timers never read the clock.
/// Thin wrapper over the scratch path: a fresh [`BlockScratch`] feeds
/// [`analyze_block_into`] and is then dismantled into the owned
/// [`BlockAnalysis`] — same per-call allocations as ever, byte-identical
/// output.
pub fn analyze_block(block: &BlockSpec, cfg: &AnalysisConfig) -> BlockAnalysis {
    let mut scratch = BlockScratch::new();
    let (summary, diurnal, trend, fill_fraction) = analyze_block_into(block, cfg, &mut scratch);
    let BlockScratch { prober: mut prober_scratch, records, series, .. } = scratch;
    let outages = prober_scratch.take_outages();
    let run = if cfg.faults.mangles_order() {
        // Mirrors `run_with_faults`: duplicated/reordered streams
        // legitimately violate the strict-ascending invariant
        // `BlockRun::new` asserts.
        BlockRun {
            block_id: block.id,
            rounds: cfg.rounds,
            records,
            outages,
            total_probes: summary.total_probes,
        }
    } else {
        BlockRun::new(block.id, cfg.rounds, records, outages, summary.total_probes)
    };
    BlockAnalysis {
        block_id: block.id,
        run,
        series,
        fill_fraction,
        diurnal,
        trend,
        mean_a_short: summary.mean_a,
    }
}

impl BlockAnalysis {
    /// Collapses to the compact summary.
    pub fn summary(&self) -> BlockSummary {
        let spectrum = Spectrum::compute_rounds(&self.series);
        let strongest_cpd =
            spectrum.strongest_bin().map(|k| spectrum.cycles_per_day(k)).unwrap_or(0.0);
        BlockSummary {
            block_id: self.block_id,
            class: self.diurnal.class,
            phase: self.diurnal.phase,
            strongest_cpd,
            mean_a: self.mean_a_short,
            stationary: self.trend.stationary,
            outages: self.run.outages.len() as u32,
            total_probes: self.run.total_probes,
        }
    }
}

/// Unrolls a phase (radians) into the window `[−π + L, π + L]` centred on a
/// longitude `lon_deg` (§5.2's trick for comparing two circular
/// quantities).
pub fn unroll_phase(phase: f64, lon_deg: f64) -> f64 {
    use std::f64::consts::TAU;
    let l = lon_deg.to_radians();
    let k = ((l - phase) / TAU).round();
    phase + k * TAU
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_simnet::{BlockProfile, BlockSpec};
    use std::f64::consts::PI;

    fn diurnal_block(id: u64, offset_h: f64) -> BlockSpec {
        BlockSpec::bare(
            id,
            55,
            BlockProfile {
                n_stable: 40,
                n_diurnal: 160,
                stable_avail: 0.9,
                diurnal_avail: 0.9,
                onset_hours: 8.0,
                onset_spread: 2.0,
                duration_hours: 9.0,
                duration_spread: 1.0,
                sigma_start: 0.5,
                sigma_duration: 0.5,
                utc_offset_hours: offset_h,
            },
        )
    }

    fn flat_block(id: u64) -> BlockSpec {
        BlockSpec::bare(id, 55, BlockProfile::always_on(120, 0.8))
    }

    #[test]
    fn pipeline_detects_diurnal_block() {
        let b = diurnal_block(1, 0.0);
        let cfg = AnalysisConfig::over_days(0, 14.0);
        let a = analyze_block(&b, &cfg);
        assert!(a.diurnal.class.is_diurnal(), "got {:?}", a.diurnal.class);
        assert!(a.diurnal.phase.is_some());
        assert!(a.trend.stationary);
        assert!(!a.series.is_empty());
    }

    #[test]
    fn pipeline_rejects_flat_block() {
        let b = flat_block(2);
        let cfg = AnalysisConfig::over_days(0, 14.0);
        let a = analyze_block(&b, &cfg);
        assert_eq!(a.diurnal.class, DiurnalClass::NonDiurnal);
        assert!((a.mean_a_short - 0.8).abs() < 0.1, "mean {}", a.mean_a_short);
    }

    #[test]
    fn summary_collapses_consistently() {
        let b = diurnal_block(3, 0.0);
        let cfg = AnalysisConfig::over_days(0, 14.0);
        let a = analyze_block(&b, &cfg);
        let s = a.summary();
        assert_eq!(s.class, a.diurnal.class);
        assert_eq!(s.block_id, 3);
        assert!((s.strongest_cpd - 1.0).abs() < 0.2, "strongest at {} cpd", s.strongest_cpd);
        assert!(s.total_probes > 0);
    }

    #[test]
    fn excessive_fill_disables_classification() {
        let b = diurnal_block(4, 0.0);
        let mut cfg = AnalysisConfig::over_days(0, 14.0);
        cfg.max_fill_fraction = 0.0; // anything interpolated → rejected
        cfg.trinocular.restart_interval_rounds = Some(30);
        cfg.trinocular.restart_loss_chance = 1.0;
        let a = analyze_block(&b, &cfg);
        assert!(a.fill_fraction > 0.0);
        assert_eq!(a.diurnal.class, DiurnalClass::NonDiurnal);
        assert!(a.diurnal.phase.is_none());
    }

    #[test]
    fn analyze_series_ground_truth_path() {
        let b = diurnal_block(5, 0.0);
        let series: Vec<f64> = (0..1_833u64).map(|r| b.true_availability(r * 660)).collect();
        let (report, trend) = analyze_series(&series, &DiurnalConfig::default());
        assert!(report.class.is_diurnal());
        assert!(trend.stationary);
    }

    #[test]
    fn phase_tracks_timezone() {
        // Same block shape at UTC+0 and UTC+6: phases differ by ~π/2.
        let cfg = AnalysisConfig::over_days(0, 14.0);
        let p0 = analyze_block(&diurnal_block(6, 0.0), &cfg).diurnal.phase.unwrap();
        let p6 = analyze_block(&diurnal_block(6, 6.0), &cfg).diurnal.phase.unwrap();
        let mut diff = p6 - p0;
        while diff > PI {
            diff -= 2.0 * PI;
        }
        while diff < -PI {
            diff += 2.0 * PI;
        }
        assert!((diff.abs() - PI / 2.0).abs() < 0.35, "Δphase = {diff}");
    }

    #[test]
    fn unroll_phase_lands_in_window() {
        for &(phase, lon) in
            &[(0.0, 0.0), (3.0, -170.0), (-3.0, 170.0), (1.5, 100.0), (-2.9, -120.0)]
        {
            let u = unroll_phase(phase, lon);
            let l = lon.to_radians();
            assert!(u >= l - PI - 1e-9 && u <= l + PI + 1e-9, "phase {phase} lon {lon} → {u}");
            // Unrolling preserves the angle modulo 2π.
            assert!(((u - phase) / (2.0 * PI)).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn outage_block_counted_in_summary() {
        let mut b = flat_block(7);
        b.outage = Some((100 * 660, 150 * 660));
        let cfg = AnalysisConfig::over_days(0, 14.0);
        let a = analyze_block(&b, &cfg);
        assert_eq!(a.summary().outages, 1);
    }
}
