//! Immutable aggregate indexes and their JSON renderings.
//!
//! Everything here is computed once at load time from the decoded
//! [`DatasetRow`]s and then only read: the per-key group bodies, the
//! list bodies, the summary and the outage histogram are fully rendered
//! strings, and a per-block lookup answers `/v1/block/{id}` by binary
//! search over the id-sorted rows. Worker threads share the state behind
//! an `Arc` and never take a lock on these paths — the only mutable
//! structure is the [`ShardedLru`](super::lru::ShardedLru) in front of
//! ad-hoc `/v1/query` folds.
//!
//! Number formatting mirrors the canonical TSV dataset (6 decimals, 4
//! for `strongest_cpd`), so every served float is exactly the dataset's
//! rendering of the same value. The batch-differential oracle
//! (`testkit/tests/serve_oracle.rs`) re-renders all of these bodies from
//! an index-free fold and compares byte-for-byte.

use std::collections::{BTreeMap, HashMap};

use super::http::json_escape;
use super::lru::{LruOutcome, ShardedLru};
use crate::export::DatasetRow;
use sleepwatch_spectral::DiurnalClass;

/// Counts behind one aggregation key (a country, an AS, a link type, or
/// a whole filtered view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCounts {
    /// Blocks in the group.
    pub blocks: u64,
    /// Strictly diurnal blocks.
    pub strict: u64,
    /// Strict or relaxed diurnal blocks.
    pub diurnal: u64,
    /// Blocks passing the stationarity screen.
    pub stationary: u64,
}

impl GroupCounts {
    /// Folds one row into the counts.
    pub fn absorb(&mut self, row: &DatasetRow) {
        self.blocks += 1;
        if row.class == DiurnalClass::Strict {
            self.strict += 1;
        }
        if row.class != DiurnalClass::NonDiurnal {
            self.diurnal += 1;
        }
        if row.stationary {
            self.stationary += 1;
        }
    }
}

/// `x/y` with the canonical 6-decimal rendering, `0.000000` when empty.
pub fn frac(x: u64, y: u64) -> String {
    if y == 0 {
        return "0.000000".to_string();
    }
    format!("{:.6}", x as f64 / y as f64)
}

fn group_fields(c: &GroupCounts) -> String {
    format!(
        "\"blocks\":{},\"strict\":{},\"diurnal\":{},\"strict_fraction\":{},\"diurnal_fraction\":{}",
        c.blocks,
        c.strict,
        c.diurnal,
        frac(c.strict, c.blocks),
        frac(c.diurnal, c.blocks),
    )
}

/// The `/v1/country/{code}` body.
pub fn country_body(code: &str, c: &GroupCounts) -> String {
    format!("{{\"country\":\"{}\",{}}}", json_escape(code), group_fields(c))
}

/// The `/v1/as/{asn}` body.
pub fn as_body(asn: u32, c: &GroupCounts) -> String {
    format!("{{\"asn\":{asn},{}}}", group_fields(c))
}

/// The `/v1/link/{keyword}` body.
pub fn link_body(keyword: &str, c: &GroupCounts) -> String {
    format!("{{\"link\":\"{}\",{}}}", json_escape(keyword), group_fields(c))
}

/// The `/v1/block/{id}` body for one row.
pub fn block_body(r: &DatasetRow) -> String {
    let class = match r.class {
        DiurnalClass::Strict => "d",
        DiurnalClass::Relaxed => "r",
        DiurnalClass::NonDiurnal => "n",
    };
    let phase = r.phase.map(|p| format!("{p:.6}")).unwrap_or_else(|| "null".into());
    let country = r
        .country
        .as_deref()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .unwrap_or_else(|| "null".into());
    let links: Vec<String> = r.links.iter().map(|l| format!("\"{}\"", json_escape(l))).collect();
    format!(
        "{{\"block\":{},\"class\":\"{class}\",\"phase\":{phase},\"mean_a\":{:.6},\
         \"strongest_cpd\":{:.4},\"stationary\":{},\"outages\":{},\"probes\":{},\
         \"country\":{country},\"asn\":{},\"links\":[{}]}}",
        r.block_id,
        r.mean_a,
        r.strongest_cpd,
        r.stationary,
        r.outages,
        r.probes,
        r.asn,
        links.join(","),
    )
}

/// The `/v1/summary` body.
pub fn summary_body(rows: &[DatasetRow]) -> String {
    let mut c = GroupCounts::default();
    let mut located = 0u64;
    for r in rows {
        c.absorb(r);
        if r.country.is_some() {
            located += 1;
        }
    }
    format!(
        "{{\"blocks\":{},\"strict\":{},\"diurnal\":{},\"stationary\":{},\"located\":{located},\
         \"strict_fraction\":{},\"diurnal_fraction\":{}}}",
        c.blocks,
        c.strict,
        c.diurnal,
        c.stationary,
        frac(c.strict, c.blocks),
        frac(c.diurnal, c.blocks),
    )
}

/// The `/v1/outages` body: the outage-window series as a histogram of
/// blocks by outage count, ascending.
pub fn outages_body(rows: &[DatasetRow]) -> String {
    let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total = 0u64;
    let mut with = 0u64;
    for r in rows {
        *hist.entry(r.outages).or_insert(0) += 1;
        total += u64::from(r.outages);
        if r.outages > 0 {
            with += 1;
        }
    }
    let buckets: Vec<String> =
        hist.iter().map(|(k, n)| format!("{{\"outages\":{k},\"blocks\":{n}}}")).collect();
    format!(
        "{{\"blocks\":{},\"blocks_with_outages\":{with},\"total_outages\":{total},\
         \"histogram\":[{}]}}",
        rows.len(),
        buckets.join(","),
    )
}

/// An ad-hoc cross-dimension filter, as parsed from `/v1/query`'s query
/// string. `None` dimensions match everything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Filter {
    /// Country code, exact match.
    pub country: Option<String>,
    /// Origin AS.
    pub asn: Option<u32>,
    /// Link-type keyword; a row matches when it carries the keyword.
    pub link: Option<String>,
    /// Stationarity verdict.
    pub stationary: Option<bool>,
}

impl Filter {
    /// True when the row passes every present dimension.
    pub fn matches(&self, r: &DatasetRow) -> bool {
        if let Some(c) = &self.country {
            if r.country.as_deref() != Some(c.as_str()) {
                return false;
            }
        }
        if let Some(a) = self.asn {
            if r.asn != a {
                return false;
            }
        }
        if let Some(l) = &self.link {
            if !r.links.iter().any(|k| k == l) {
                return false;
            }
        }
        if let Some(s) = self.stationary {
            if r.stationary != s {
                return false;
            }
        }
        true
    }

    /// Canonical cache key: present dimensions in fixed order, so
    /// equivalent filters share one LRU entry.
    pub fn cache_key(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = &self.country {
            parts.push(format!("country={c}"));
        }
        if let Some(a) = self.asn {
            parts.push(format!("as={a}"));
        }
        if let Some(l) = &self.link {
            parts.push(format!("link={l}"));
        }
        if let Some(s) = self.stationary {
            parts.push(format!("stationary={s}"));
        }
        parts.join("&")
    }

    /// The echoed `"filter"` object for the response body.
    fn echo(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = &self.country {
            parts.push(format!("\"country\":\"{}\"", json_escape(c)));
        }
        if let Some(a) = self.asn {
            parts.push(format!("\"asn\":{a}"));
        }
        if let Some(l) = &self.link {
            parts.push(format!("\"link\":\"{}\"", json_escape(l)));
        }
        if let Some(s) = self.stationary {
            parts.push(format!("\"stationary\":{s}"));
        }
        format!("{{{}}}", parts.join(","))
    }
}

/// The `/v1/query` body: a straight fold of `filter` over `rows`.
pub fn query_body(rows: &[DatasetRow], filter: &Filter) -> String {
    let mut c = GroupCounts::default();
    for r in rows.iter().filter(|r| filter.matches(r)) {
        c.absorb(r);
    }
    format!(
        "{{\"filter\":{},\"blocks\":{},\"strict\":{},\"diurnal\":{},\"stationary\":{},\
         \"strict_fraction\":{}}}",
        filter.echo(),
        c.blocks,
        c.strict,
        c.diurnal,
        c.stationary,
        frac(c.strict, c.blocks),
    )
}

/// The immutable serving state: id-sorted rows, fully rendered list and
/// summary bodies, per-key group bodies, and the `/v1/query` LRU.
#[derive(Debug)]
pub struct ServeState {
    rows: Vec<DatasetRow>,
    summary: String,
    countries: String,
    ases: String,
    links: String,
    outages: String,
    by_country: HashMap<String, String>,
    by_asn: HashMap<u32, String>,
    by_link: HashMap<String, String>,
    lru: ShardedLru,
}

impl ServeState {
    /// Builds every index from `rows` (sorted by block id internally).
    /// `lru_capacity` bounds the ad-hoc query cache; zero disables it.
    pub fn build(mut rows: Vec<DatasetRow>, lru_capacity: usize) -> ServeState {
        rows.sort_by_key(|r| r.block_id);
        let mut by_country: BTreeMap<String, GroupCounts> = BTreeMap::new();
        let mut by_asn: BTreeMap<u32, GroupCounts> = BTreeMap::new();
        let mut by_link: BTreeMap<String, GroupCounts> = BTreeMap::new();
        for r in &rows {
            if let Some(c) = &r.country {
                by_country.entry(c.clone()).or_default().absorb(r);
            }
            by_asn.entry(r.asn).or_default().absorb(r);
            for l in &r.links {
                by_link.entry(l.clone()).or_default().absorb(r);
            }
        }
        let countries: Vec<String> = by_country.iter().map(|(k, c)| country_body(k, c)).collect();
        let ases: Vec<String> = by_asn.iter().map(|(k, c)| as_body(*k, c)).collect();
        let links: Vec<String> = by_link.iter().map(|(k, c)| link_body(k, c)).collect();
        ServeState {
            summary: summary_body(&rows),
            countries: format!("{{\"countries\":[{}]}}", countries.join(",")),
            ases: format!("{{\"ases\":[{}]}}", ases.join(",")),
            links: format!("{{\"links\":[{}]}}", links.join(",")),
            outages: outages_body(&rows),
            by_country: by_country.iter().map(|(k, c)| (k.clone(), country_body(k, c))).collect(),
            by_asn: by_asn.iter().map(|(k, c)| (*k, as_body(*k, c))).collect(),
            by_link: by_link.iter().map(|(k, c)| (k.clone(), link_body(k, c))).collect(),
            lru: ShardedLru::new(lru_capacity),
            rows,
        }
    }

    /// The id-sorted rows the indexes were built from.
    pub fn rows(&self) -> &[DatasetRow] {
        &self.rows
    }

    /// The `/v1/summary` body.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The `/v1/country` list body.
    pub fn countries(&self) -> &str {
        &self.countries
    }

    /// The `/v1/as` list body.
    pub fn ases(&self) -> &str {
        &self.ases
    }

    /// The `/v1/link` list body.
    pub fn links(&self) -> &str {
        &self.links
    }

    /// The `/v1/outages` body.
    pub fn outages(&self) -> &str {
        &self.outages
    }

    /// The `/v1/country/{code}` body, if the country is present.
    pub fn country(&self, code: &str) -> Option<&str> {
        self.by_country.get(code).map(String::as_str)
    }

    /// The `/v1/as/{asn}` body, if the AS is present.
    pub fn asn(&self, asn: u32) -> Option<&str> {
        self.by_asn.get(&asn).map(String::as_str)
    }

    /// The `/v1/link/{keyword}` body, if the keyword is present.
    pub fn link(&self, keyword: &str) -> Option<&str> {
        self.by_link.get(keyword).map(String::as_str)
    }

    /// The `/v1/block/{id}` body: binary search over the sorted rows,
    /// rendered on demand (worlds are large; responses are not).
    pub fn block(&self, id: u64) -> Option<String> {
        let i = self.rows.binary_search_by_key(&id, |r| r.block_id).ok()?;
        Some(block_body(&self.rows[i]))
    }

    /// The `/v1/query` body for `filter`, served from the LRU when
    /// cached, folded over the rows otherwise.
    pub fn query(&self, filter: &Filter) -> (String, LruOutcome) {
        self.lru.get_or_insert_with(&filter.cache_key(), || query_body(&self.rows, filter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, country: Option<&str>, asn: u32, links: &[&str]) -> DatasetRow {
        DatasetRow {
            block_id: id,
            class: if id % 2 == 0 { DiurnalClass::Strict } else { DiurnalClass::NonDiurnal },
            phase: (id % 2 == 0).then_some(1.25),
            mean_a: 0.5,
            strongest_cpd: 1.0,
            stationary: true,
            outages: (id % 3) as u32,
            probes: 100 + id,
            lon: country.map(|_| 10.0),
            lat: country.map(|_| 20.0),
            country: country.map(String::from),
            centroid: false,
            alloc: "1994-05".into(),
            asn,
            links: links.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn state() -> ServeState {
        ServeState::build(
            vec![
                row(2, Some("US"), 7, &["adsl"]),
                row(1, Some("US"), 7, &["cable", "adsl"]),
                row(3, Some("DE"), 9, &[]),
                row(4, None, 9, &["cable"]),
            ],
            8,
        )
    }

    #[test]
    fn rows_are_sorted_and_lookup_works() {
        let s = state();
        let ids: Vec<u64> = s.rows().iter().map(|r| r.block_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        assert!(s.block(3).unwrap().starts_with("{\"block\":3,"));
        assert!(s.block(99).is_none());
    }

    #[test]
    fn group_bodies_agree_with_list_bodies() {
        let s = state();
        for code in ["US", "DE"] {
            let one = s.country(code).unwrap();
            assert!(s.countries().contains(one), "{code} body missing from list");
        }
        assert!(s.country("FR").is_none());
        assert!(s.countries().starts_with("{\"countries\":["));
        let us = s.country("US").unwrap();
        assert!(us.contains("\"blocks\":2") && us.contains("\"strict\":1"));
        assert!(us.contains("\"strict_fraction\":0.500000"));
    }

    #[test]
    fn summary_counts_located_blocks() {
        let s = state();
        assert!(s.summary().contains("\"blocks\":4"));
        assert!(s.summary().contains("\"located\":3"));
    }

    #[test]
    fn filters_compose_and_cache() {
        let s = state();
        let f =
            Filter { country: Some("US".into()), link: Some("adsl".into()), ..Filter::default() };
        let (body, out) = s.query(&f);
        assert_eq!(out, LruOutcome::Miss { evicted: false });
        assert!(body.contains("\"blocks\":2"), "{body}");
        let (again, out) = s.query(&f);
        assert_eq!(out, LruOutcome::Hit);
        assert_eq!(body, again);
        assert_eq!(body, query_body(s.rows(), &f));
    }

    #[test]
    fn outage_histogram_sums() {
        let s = state();
        // Outages are id % 3: blocks 1,2,3,4 → 1,2,0,1.
        let b = s.outages();
        assert!(b.contains("\"total_outages\":4"), "{b}");
        assert!(b.contains("\"blocks_with_outages\":3"), "{b}");
        assert!(b.contains("{\"outages\":0,\"blocks\":1}"), "{b}");
    }
}
