//! Minimal HTTP/1.1 codec for the query service.
//!
//! The server speaks exactly the subset the routes need: `GET` requests
//! with no body, `HTTP/1.0` or `HTTP/1.1`, keep-alive and pipelining,
//! and plain-JSON responses with explicit `Content-Length`. Everything
//! else — other methods, bodies, oversized request lines or header
//! blocks — is refused with a typed error that maps to a 4xx/5xx status,
//! never a panic: the parser is total over arbitrary byte soup (pinned
//! by `core/tests/serve_prop.rs`).
//!
//! Hard limits bound what one connection can make the server hold:
//! [`MAX_REQUEST_LINE`] bytes of request line, [`MAX_HEADER_BYTES`] of
//! header block across at most [`MAX_HEADERS`] headers, zero body bytes.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line (method + target + version + CRLF).
pub const MAX_REQUEST_LINE: usize = 1024;
/// Total header-block budget in bytes (all header lines together).
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum number of header lines in one request.
pub const MAX_HEADERS: usize = 64;

/// A parsed request: the target (path plus optional query string) and
/// whether the connection should stay open afterwards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request target as sent, e.g. `/v1/query?country=US`.
    pub target: String,
    /// Keep-alive decision: `HTTP/1.1` unless `Connection: close`,
    /// `HTTP/1.0` only with `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Everything that can go wrong reading one request. Each variant maps
/// to either a 4xx/5xx response ([`status_for`]) or a silent close.
#[derive(Debug)]
pub enum RequestError {
    /// Clean EOF before the first request byte — the client is done.
    Closed,
    /// EOF in the middle of a request: nothing to respond to.
    Truncated,
    /// Transport error; timeouts map to 408, the rest close silently.
    Io(io::Error),
    /// Request line exceeded [`MAX_REQUEST_LINE`].
    LineTooLong,
    /// Request line was not `METHOD TARGET VERSION`.
    BadRequestLine,
    /// Any method other than `GET`.
    BadMethod,
    /// Any version other than `HTTP/1.0` / `HTTP/1.1`.
    BadVersion,
    /// Header block exceeded [`MAX_HEADER_BYTES`] or [`MAX_HEADERS`].
    HeadersTooLarge,
    /// A header line without a colon, or an unparseable
    /// `Content-Length`.
    BadHeader,
    /// The request announced a body (`Content-Length` > 0 or any
    /// `Transfer-Encoding`); the query service takes none.
    HasBody,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Truncated => write!(f, "connection closed mid-request"),
            RequestError::Io(e) => write!(f, "read failed: {e}"),
            RequestError::LineTooLong => write!(f, "request line too long"),
            RequestError::BadRequestLine => write!(f, "malformed request line"),
            RequestError::BadMethod => write!(f, "method not allowed"),
            RequestError::BadVersion => write!(f, "http version not supported"),
            RequestError::HeadersTooLarge => write!(f, "header block too large"),
            RequestError::BadHeader => write!(f, "malformed header"),
            RequestError::HasBody => write!(f, "request bodies not accepted"),
        }
    }
}

/// True when `e` is a read-timeout surfaced by a blocking socket.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// The response owed for a request-read failure: `Some((status, reason,
/// message))` when the client deserves an answer, `None` when the only
/// correct move is to close the connection.
pub fn status_for(e: &RequestError) -> Option<(u16, &'static str, &'static str)> {
    match e {
        RequestError::Closed | RequestError::Truncated => None,
        RequestError::Io(e) if is_timeout(e) => {
            Some((408, "Request Timeout", "timed out waiting for a request"))
        }
        RequestError::Io(_) => None,
        RequestError::LineTooLong => {
            Some((431, "Request Header Fields Too Large", "request line too long"))
        }
        RequestError::BadRequestLine => Some((400, "Bad Request", "malformed request line")),
        RequestError::BadMethod => Some((405, "Method Not Allowed", "only GET is supported")),
        RequestError::BadVersion => {
            Some((505, "HTTP Version Not Supported", "only HTTP/1.0 and HTTP/1.1 are supported"))
        }
        RequestError::HeadersTooLarge => {
            Some((431, "Request Header Fields Too Large", "header block too large"))
        }
        RequestError::BadHeader => Some((400, "Bad Request", "malformed header")),
        RequestError::HasBody => Some((413, "Content Too Large", "request bodies not accepted")),
    }
}

/// Reads one `\n`-terminated line into `out` (CR/LF stripped), refusing
/// lines longer than `max`. Returns `Ok(true)` on a complete line,
/// `Ok(false)` on EOF with nothing consumed for this line.
fn read_line<R: BufRead>(r: &mut R, max: usize, out: &mut Vec<u8>) -> Result<bool, RequestError> {
    out.clear();
    loop {
        let buf = r.fill_buf().map_err(RequestError::Io)?;
        if buf.is_empty() {
            if out.is_empty() {
                return Ok(false);
            }
            return Err(RequestError::Truncated);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if out.len() + i > max {
                    return Err(RequestError::LineTooLong);
                }
                out.extend_from_slice(&buf[..i]);
                r.consume(i + 1);
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Ok(true);
            }
            None => {
                let n = buf.len();
                if out.len() + n > max {
                    return Err(RequestError::LineTooLong);
                }
                out.extend_from_slice(buf);
                r.consume(n);
            }
        }
    }
}

/// Reads and validates one request from `r`. Total: any byte sequence
/// yields a [`Request`] or a typed [`RequestError`], never a panic.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, RequestError> {
    let mut line = Vec::with_capacity(128);
    // Tolerate a little CRLF slack between pipelined requests (RFC 9112
    // §2.2), but not an unbounded stream of blank lines.
    for _ in 0..4 {
        if !read_line(r, MAX_REQUEST_LINE, &mut line)? {
            return Err(RequestError::Closed);
        }
        if !line.is_empty() {
            break;
        }
    }
    if line.is_empty() {
        return Err(RequestError::BadRequestLine);
    }
    let text = std::str::from_utf8(&line).map_err(|_| RequestError::BadRequestLine)?;
    let mut parts = text.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(RequestError::BadRequestLine),
    };
    if !target.starts_with('/') {
        return Err(RequestError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(RequestError::BadVersion),
    };
    if method != "GET" {
        return Err(RequestError::BadMethod);
    }
    let target = target.to_string();

    let mut keep_alive = http11;
    let mut header_bytes = 0usize;
    let mut headers = 0usize;
    loop {
        if !read_line(r, MAX_HEADER_BYTES, &mut line)? {
            return Err(RequestError::Truncated);
        }
        if line.is_empty() {
            break;
        }
        headers += 1;
        header_bytes += line.len() + 2;
        if headers > MAX_HEADERS || header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::HeadersTooLarge);
        }
        let text = std::str::from_utf8(&line).map_err(|_| RequestError::BadHeader)?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(RequestError::BadHeader);
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => match value.to_ascii_lowercase().as_str() {
                "close" => keep_alive = false,
                "keep-alive" => keep_alive = true,
                _ => {}
            },
            "content-length" => {
                let n: u64 = value.parse().map_err(|_| RequestError::BadHeader)?;
                if n > 0 {
                    return Err(RequestError::HasBody);
                }
            }
            "transfer-encoding" => return Err(RequestError::HasBody),
            _ => {}
        }
    }
    Ok(Request { target, keep_alive })
}

/// Writes one JSON response; returns the bytes put on the wire. The
/// head is assembled in one buffer so a response is a single `write`
/// into the connection's `BufWriter`.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<u64> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    Ok((head.len() + body.len()) as u64)
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The standard error body: `{"error":"..."}`.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json_escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse(b"GET /v1/summary HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.target, "/v1/summary");
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_is_honoured() {
        let r = parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn refuses_methods_versions_and_bodies() {
        assert!(matches!(parse(b"POST / HTTP/1.1\r\n\r\n"), Err(RequestError::BadMethod)));
        assert!(matches!(parse(b"GET / HTTP/2.0\r\n\r\n"), Err(RequestError::BadVersion)));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            Err(RequestError::HasBody)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::HasBody)
        ));
    }

    #[test]
    fn clean_and_dirty_eofs_are_distinct() {
        assert!(matches!(parse(b""), Err(RequestError::Closed)));
        assert!(matches!(parse(b"GET /v1/su"), Err(RequestError::Truncated)));
        assert!(matches!(parse(b"GET / HTTP/1.1\r\nHost: x"), Err(RequestError::Truncated)));
    }

    #[test]
    fn limits_are_enforced() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(parse(long.as_bytes()), Err(RequestError::LineTooLong)));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(parse(many.as_bytes()), Err(RequestError::HeadersTooLarge)));
    }

    #[test]
    fn response_bytes_are_accounted() {
        let mut out = Vec::new();
        let n = write_response(&mut out, 200, "OK", "{}", true).unwrap();
        assert_eq!(n as usize, out.len());
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        assert!(text.contains("Content-Length: 2\r\n"));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
