//! The query service: serve an analyzed world's aggregate views over
//! HTTP (ROADMAP item 1, the serving era).
//!
//! A loaded world — an `SLPWBIN1` dataset or a checkpoint journal — is
//! decoded once into canonical [`DatasetRow`]s, folded into immutable
//! indexes ([`ServeState`]), and served read-only from every worker
//! thread: the paper's headline aggregates (diurnal fraction by country,
//! AS and link type), per-block verdict+phase lookups, the outage-window
//! series, and ad-hoc cross-dimension filters behind a Mutex-sharded
//! LRU. The obs registry is exposed at `GET /metrics`.
//!
//! The HTTP front end is hand-rolled over `std::net`, same discipline as
//! `probing::transport`: blocking sockets with read timeouts, bounded
//! request parsing ([`http`]), keep-alive and pipelining, no
//! dependencies. Workers share one nonblocking listener and poll a stop
//! flag, so a [`QueryServer`] shuts down cleanly mid-accept.
//!
//! Correctness is pinned by a batch-differential oracle
//! (`testkit/tests/serve_oracle.rs`): every served body is recomputed by
//! index-free straight-line folds over the same rows and compared
//! byte-for-byte — across fault presets, dataset modes, thread counts,
//! and dataset-vs-journal loading.

pub mod http;
pub mod index;
pub mod lru;

use std::collections::HashSet;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::export::{dataset_rows, DatasetRow};
use crate::framing::DecodeError;
use crate::journal::{replay_bytes, replay_bytes_v2, JournalHeader, ReplayOutcome};
use crate::worldrun::WorldAnalysis;
use http::{error_body, is_timeout, RequestError};
use index::Filter;
use sleepwatch_simnet::WorldConfig;

pub use index::ServeState;
pub use lru::{LruOutcome, LruShard, ShardedLru};

// The journal file magics, as `crate::journal` writes them (private
// there; the on-disk encoding is pinned by `header_compat` tests).
const JOURNAL_MAGIC_V1: u64 = u64::from_be_bytes(*b"SLPWJNL1");
const JOURNAL_MAGIC_V2: u64 = u64::from_be_bytes(*b"SLPWJNL2");

/// Everything that can stop a world from being loaded for serving.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(io::Error),
    /// Dataset bytes refused by the binary decoder (corruption, missing
    /// world for a seed-joined file, or a foreign run's identity).
    Decode(DecodeError),
    /// The journal's header is intact but names a different run.
    ForeignJournal {
        /// Header found in the file.
        found: JournalHeader,
    },
    /// The source decoded cleanly but holds no block rows to serve.
    Empty,
    /// The file starts with neither a dataset nor a journal magic.
    UnknownFormat,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "could not read source: {e}"),
            LoadError::Decode(e) => write!(f, "could not decode dataset: {e}"),
            LoadError::ForeignJournal { found } => write!(
                f,
                "journal belongs to a different run (seed {}, {} blocks)",
                found.identity().world_seed,
                found.identity().num_blocks,
            ),
            LoadError::Empty => write!(f, "source holds no block rows to serve"),
            LoadError::UnknownFormat => {
                write!(f, "not an SLPWBIN1 dataset or SLPWJNL journal")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> Self {
        LoadError::Decode(e)
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Decodes dataset bytes into servable rows. Seed-joined files need the
/// producing `world`; foreign-run files are refused by the decoder.
pub fn rows_from_dataset_bytes(
    bytes: &[u8],
    world: Option<&WorldConfig>,
) -> Result<Vec<DatasetRow>, LoadError> {
    let rows = crate::binfmt::decode_dataset(bytes, world)?;
    if rows.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(rows)
}

/// Replays journal bytes (either version) into servable rows, refusing
/// a journal from any run but `expect`'s. Replay tolerates a damaged
/// tail like crash recovery does; duplicate block records keep the
/// first occurrence (the crash-resume rule), and rows come out exactly
/// as [`dataset_rows`] renders them — so a journal-loaded server is
/// byte-identical to a dataset-loaded one.
pub fn rows_from_journal_bytes(
    bytes: &[u8],
    expect: &JournalHeader,
) -> Result<Vec<DatasetRow>, LoadError> {
    let magic = bytes.get(0..8).map(|b| u64::from_le_bytes(b.try_into().expect("eight bytes")));
    let outcome = match magic {
        Some(JOURNAL_MAGIC_V1) => replay_bytes(bytes, expect),
        Some(JOURNAL_MAGIC_V2) => replay_bytes_v2(bytes, expect)?,
        _ => return Err(LoadError::UnknownFormat),
    };
    let mut reports = match outcome {
        ReplayOutcome::Resumed { reports, .. } => reports,
        ReplayOutcome::Fresh { .. } => return Err(LoadError::Empty),
        ReplayOutcome::HeaderMismatch { found } => return Err(LoadError::ForeignJournal { found }),
    };
    let mut seen = HashSet::new();
    reports.retain(|r| seen.insert(r.summary.block_id));
    reports.sort_by_key(|r| r.summary.block_id);
    if reports.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(dataset_rows(&WorldAnalysis { reports, quarantined: Vec::new() }))
}

/// Loads servable rows from `path`, sniffing the format by magic: an
/// `SLPWBIN1` dataset (seed-joined files need `world`) or a v1/v2
/// journal (checked against `expect`).
pub fn load_rows(
    path: &Path,
    world: Option<&WorldConfig>,
    expect: &JournalHeader,
) -> Result<Vec<DatasetRow>, LoadError> {
    let bytes = std::fs::read(path)?;
    match bytes.get(0..8) {
        Some(b) if *b == *b"SLPWBIN1" => rows_from_dataset_bytes(&bytes, world),
        _ => rows_from_journal_bytes(&bytes, expect),
    }
}

/// Renders the obs registry for `GET /metrics`: every counter in the
/// process-global registry, sorted by name.
pub fn metrics_body() -> String {
    let snap = sleepwatch_obs::Snapshot::capture(sleepwatch_obs::global());
    let counters: Vec<String> = snap.counters.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{\"counters\":{{{}}}}}", counters.join(","))
}

/// Parses `/v1/query`'s query string into a [`Filter`]. Empty string →
/// empty filter (matches everything). Unknown, duplicate or malformed
/// parameters are refused with the message for a 400 body.
fn parse_filter(query: &str) -> Result<Filter, String> {
    let mut f = Filter::default();
    if query.is_empty() {
        return Ok(f);
    }
    for pair in query.split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("malformed query parameter {pair:?}"));
        };
        if v.is_empty() {
            return Err(format!("empty value for query parameter \"{k}\""));
        }
        match k {
            "country" => {
                if f.country.replace(v.to_string()).is_some() {
                    return Err("duplicate query parameter \"country\"".into());
                }
            }
            "as" => {
                let n = v.parse().map_err(|_| format!("malformed AS number {v:?}"))?;
                if f.asn.replace(n).is_some() {
                    return Err("duplicate query parameter \"as\"".into());
                }
            }
            "link" => {
                if f.link.replace(v.to_string()).is_some() {
                    return Err("duplicate query parameter \"link\"".into());
                }
            }
            "stationary" => {
                let b = match v {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    _ => return Err(format!("malformed stationary value {v:?}")),
                };
                if f.stationary.replace(b).is_some() {
                    return Err("duplicate query parameter \"stationary\"".into());
                }
            }
            _ => return Err(format!("unknown query parameter \"{k}\"")),
        }
    }
    Ok(f)
}

/// Routes one request target to `(status, reason, body)`. Pure apart
/// from LRU bookkeeping: same state + same target → same bytes, which is
/// what the differential oracle holds the server to.
pub fn route(state: &ServeState, target: &str) -> (u16, &'static str, String) {
    let obs = sleepwatch_obs::global();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if query.is_some() && path != "/v1/query" {
        return (400, "Bad Request", error_body("this route takes no query string"));
    }
    let ok = |body: String| (200, "OK", body);
    let not_found = |what: &str| (404, "Not Found", error_body(what));
    match path {
        "/metrics" => ok(metrics_body()),
        "/v1/summary" => ok(state.summary().to_string()),
        "/v1/country" => ok(state.countries().to_string()),
        "/v1/as" => ok(state.ases().to_string()),
        "/v1/link" => ok(state.links().to_string()),
        "/v1/outages" => ok(state.outages().to_string()),
        "/v1/query" => match parse_filter(query.unwrap_or("")) {
            Ok(filter) => {
                let (body, outcome) = state.query(&filter);
                match outcome {
                    LruOutcome::Hit => obs.serve.lru_hits.incr(),
                    LruOutcome::Miss { evicted } => {
                        obs.serve.lru_misses.incr();
                        if evicted {
                            obs.serve.lru_evictions.incr();
                        }
                    }
                }
                ok(body)
            }
            Err(msg) => (400, "Bad Request", error_body(&msg)),
        },
        _ => {
            if let Some(code) = path.strip_prefix("/v1/country/") {
                return match state.country(code) {
                    Some(body) => ok(body.to_string()),
                    None => not_found("unknown country"),
                };
            }
            if let Some(asn) = path.strip_prefix("/v1/as/") {
                return match asn.parse::<u32>() {
                    Ok(n) => match state.asn(n) {
                        Some(body) => ok(body.to_string()),
                        None => not_found("unknown as"),
                    },
                    Err(_) => (400, "Bad Request", error_body("malformed AS number")),
                };
            }
            if let Some(kw) = path.strip_prefix("/v1/link/") {
                return match state.link(kw) {
                    Some(body) => ok(body.to_string()),
                    None => not_found("unknown link"),
                };
            }
            if let Some(id) = path.strip_prefix("/v1/block/") {
                return match id.parse::<u64>() {
                    Ok(n) => match state.block(n) {
                        Some(body) => ok(body),
                        None => not_found("unknown block"),
                    },
                    Err(_) => (400, "Bad Request", error_body("malformed block id")),
                };
            }
            not_found("no such route")
        }
    }
}

/// Per-connection accounting, returned by [`serve_streams`] so tests
/// can assert exact counts without reading the global registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Requests parsed successfully.
    pub requests: u64,
    /// Responses fully written (including 4xx answers).
    pub responses: u64,
    /// Protocol violations (malformed/oversized/truncated requests).
    pub bad_requests: u64,
    /// Read timeouts waiting for a request.
    pub timeouts: u64,
    /// Connections lost while writing a response.
    pub write_errors: u64,
    /// Bytes put on the wire.
    pub bytes_out: u64,
}

/// Serves one connection's request stream until it closes, errors or
/// times out. Generic over the transport so chaos tests can drive it
/// with hand-built readers and writers; [`serve_connection`] adapts a
/// `TcpStream`.
///
/// Keep-alive and pipelining are supported; responses are flushed only
/// once the read buffer holds no further pipelined request, so a
/// pipelined batch costs one write syscall per `BufWriter` fill rather
/// than one per response.
pub fn serve_streams<R: Read, W: Write>(reader: R, writer: W, state: &ServeState) -> ConnStats {
    let obs = sleepwatch_obs::global();
    let mut r = BufReader::new(reader);
    let mut w = BufWriter::new(writer);
    let mut s = ConnStats::default();
    loop {
        match http::read_request(&mut r) {
            Ok(req) => {
                s.requests += 1;
                obs.serve.requests.incr();
                let (status, reason, body) = route(state, &req.target);
                match http::write_response(&mut w, status, reason, &body, req.keep_alive) {
                    Ok(n) => {
                        s.responses += 1;
                        s.bytes_out += n;
                        obs.serve.bytes_out.add(n);
                        if status < 400 {
                            obs.serve.responses_ok.incr();
                        } else {
                            obs.serve.responses_err.incr();
                        }
                    }
                    Err(_) => {
                        s.write_errors += 1;
                        obs.serve.write_errors.incr();
                        return s;
                    }
                }
                if !req.keep_alive {
                    let _ = w.flush();
                    return s;
                }
                if r.buffer().is_empty() && w.flush().is_err() {
                    s.write_errors += 1;
                    obs.serve.write_errors.incr();
                    return s;
                }
            }
            Err(e) => {
                match &e {
                    RequestError::Closed => {}
                    RequestError::Io(io) if is_timeout(io) => {
                        s.timeouts += 1;
                        obs.serve.read_timeouts.incr();
                    }
                    RequestError::Io(_) => {}
                    _ => {
                        s.bad_requests += 1;
                        obs.serve.bad_requests.incr();
                    }
                }
                if let Some((status, reason, msg)) = http::status_for(&e) {
                    if let Ok(n) =
                        http::write_response(&mut w, status, reason, &error_body(msg), false)
                    {
                        s.responses += 1;
                        s.bytes_out += n;
                        obs.serve.bytes_out.add(n);
                        obs.serve.responses_err.incr();
                    }
                }
                let _ = w.flush();
                return s;
            }
        }
    }
}

/// Adapts one accepted `TcpStream` for [`serve_streams`]: blocking mode
/// with `read_timeout`, Nagle off (responses are small and latency is
/// gated), and a cloned handle for the write side.
pub fn serve_connection(
    stream: TcpStream,
    state: &ServeState,
    read_timeout: Duration,
) -> io::Result<ConnStats> {
    sleepwatch_obs::global().serve.connections.incr();
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let _ = stream.set_nodelay(true);
    let writer = stream.try_clone()?;
    Ok(serve_streams(stream, writer, state))
}

/// Tunables for a [`QueryServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads accepting and serving connections.
    pub threads: usize,
    /// How long a worker waits for (the rest of) a request before
    /// answering 408 and closing — the slowloris bound.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { threads: 4, read_timeout: Duration::from_secs(5) }
    }
}

/// Default `/v1/query` LRU capacity (see [`ServeState::build`]).
pub const DEFAULT_LRU_CAPACITY: usize = 1024;

/// A running query service: `threads` workers sharing one nonblocking
/// listener and one immutable [`ServeState`]. Dropping without
/// [`stop`](Self::stop) detaches the workers; stopping joins them.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Starts serving `state` on `listener`.
    pub fn spawn(
        listener: TcpListener,
        state: Arc<ServeState>,
        cfg: &ServeConfig,
    ) -> io::Result<QueryServer> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..cfg.threads.max(1))
            .map(|_| {
                let listener = Arc::clone(&listener);
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                let timeout = cfg.read_timeout;
                thread::spawn(move || worker(&listener, &state, &stop, timeout))
            })
            .collect();
        Ok(QueryServer { addr, stop, workers })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every worker to stop and joins them. Connections being
    /// served finish their current request stream first.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.workers {
            let _ = h.join();
        }
    }
}

/// One worker's accept loop: poll the shared nonblocking listener,
/// serve each accepted connection to completion, nap on `WouldBlock` so
/// the stop flag is observed promptly.
fn worker(listener: &TcpListener, state: &ServeState, stop: &AtomicBool, timeout: Duration) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_connection(stream, state, timeout);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepwatch_spectral::DiurnalClass;

    fn rows() -> Vec<DatasetRow> {
        (0..6)
            .map(|id| DatasetRow {
                block_id: id,
                class: if id % 3 == 0 { DiurnalClass::Strict } else { DiurnalClass::Relaxed },
                phase: Some(0.5),
                mean_a: 0.25,
                strongest_cpd: 1.0,
                stationary: id % 2 == 0,
                outages: 0,
                probes: 10,
                lon: Some(1.0),
                lat: Some(2.0),
                country: Some(if id < 3 { "US".into() } else { "DE".into() }),
                centroid: false,
                alloc: "1994-05".into(),
                asn: 5,
                links: vec!["adsl".into()],
            })
            .collect()
    }

    fn state() -> ServeState {
        ServeState::build(rows(), 8)
    }

    #[test]
    fn routes_answer_and_miss() {
        let s = state();
        assert_eq!(route(&s, "/v1/summary").0, 200);
        assert_eq!(route(&s, "/v1/country/US").0, 200);
        assert_eq!(route(&s, "/v1/country/FR").0, 404);
        assert_eq!(route(&s, "/v1/as/5").0, 200);
        assert_eq!(route(&s, "/v1/as/bogus").0, 400);
        assert_eq!(route(&s, "/v1/block/4").0, 200);
        assert_eq!(route(&s, "/v1/block/40").0, 404);
        assert_eq!(route(&s, "/v1/nope").0, 404);
        assert_eq!(route(&s, "/v1/summary?x=1").0, 400);
        assert_eq!(route(&s, "/metrics").0, 200);
    }

    #[test]
    fn query_filters_parse_strictly() {
        let s = state();
        assert_eq!(route(&s, "/v1/query").0, 200);
        assert_eq!(route(&s, "/v1/query?country=US&stationary=1").0, 200);
        assert_eq!(route(&s, "/v1/query?country=US&country=DE").0, 400);
        assert_eq!(route(&s, "/v1/query?as=x").0, 400);
        assert_eq!(route(&s, "/v1/query?bogus=1").0, 400);
        assert_eq!(route(&s, "/v1/query?country=").0, 400);
    }

    #[test]
    fn pipelined_requests_on_one_connection() {
        let s = state();
        let input =
            b"GET /v1/summary HTTP/1.1\r\n\r\nGET /v1/as/5 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut out = Vec::new();
        let stats = serve_streams(&input[..], &mut out, &s);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.responses, 2);
        assert_eq!(stats.bytes_out as usize, out.len());
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2);
    }

    #[test]
    fn garbage_after_a_request_gets_one_answer_then_400() {
        let s = state();
        let input = b"GET /v1/summary HTTP/1.1\r\n\r\n\x01\x02GARBAGE\r\n\r\n";
        let mut out = Vec::new();
        let stats = serve_streams(&input[..], &mut out, &s);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.bad_requests, 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("HTTP/1.1 200 OK"));
        assert!(text.contains("HTTP/1.1 400 Bad Request"));
    }

    #[test]
    fn dataset_and_journal_magics_are_distinguished() {
        let err = rows_from_journal_bytes(
            b"not a journal at all",
            &JournalHeader::from_identity(&crate::framing::RunIdentity {
                world_seed: 1,
                num_blocks: 1,
                rounds: 1,
                start_time: 0,
            }),
        );
        assert!(matches!(err, Err(LoadError::UnknownFormat)));
    }
}
