//! A bounded, Mutex-sharded LRU for ad-hoc query results.
//!
//! The precomputed indexes answer the hot routes without any locking;
//! only `/v1/query` — arbitrary cross-dimension filters whose key space
//! is too large to precompute — goes through this cache. The map is
//! split into [`SHARDS`] independently-locked shards (key hash picks
//! the shard) so concurrent misses on different filters never serialize
//! behind one lock, and the total capacity is distributed exactly across
//! shards so the whole cache never holds more than its configured entry
//! count (pinned by the LRU invariants in `core/tests/serve_prop.rs`).
//!
//! Shards are small (capacity/[`SHARDS`] entries), so each one is a
//! plain vector scanned linearly: at these sizes that beats a linked
//! structure and keeps the code obviously correct for the eviction-order
//! proptests.

use parking_lot::Mutex;

/// Number of independently-locked shards.
pub const SHARDS: usize = 8;

/// What one [`ShardedLru::get_or_insert_with`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LruOutcome {
    /// The value was already cached.
    Hit,
    /// The value was computed and cached (evicting an entry when true).
    Miss {
        /// An existing entry was evicted to make room.
        evicted: bool,
    },
}

/// One shard: an exact least-recently-used map over owned strings.
#[derive(Debug, Default)]
pub struct LruShard {
    cap: usize,
    tick: u64,
    entries: Vec<(String, String, u64)>,
}

impl LruShard {
    /// An empty shard holding at most `cap` entries.
    pub fn new(cap: usize) -> LruShard {
        LruShard { cap, tick: 0, entries: Vec::with_capacity(cap.min(64)) }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The shard's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.iter_mut().find(|(k, _, _)| k == key)?;
        e.2 = tick;
        Some(e.1.clone())
    }

    /// Inserts `key → value`, evicting the least-recently-used entry
    /// when full. Returns whether an eviction happened. A shard with
    /// zero capacity caches nothing. Inserting an existing key refreshes
    /// its value and recency without evicting.
    pub fn insert(&mut self, key: String, value: String) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            e.1 = value;
            e.2 = self.tick;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.cap {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("full shard has entries");
            self.entries.swap_remove(oldest);
            evicted = true;
        }
        self.entries.push((key, value, self.tick));
        evicted
    }

    /// The key that would be evicted by the next overflowing insert
    /// (the least recently used), if any.
    pub fn eviction_candidate(&self) -> Option<&str> {
        self.entries.iter().min_by_key(|(_, _, t)| *t).map(|(k, _, _)| k.as_str())
    }
}

/// The sharded cache: [`SHARDS`] locks, total capacity distributed
/// exactly (shard `i` gets `cap/SHARDS` plus one of the remainder).
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<LruShard>>,
}

/// FNV-1a over the key bytes — stable across runs, so shard placement
/// (and therefore eviction behaviour) is deterministic.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardedLru {
    /// A cache holding at most `capacity` entries across all shards.
    pub fn new(capacity: usize) -> ShardedLru {
        let shards = (0..SHARDS)
            .map(|i| {
                let cap = capacity / SHARDS + usize::from(i < capacity % SHARDS);
                Mutex::new(LruShard::new(cap))
            })
            .collect();
        ShardedLru { shards }
    }

    /// Total configured capacity.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Entries currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the cached value for `key`, computing and caching it via
    /// `f` on a miss. The shard lock is *not* held while `f` runs, so a
    /// slow fold never blocks other shards' hits; two racing misses on
    /// the same key both compute and the later insert refreshes.
    pub fn get_or_insert_with(
        &self,
        key: &str,
        f: impl FnOnce() -> String,
    ) -> (String, LruOutcome) {
        let shard = &self.shards[(fnv1a(key) % SHARDS as u64) as usize];
        if let Some(v) = shard.lock().get(key) {
            return (v, LruOutcome::Hit);
        }
        let v = f();
        let evicted = shard.lock().insert(key.to_string(), v.clone());
        (v, LruOutcome::Miss { evicted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_evicts_least_recently_used() {
        let mut s = LruShard::new(2);
        assert!(!s.insert("a".into(), "1".into()));
        assert!(!s.insert("b".into(), "2".into()));
        assert_eq!(s.get("a"), Some("1".into()));
        // "b" is now the oldest; inserting "c" must evict it.
        assert_eq!(s.eviction_candidate(), Some("b"));
        assert!(s.insert("c".into(), "3".into()));
        assert_eq!(s.get("b"), None);
        assert_eq!(s.get("a"), Some("1".into()));
        assert_eq!(s.get("c"), Some("3".into()));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let lru = ShardedLru::new(0);
        let (v, out) = lru.get_or_insert_with("k", || "v".into());
        assert_eq!(v, "v");
        assert_eq!(out, LruOutcome::Miss { evicted: false });
        let (_, out) = lru.get_or_insert_with("k", || "v".into());
        assert_eq!(out, LruOutcome::Miss { evicted: false });
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn capacity_is_distributed_exactly() {
        for cap in [0, 1, 7, 8, 9, 100] {
            assert_eq!(ShardedLru::new(cap).capacity(), cap, "capacity {cap}");
        }
    }

    #[test]
    fn sharded_hits_after_misses() {
        let lru = ShardedLru::new(16);
        for i in 0..8 {
            let key = format!("k{i}");
            let (_, out) = lru.get_or_insert_with(&key, || format!("v{i}"));
            assert!(matches!(out, LruOutcome::Miss { .. }));
            let (v, out) = lru.get_or_insert_with(&key, || unreachable!("must hit"));
            assert_eq!(v, format!("v{i}"));
            assert_eq!(out, LruOutcome::Hit);
        }
    }
}
