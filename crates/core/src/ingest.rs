//! Sharded streaming ingest: live analysis of interleaved probe rounds.
//!
//! The batch pipeline ([`crate::analyze`], [`crate::worldrun`]) assumes a
//! block's whole run is in hand before analysis starts. A live deployment
//! sees the opposite: rounds for millions of blocks arrive *interleaved*,
//! and verdicts must be maintained while the stream is still flowing.
//! This module is that engine:
//!
//! * **Routing.** Every [`RoundEvent`] is routed
//!   `hash(block) → shard` ([`sleepwatch_simnet::shard_of`]) so one
//!   block's stream always lands on one worker, in order. Cross-block
//!   arrival order is irrelevant by construction — the equivalence
//!   proptests feed adversarial interleavings to prove it.
//! * **Backpressure.** Each shard consumes from a bounded queue; a feeder
//!   outrunning the workers blocks instead of buffering unboundedly, so
//!   peak queue memory is `(capacity + batch_events) ×
//!   size_of::<RoundEvent>()` per shard, and spent batch buffers recycle
//!   through a pool so the feeder rewrites the same cache-hot lines.
//! * **Live detection.** Each in-flight block ("lane") feeds an
//!   [`OnlineDetector`] round by round — the bounded-window monitoring
//!   verdict, available mid-stream and checkpointable via
//!   [`crate::streaming::DetectorSnapshot`].
//! * **Exact finalization.** When a block's stream ends, the shard runs
//!   the *identical* code the batch pipeline runs — clean, FFT, classify,
//!   geo join — over the observations it accumulated, so the final
//!   verdict agrees with [`crate::analyze_block`] exactly: same class,
//!   same phase, same summary, under every fault preset and any shard
//!   count. The world-scale differential oracle in
//!   `testkit/tests/ingest_oracle.rs` pins this.
//! * **Checkpointing.** Completed blocks are appended to the same v2
//!   journal the batch path uses ([`crate::journal`]); a killed ingest
//!   resumes by replaying finished blocks and re-streaming unfinished
//!   ones, healing to the same verdict set.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use sleepwatch_probing::stream::{interleave, record_events, RoundEvent};
use sleepwatch_probing::TrinocularProber;
use sleepwatch_simnet::{shard_of, WorldSource};

use crate::framing::RunIdentity;

use crate::analyze::{
    classify_probed, clean_fft_observations, AnalysisConfig, BlockScratch, ProbedBlock,
};
use crate::journal::{JournalError, JournalWriter, SYNC_EVERY};
use crate::streaming::{OnlineConfig, OnlineDetector};
use crate::worldrun::{
    hooks, join_block, open_journal, panic_message, Quarantine, WorldBlockReport,
};

/// Blocks probed per feeder chunk: bounds how many lanes are in flight
/// at once when the engine generates its own feed (matches the batch
/// path's chunk ledger).
const CHUNK: usize = 256;

/// Engine shape: shard count, queue bounds, feed batching.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Worker shards (each owns a queue, a scratch arena and its lanes).
    pub shards: usize,
    /// Bound, in events, of each shard's queue — the backpressure knob
    /// and the peak-memory contract.
    pub queue_capacity: usize,
    /// Events per routed batch (amortizes queue locking).
    pub batch_events: usize,
    /// Seed for the deterministic chunk interleaving of self-generated
    /// feeds ([`ingest_world`]): different seeds exercise different
    /// arrival orders, same seed reproduces the same stream.
    pub interleave_seed: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            shards: 4,
            queue_capacity: 8_192,
            batch_events: 512,
            interleave_seed: 0x57A7_F00D,
        }
    }
}

/// Counters an ingest run reports (also mirrored into the global
/// `ingest.*` metrics). Routing and finalization counts are
/// deterministic; stall and high-water figures depend on scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Blocks finalized (journal-replayed blocks included).
    pub blocks: usize,
    /// Blocks replayed from the checkpoint journal instead of streamed.
    pub replayed: usize,
    /// Blocks quarantined by a panic during probing or finalization.
    pub quarantined: usize,
    /// Round events routed to shards.
    pub rounds_routed: u64,
    /// Feeder pushes that had to wait for queue room.
    pub backpressure_stalls: u64,
    /// Highest queued-event count observed on any single shard queue.
    pub queue_high_water: usize,
    /// Durable checkpoints reached (journal sync points).
    pub checkpoints: u64,
    /// Blocks whose *live* detector called strict-diurnal by stream end.
    pub live_strict: u64,
    /// Full FFT classifications the live detectors performed.
    pub live_classifications: u64,
}

/// What an ingest run produces: batch-identical per-block reports plus
/// run accounting.
#[derive(Debug)]
pub struct IngestOutcome {
    /// Per-block joined reports in block order — element-for-element what
    /// [`crate::analyze_world`] produces for the same world and config.
    pub reports: Vec<WorldBlockReport>,
    /// Blocks quarantined by a panic, in block order.
    pub quarantined: Vec<Quarantine>,
    /// Blocks whose stream was still open when the feed ended (rounds
    /// seen, no `Finish`): empty for a complete feed, the degraded set
    /// when a transport died past its budget.
    pub open_blocks: Vec<u64>,
    /// Run counters.
    pub stats: IngestStats,
}

/// Bounded MPSC queue of event batches with blocking backpressure.
///
/// Built on `std::sync::{Mutex, Condvar}`: the feeder blocks in
/// [`EventQueue::push`] while the queue is at capacity (counted in
/// events, not batches), and the shard worker blocks in
/// [`EventQueue::pop`] while it is empty and not yet closed. One
/// oversized batch is admitted into an *empty* queue rather than
/// deadlocking, so `batch_events > queue_capacity` degrades to
/// lock-step handoff instead of hanging.
struct EventQueue {
    state: std::sync::Mutex<QueueState>,
    room: std::sync::Condvar,
    ready: std::sync::Condvar,
    capacity: usize,
}

#[derive(Default)]
struct QueueState {
    batches: VecDeque<Vec<RoundEvent>>,
    events: usize,
    closed: bool,
    high_water: usize,
    stalls: u64,
}

impl EventQueue {
    fn new(capacity: usize) -> EventQueue {
        EventQueue {
            state: std::sync::Mutex::new(QueueState::default()),
            room: std::sync::Condvar::new(),
            ready: std::sync::Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn push(&self, batch: Vec<RoundEvent>) {
        if batch.is_empty() {
            return;
        }
        let mut s = self.state.lock().expect("queue lock");
        if s.events + batch.len() > self.capacity && s.events > 0 {
            s.stalls += 1;
            while s.events + batch.len() > self.capacity && s.events > 0 {
                s = self.room.wait(s).expect("queue lock");
            }
        }
        s.events += batch.len();
        s.high_water = s.high_water.max(s.events);
        s.batches.push_back(batch);
        drop(s);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<Vec<RoundEvent>> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(batch) = s.batches.pop_front() {
                s.events -= batch.len();
                drop(s);
                self.room.notify_one();
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// `(high_water, stalls)` after the run.
    fn pressure(&self) -> (usize, u64) {
        let s = self.state.lock().expect("queue lock");
        (s.high_water, s.stalls)
    }
}

/// Recycles spent batch buffers from workers back to the feeder.
///
/// Without it the feeder allocates a fresh buffer per batch while
/// workers free them into *their* malloc arenas, so the feeder writes
/// cold memory for the whole run. Cycling a handful of buffers keeps
/// the same cache-hot lines in use; the pool's size is naturally
/// bounded by queue backpressure (a buffer is either in a queue, in a
/// worker, in the pool, or being filled).
struct BatchPool {
    stack: parking_lot::Mutex<Vec<Vec<RoundEvent>>>,
}

impl BatchPool {
    fn new() -> BatchPool {
        BatchPool { stack: parking_lot::Mutex::new(Vec::new()) }
    }

    fn take(&self, batch_events: usize) -> Vec<RoundEvent> {
        self.stack.lock().pop().unwrap_or_else(|| Vec::with_capacity(batch_events))
    }

    fn recycle(&self, mut batch: Vec<RoundEvent>) {
        batch.clear();
        self.stack.lock().push(batch);
    }
}

/// Routes events into per-shard batch buffers and flushes them to the
/// bounded queues.
struct Router<'a> {
    queues: &'a [EventQueue],
    pool: &'a BatchPool,
    buffers: Vec<Vec<RoundEvent>>,
    batch_events: usize,
    rounds_routed: u64,
}

impl<'a> Router<'a> {
    fn new(queues: &'a [EventQueue], pool: &'a BatchPool, batch_events: usize) -> Router<'a> {
        let batch_events = batch_events.max(1);
        Router {
            queues,
            pool,
            buffers: queues.iter().map(|_| Vec::with_capacity(batch_events)).collect(),
            batch_events,
            rounds_routed: 0,
        }
    }

    fn route(&mut self, ev: RoundEvent) {
        if matches!(ev, RoundEvent::Round { .. }) {
            self.rounds_routed += 1;
        }
        // With one shard every block routes to it; skipping the hash
        // keeps the single-shard feeder off the per-event hot path.
        let shard =
            if self.queues.len() == 1 { 0 } else { shard_of(ev.block_id(), self.queues.len()) };
        let buf = &mut self.buffers[shard];
        buf.push(ev);
        if buf.len() >= self.batch_events {
            let full = std::mem::replace(buf, self.pool.take(self.batch_events));
            self.queues[shard].push(full);
        }
    }

    /// Flushes every partial batch and closes the queues.
    fn finish(mut self) -> u64 {
        for (shard, buf) in self.buffers.drain(..).enumerate() {
            self.queues[shard].push(buf);
        }
        for q in self.queues {
            q.close();
        }
        self.rounds_routed
    }
}

/// One in-flight block on a shard: the observations the batch pipeline
/// would have collected, plus the live bounded-window detector.
struct Lane {
    obs: Vec<(u64, f64)>,
    live: OnlineDetector,
}

/// The live detector runs the default monitoring window, clamped to the
/// run length (a window longer than the run would never warm up *and*
/// never needs to).
fn live_config(cfg: &AnalysisConfig) -> OnlineConfig {
    let default = OnlineConfig::default();
    OnlineConfig {
        window_rounds: (cfg.rounds as usize).min(default.window_rounds).max(4),
        ..default
    }
}

/// Per-shard processing state, shared by the threaded worker and the
/// queue-less direct path so both run byte-identical per-event logic.
struct ShardState<'a> {
    source: &'a WorldSource,
    cfg: &'a AnalysisConfig,
    live_cfg: OnlineConfig,
    lanes: HashMap<u64, Lane>,
    scratch: BlockScratch,
    rounds: u64,
    live_strict: u64,
    live_classifications: u64,
}

/// A finalized block, ready for the sink.
enum Finished {
    Report(WorldBlockReport),
    Quarantined(Quarantine),
}

impl<'a> ShardState<'a> {
    fn new(source: &'a WorldSource, cfg: &'a AnalysisConfig, live_cfg: OnlineConfig) -> Self {
        ShardState {
            source,
            cfg,
            live_cfg,
            lanes: HashMap::new(),
            scratch: BlockScratch::new(),
            rounds: 0,
            live_strict: 0,
            live_classifications: 0,
        }
    }

    /// Applies one event; `emit` receives each finalized block.
    fn apply(&mut self, ev: RoundEvent, emit: &mut impl FnMut(Finished)) {
        match ev {
            RoundEvent::Round { block_id, round, a_short } => {
                let rounds = self.cfg.rounds as usize;
                let lane = self.lanes.entry(block_id).or_insert_with(|| Lane {
                    // Reserving the nominal run length up front keeps lane
                    // growth reallocations out of the per-round hot path.
                    obs: Vec::with_capacity(rounds),
                    live: OnlineDetector::new(self.live_cfg),
                });
                lane.obs.push((round, a_short));
                lane.live.push_value(a_short);
                self.rounds += 1;
            }
            RoundEvent::Finish { block_id, outages, total_probes } => {
                let lane = self.lanes.remove(&block_id).unwrap_or_else(|| Lane {
                    obs: Vec::new(),
                    live: OnlineDetector::new(self.live_cfg),
                });
                if lane.live.class().is_strict() {
                    self.live_strict += 1;
                }
                self.live_classifications += lane.live.classifications();
                let source = self.source;
                let cfg = self.cfg;
                let scratch = &mut self.scratch;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    hooks::fire(block_id);
                    let block = source.generate_block(block_id);
                    let fill = clean_fft_observations(&lane.obs, cfg, scratch);
                    let probed = ProbedBlock { outages, total_probes, fill_fraction: fill };
                    let (summary, _diurnal, _trend) = classify_probed(&block, cfg, scratch, probed);
                    join_block(source.geodb(), &block, summary)
                }));
                match result {
                    Ok(report) => emit(Finished::Report(report)),
                    Err(payload) => {
                        // The arena may hold partially written buffers —
                        // start the next block from a fresh one.
                        self.scratch = BlockScratch::new();
                        sleepwatch_obs::global().resilience.blocks_quarantined.incr();
                        emit(Finished::Quarantined(Quarantine {
                            block_id,
                            diagnostic: panic_message(payload),
                        }));
                    }
                }
            }
        }
    }
}

/// Everything the shard workers share behind one lock: collected
/// outcomes, the (optional) checkpoint journal, and run accounting.
struct Sink {
    reports: Vec<WorldBlockReport>,
    quarantined: Vec<Quarantine>,
    journal: Option<JournalWriter>,
    appended: u64,
    rounds: u64,
    live_strict: u64,
    live_classifications: u64,
    open_lanes: Vec<u64>,
}

impl Sink {
    fn absorb(&mut self, finished: Finished) {
        match finished {
            Finished::Report(report) => {
                if let Some(w) = &mut self.journal {
                    match w.append(&report) {
                        Ok(true) => self.appended += 1,
                        Ok(false) => {}
                        Err(e) => {
                            // Same contract as the batch path: a full disk
                            // degrades checkpointing, never kills the run.
                            eprintln!("[ingest] journal write failed, journaling disabled: {e}");
                            self.journal = None;
                        }
                    }
                }
                self.reports.push(report);
            }
            Finished::Quarantined(q) => self.quarantined.push(q),
        }
    }
}

/// The engine core: spawns one worker per shard, runs `feed` on the
/// calling thread to route events, then drains, joins and aggregates.
fn run_engine(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    journal: Option<JournalWriter>,
    replayed: Vec<WorldBlockReport>,
    feed: impl FnOnce(&mut Router),
) -> IngestOutcome {
    let shards = icfg.shards.max(1);
    let live_cfg = live_config(cfg);
    let queues: Vec<EventQueue> =
        (0..shards).map(|_| EventQueue::new(icfg.queue_capacity)).collect();
    let replayed_count = replayed.len();
    let sink = parking_lot::Mutex::new(Sink {
        reports: replayed,
        quarantined: Vec::new(),
        journal,
        appended: 0,
        rounds: 0,
        live_strict: 0,
        live_classifications: 0,
        open_lanes: Vec::new(),
    });

    let mut rounds_routed = 0u64;
    let pool = BatchPool::new();
    crossbeam::thread::scope(|s| {
        for q in &queues {
            let sink = &sink;
            let pool = &pool;
            s.spawn(move |_| {
                let mut state = ShardState::new(source, cfg, live_cfg);
                let mut done: Vec<Finished> = Vec::new();
                while let Some(batch) = q.pop() {
                    for &ev in &batch {
                        state.apply(ev, &mut |finished| done.push(finished));
                    }
                    pool.recycle(batch);
                    if !done.is_empty() {
                        let mut sink = sink.lock();
                        for finished in done.drain(..) {
                            sink.absorb(finished);
                        }
                    }
                }
                let mut sink = sink.lock();
                sink.rounds += state.rounds;
                sink.live_strict += state.live_strict;
                sink.live_classifications += state.live_classifications;
                sink.open_lanes.extend(state.lanes.keys().copied());
            });
        }
        let mut router = Router::new(&queues, &pool, icfg.batch_events);
        feed(&mut router);
        rounds_routed = router.finish();
    })
    .expect("ingest worker panicked");

    let mut sink = sink.into_inner();
    let mut checkpoints = sink.appended / u64::from(SYNC_EVERY);
    if let Some(w) = &mut sink.journal {
        if let Err(e) = w.sync() {
            eprintln!("[ingest] final journal sync failed: {e}");
        } else {
            checkpoints += 1;
        }
    }
    sink.reports.sort_by_key(|r| r.summary.block_id);
    sink.quarantined.sort_by_key(|q| q.block_id);
    sink.open_lanes.sort_unstable();

    let (high_water, stalls) = queues
        .iter()
        .map(EventQueue::pressure)
        .fold((0usize, 0u64), |(hw, st), (h, s)| (hw.max(h), st + s));
    let stats = IngestStats {
        blocks: sink.reports.len(),
        replayed: replayed_count,
        quarantined: sink.quarantined.len(),
        rounds_routed,
        backpressure_stalls: stalls,
        queue_high_water: high_water,
        checkpoints,
        live_strict: sink.live_strict,
        live_classifications: sink.live_classifications,
    };
    let obs = &sleepwatch_obs::global().ingest;
    obs.rounds_routed.add(stats.rounds_routed);
    obs.backpressure_stalls.add(stats.backpressure_stalls);
    obs.queue_high_water.raise(stats.queue_high_water as u64);
    obs.checkpoints.add(stats.checkpoints);
    obs.blocks_finished.add((stats.blocks - stats.replayed) as u64);
    debug_assert_eq!(stats.rounds_routed, sink.rounds, "routed and consumed rounds disagree");
    IngestOutcome {
        reports: sink.reports,
        quarantined: sink.quarantined,
        open_blocks: sink.open_lanes,
        stats,
    }
}

/// Probes the blocks in `ids` and emits their streams chunk-interleaved:
/// the feeder half of [`ingest_world`], generic over where the events
/// go (a [`Router`], or a buffer bound for a wire).
fn feed_world_into(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    ids: &[u64],
    emit: &mut impl FnMut(RoundEvent),
    quarantined_at_feed: &mut Vec<Quarantine>,
) {
    let mut specs = Vec::new();
    for (chunk_idx, chunk) in ids.chunks(CHUNK).enumerate() {
        source.generate_into(chunk.iter().copied(), &mut specs);
        let mut streams: Vec<Vec<RoundEvent>> = Vec::with_capacity(specs.len());
        for block in &specs {
            let events = catch_unwind(AssertUnwindSafe(|| {
                hooks::fire(block.id);
                let mut prober = TrinocularProber::new(block, cfg.trinocular);
                let run = prober.run_with_faults(block, cfg.start_time, cfg.rounds, &cfg.faults);
                record_events(block.id, &run.records, run.outages.len() as u32, run.total_probes)
            }));
            match events {
                Ok(events) => streams.push(events),
                Err(payload) => {
                    sleepwatch_obs::global().resilience.blocks_quarantined.incr();
                    quarantined_at_feed.push(Quarantine {
                        block_id: block.id,
                        diagnostic: panic_message(payload),
                    });
                }
            }
        }
        // A per-chunk keyed interleave: reproducible for a given seed,
        // different across chunks, adversarial to any order assumption.
        let seed = icfg.interleave_seed.wrapping_add(chunk_idx as u64);
        for ev in interleave(streams, seed) {
            emit(ev);
        }
    }
}

/// Probes the blocks in `ids` and routes their streams chunk-interleaved:
/// the feeder half of [`ingest_world`].
fn feed_world(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    ids: &[u64],
    router: &mut Router,
    quarantined_at_feed: &mut Vec<Quarantine>,
) {
    feed_world_into(source, cfg, icfg, ids, &mut |ev| router.route(ev), quarantined_at_feed);
}

/// Materializes the event feed [`ingest_world`] would route — probes
/// every block and chunk-interleaves the streams with
/// `icfg.interleave_seed` — for replay over a transport (`sleepwatch
/// feed`, the chaos oracle, the throughput bench). Returns the feed and
/// any blocks quarantined by probing panics.
pub fn world_feed(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
) -> (Vec<RoundEvent>, Vec<Quarantine>) {
    let ids: Vec<u64> = (0..source.len() as u64).collect();
    let mut feed = Vec::new();
    let mut quarantined = Vec::new();
    feed_world_into(source, cfg, icfg, &ids, &mut |ev| feed.push(ev), &mut quarantined);
    (feed, quarantined)
}

/// The run identity a transport session carries for this source and
/// config — what both feed ends must agree on before events move.
pub fn feed_identity(source: &WorldSource, cfg: &AnalysisConfig) -> RunIdentity {
    crate::worldrun::run_identity(source.cfg().seed, source.len(), cfg)
}

/// Streams a whole world through the engine: probes every block (faults
/// from `cfg.faults` included), interleaves the streams chunk by chunk,
/// and ingests them across `icfg.shards` workers. The reports are
/// element-for-element identical to [`crate::analyze_world`] on the same
/// world and config.
pub fn ingest_world(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
) -> IngestOutcome {
    let ids: Vec<u64> = (0..source.len() as u64).collect();
    let mut fed_quarantines = Vec::new();
    let mut out = run_engine(source, cfg, icfg, None, Vec::new(), |router| {
        feed_world(source, cfg, icfg, &ids, router, &mut fed_quarantines);
    });
    merge_feed_quarantines(&mut out, fed_quarantines);
    out
}

/// [`ingest_world`] with a crash-safe checkpoint journal at `path` —
/// the same v2 journal format and resume semantics as
/// [`crate::analyze_world_resumable`]: finished blocks found in a valid
/// journal prefix are replayed instead of re-streamed; unfinished blocks
/// are streamed from the start. A resumed ingest heals to the same
/// verdict set as an uninterrupted one.
pub fn ingest_world_resumable(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    path: &Path,
) -> Result<IngestOutcome, JournalError> {
    let n = source.len();
    let (writer, skip, kept) = open_journal(path, source.cfg().seed, n, cfg)?;
    let ids: Vec<u64> = (0..n as u64).filter(|&id| !skip[id as usize]).collect();
    let mut fed_quarantines = Vec::new();
    let mut out = run_engine(source, cfg, icfg, Some(writer), kept, |router| {
        feed_world(source, cfg, icfg, &ids, router, &mut fed_quarantines);
    });
    merge_feed_quarantines(&mut out, fed_quarantines);
    Ok(out)
}

/// Ingests a caller-supplied event feed — the entry point equivalence
/// tests and benches use to replay *arbitrary* interleavings. Events for
/// one block must arrive in emission order (the transport invariant);
/// everything else is fair game.
pub fn ingest_events(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    events: impl IntoIterator<Item = RoundEvent>,
) -> IngestOutcome {
    run_engine(source, cfg, icfg, None, Vec::new(), |router| {
        for ev in events {
            router.route(ev);
        }
    })
}

/// The queue-less baseline: applies the same per-event logic on the
/// calling thread with no routing, no queues and no locking. This is the
/// "direct per-block push" the throughput bench compares the sharded
/// engine against, and a second differential anchor for the tests
/// (direct ≡ sharded ≡ batch).
pub fn ingest_direct(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    events: impl IntoIterator<Item = RoundEvent>,
) -> IngestOutcome {
    let mut state = ShardState::new(source, cfg, live_config(cfg));
    let mut reports = Vec::new();
    let mut quarantined = Vec::new();
    for ev in events {
        state.apply(ev, &mut |finished| match finished {
            Finished::Report(r) => reports.push(r),
            Finished::Quarantined(q) => quarantined.push(q),
        });
    }
    reports.sort_by_key(|r| r.summary.block_id);
    quarantined.sort_by_key(|q| q.block_id);
    let stats = IngestStats {
        blocks: reports.len(),
        replayed: 0,
        quarantined: quarantined.len(),
        rounds_routed: state.rounds,
        backpressure_stalls: 0,
        queue_high_water: 0,
        checkpoints: 0,
        live_strict: state.live_strict,
        live_classifications: state.live_classifications,
    };
    let mut open_blocks: Vec<u64> = state.lanes.keys().copied().collect();
    open_blocks.sort_unstable();
    IngestOutcome { reports, quarantined, open_blocks, stats }
}

/// What a transport-fed ingest produced: the engine outcome plus the
/// wire's accounting and — when the feed died — the graceful-degradation
/// report.
#[derive(Debug)]
pub struct TransportOutcome {
    /// The engine outcome. Blocks whose `Finish` arrived are finalized
    /// normally (batch-identical); `outcome.open_blocks` lists the
    /// degraded remainder.
    pub outcome: IngestOutcome,
    /// Transport-side counters (frames, reconnects, corruption,
    /// backoff).
    pub transport: sleepwatch_probing::transport::TransportStats,
    /// The terminal transport error, when the feed ended on one instead
    /// of a clean end-of-stream. Completed work is kept either way —
    /// mirroring `VantageRetryConfig`'s explicit-degradation semantics,
    /// the caller gets everything that finished plus a typed cause for
    /// what did not.
    pub error: Option<sleepwatch_probing::transport::TransportError>,
}

impl TransportOutcome {
    /// True when the stream ended cleanly with nothing left open.
    pub fn complete(&self) -> bool {
        self.error.is_none() && self.transport.clean_end && self.outcome.open_blocks.is_empty()
    }
}

/// Ingests a feed arriving through any [`EventSource`] — the wire-fed
/// sibling of [`ingest_events`].
///
/// A terminal transport error (budget exhaustion, strict-mode corruption)
/// does not discard completed work: every block whose stream finished is
/// finalized batch-identically, the rest are reported in
/// `outcome.open_blocks`, and the error rides along typed.
pub fn ingest_source(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    events: &mut dyn sleepwatch_probing::transport::EventSource,
) -> TransportOutcome {
    let mut error = None;
    let outcome = run_engine(source, cfg, icfg, None, Vec::new(), |router| loop {
        match events.next_event() {
            Ok(Some(ev)) => router.route(ev),
            Ok(None) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    });
    TransportOutcome { outcome, transport: events.stats(), error }
}

/// [`ingest_source`] with the crash-safe checkpoint journal: blocks
/// already journaled at `path` are replayed from disk and their wire
/// events dropped on arrival — the client reprocesses nothing it has
/// durable verdicts for, so a kill on either end of the transport heals
/// (the peer re-serves, the resume handshake skips re-sent bytes, and
/// the journal skips re-analysis).
pub fn ingest_source_resumable(
    source: &WorldSource,
    cfg: &AnalysisConfig,
    icfg: &IngestConfig,
    events: &mut dyn sleepwatch_probing::transport::EventSource,
    path: &Path,
) -> Result<TransportOutcome, JournalError> {
    let n = source.len();
    let (writer, skip, kept) = open_journal(path, source.cfg().seed, n, cfg)?;
    let mut error = None;
    let outcome = run_engine(source, cfg, icfg, Some(writer), kept, |router| loop {
        match events.next_event() {
            Ok(Some(ev)) => {
                let id = ev.block_id() as usize;
                if id >= skip.len() || !skip[id] {
                    router.route(ev);
                }
            }
            Ok(None) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    });
    Ok(TransportOutcome { outcome, transport: events.stats(), error })
}

/// Feed-time quarantines (probing panics) join the shard-side ones in
/// the outcome, keeping block order.
fn merge_feed_quarantines(out: &mut IngestOutcome, fed: Vec<Quarantine>) {
    if fed.is_empty() {
        return;
    }
    out.quarantined.extend(fed);
    out.quarantined.sort_by_key(|q| q.block_id);
    out.quarantined.dedup_by_key(|q| q.block_id);
    out.stats.quarantined = out.quarantined.len();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_block;
    use crate::worldrun::{analyze_world, hooks};
    use sleepwatch_probing::stream::replay_run;
    use sleepwatch_probing::FaultPlan;
    use sleepwatch_simnet::WorldConfig;

    fn tiny_source(blocks: usize) -> WorldSource {
        WorldSource::new(WorldConfig {
            num_blocks: blocks,
            seed: 0xBEEF,
            span_days: 4.0,
            ..Default::default()
        })
    }

    fn cfg_for(source: &WorldSource, days: f64, faults: FaultPlan) -> AnalysisConfig {
        AnalysisConfig { faults, ..AnalysisConfig::over_days(source.cfg().start_time, days) }
    }

    /// Engine reports must agree with the batch world run element for
    /// element — the unit-scale version of the world oracle.
    #[test]
    fn streamed_world_matches_batch_analysis() {
        let source = tiny_source(48);
        let cfg = cfg_for(&source, 3.0, FaultPlan::none());
        let world = WorldSource::new(source.cfg().clone()).into_world();
        let batch = analyze_world(&world, &cfg, 2, None);
        for shards in [1usize, 3] {
            let icfg = IngestConfig { shards, ..Default::default() };
            let streamed = ingest_world(&source, &cfg, &icfg);
            assert_eq!(streamed.reports.len(), batch.reports.len(), "{shards} shards");
            for (s, b) in streamed.reports.iter().zip(&batch.reports) {
                assert_eq!(format!("{s:?}"), format!("{b:?}"), "{shards} shards");
            }
            assert_eq!(streamed.stats.blocks, 48);
            assert!(streamed.stats.rounds_routed > 0);
        }
    }

    /// Truncation faults end streams early; the finalized verdict must
    /// still match batch analysis of the same truncated run.
    #[test]
    fn truncated_streams_agree_with_batch() {
        let source = tiny_source(6);
        let plan = FaultPlan { truncate_after: Some(200), ..FaultPlan::none() };
        let cfg = cfg_for(&source, 4.0, plan);
        let streamed = ingest_world(&source, &cfg, &IngestConfig::default());
        for report in &streamed.reports {
            let block = source.generate_block(report.summary.block_id);
            let batch = analyze_block(&block, &cfg);
            assert_eq!(report.summary, batch.summary(), "block {}", block.id);
        }
    }

    /// The direct (queue-less) path and the sharded engine are the same
    /// computation.
    #[test]
    fn direct_and_sharded_agree_on_a_replayed_feed() {
        let source = tiny_source(20);
        let cfg = cfg_for(&source, 2.0, FaultPlan::none());
        let mut streams = Vec::new();
        for id in 0..source.len() as u64 {
            let block = source.generate_block(id);
            let mut prober = TrinocularProber::new(&block, cfg.trinocular);
            let run = prober.run_with_faults(&block, cfg.start_time, cfg.rounds, &cfg.faults);
            streams.push(replay_run(&run));
        }
        let feed = interleave(streams, 99);
        let direct = ingest_direct(&source, &cfg, feed.iter().copied());
        let sharded =
            ingest_events(&source, &cfg, &IngestConfig { shards: 2, ..Default::default() }, feed);
        assert_eq!(direct.reports.len(), sharded.reports.len());
        for (d, s) in direct.reports.iter().zip(&sharded.reports) {
            assert_eq!(format!("{d:?}"), format!("{s:?}"));
        }
        assert_eq!(direct.stats.rounds_routed, sharded.stats.rounds_routed);
    }

    /// A planted panic quarantines one block; the rest of the stream
    /// survives, exactly like the batch path.
    #[test]
    fn planted_panic_quarantines_only_its_block() {
        let source = tiny_source(12);
        let cfg = cfg_for(&source, 2.0, FaultPlan::none());
        hooks::plant_block_panic(7);
        let out = ingest_world(&source, &cfg, &IngestConfig { shards: 2, ..Default::default() });
        hooks::clear_block_panics();
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].block_id, 7);
        assert_eq!(out.reports.len(), 11);
        assert!(out.reports.iter().all(|r| r.summary.block_id != 7));
    }

    /// Tiny queues force backpressure; the outcome is unchanged and the
    /// stall/high-water accounting reflects the squeeze.
    #[test]
    fn backpressure_does_not_change_verdicts() {
        let source = tiny_source(16);
        let cfg = cfg_for(&source, 2.0, FaultPlan::none());
        let roomy = ingest_world(&source, &cfg, &IngestConfig::default());
        let squeezed = ingest_world(
            &source,
            &cfg,
            &IngestConfig { queue_capacity: 64, batch_events: 16, ..Default::default() },
        );
        assert!(squeezed.stats.queue_high_water <= 64 + 16, "bound violated");
        assert_eq!(roomy.reports.len(), squeezed.reports.len());
        for (a, b) in roomy.reports.iter().zip(&squeezed.reports) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
