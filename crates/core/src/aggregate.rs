//! Aggregations over a world analysis: the country league table (Table 3),
//! region table (Table 4), link-technology fractions (Fig. 17), allocation
//! histogram (Fig. 15), phase/longitude pairs (Fig. 14), world grids
//! (Figs. 12–13), and the ANOVA factor table (Table 5).
//!
//! Everything here reads only *measured* quantities (diurnal class from the
//! pipeline, location from the geolocation database, link features from
//! reverse DNS, dates from the public registry) — never the planted labels.

use crate::analyze::unroll_phase;
use crate::worldrun::WorldAnalysis;
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::country::{by_code, Country};
use sleepwatch_geoecon::region::Region;
use sleepwatch_linktype::LinkFeature;
use sleepwatch_stats::anova::{anova_pair, anova_single, Term};
use sleepwatch_stats::histogram::DensityGrid;
use sleepwatch_stats::{anova, pearson};
use std::collections::BTreeMap;

/// Per-country aggregation (one row of Table 3 plus the ANOVA covariates).
#[derive(Debug, Clone)]
pub struct CountryStat {
    /// ISO code.
    pub code: &'static str,
    /// Region.
    pub region: Region,
    /// Geolocated blocks observed.
    pub blocks: usize,
    /// Strictly diurnal blocks.
    pub diurnal: usize,
    /// Strict-or-relaxed diurnal blocks.
    pub relaxed: usize,
    /// Fraction strictly diurnal.
    pub frac_diurnal: f64,
    /// Per-capita GDP (US$).
    pub gdp: f64,
    /// Electricity consumption per capita (kWh/yr).
    pub electricity: f64,
    /// Internet users per host.
    pub users_per_host: f64,
    /// Age in years of the country's *earliest* observed block allocation.
    pub age_first_alloc: f64,
    /// Mean age in years of observed block allocations.
    pub age_mean_alloc: f64,
}

/// Reference date for allocation ages (the paper's measurement year).
pub const AGE_REFERENCE: YearMonth = YearMonth { year: 2013, month: 5 };

impl WorldAnalysis {
    /// Country statistics over geolocated blocks, countries with at least
    /// `min_blocks`, sorted by descending diurnal fraction (Table 3's
    /// layout).
    pub fn country_stats(&self, min_blocks: usize) -> Vec<CountryStat> {
        #[derive(Default)]
        struct Acc {
            blocks: usize,
            diurnal: usize,
            relaxed: usize,
            first: Option<i64>,
            month_sum: i64,
        }
        let mut map: BTreeMap<&'static str, Acc> = BTreeMap::new();
        for r in &self.reports {
            let Some(loc) = r.location else { continue };
            let a = map.entry(loc.country).or_default();
            a.blocks += 1;
            if r.summary.class.is_strict() {
                a.diurnal += 1;
            }
            if r.summary.class.is_diurnal() {
                a.relaxed += 1;
            }
            let m = r.alloc_date.months_since_epoch();
            a.first = Some(a.first.map_or(m, |f| f.min(m)));
            a.month_sum += m;
        }
        let mut out: Vec<CountryStat> = map
            .into_iter()
            .filter(|(_, a)| a.blocks >= min_blocks)
            .map(|(code, a)| {
                let c: &Country = by_code(code).expect("codes come from the table");
                let ref_m = AGE_REFERENCE.months_since_epoch() as f64;
                CountryStat {
                    code,
                    region: c.region,
                    blocks: a.blocks,
                    diurnal: a.diurnal,
                    relaxed: a.relaxed,
                    frac_diurnal: a.diurnal as f64 / a.blocks as f64,
                    gdp: c.gdp_per_capita,
                    electricity: c.electricity_kwh,
                    users_per_host: c.users_per_host,
                    age_first_alloc: (ref_m - a.first.unwrap_or(0) as f64) / 12.0,
                    age_mean_alloc: (ref_m - a.month_sum as f64 / a.blocks as f64) / 12.0,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.frac_diurnal.partial_cmp(&a.frac_diurnal).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Region table (Table 4): `(region, blocks, fraction strictly diurnal)`,
    /// ascending by fraction like the paper.
    pub fn region_stats(&self) -> Vec<(Region, usize, f64)> {
        let mut blocks: BTreeMap<Region, (usize, usize)> = BTreeMap::new();
        for r in &self.reports {
            let Some(region) = r.region else { continue };
            let e = blocks.entry(region).or_default();
            e.0 += 1;
            if r.summary.class.is_strict() {
                e.1 += 1;
            }
        }
        let mut out: Vec<(Region, usize, f64)> = blocks
            .into_iter()
            .map(|(region, (n, d))| (region, n, d as f64 / n.max(1) as f64))
            .collect();
        out.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Fig. 17: for each kept link keyword, `(feature, blocks carrying it,
    /// fraction strictly diurnal)`.
    pub fn link_stats(&self) -> Vec<(LinkFeature, usize, f64)> {
        LinkFeature::KEPT
            .iter()
            .map(|&f| {
                let with: Vec<_> =
                    self.reports.iter().filter(|r| r.link_features.contains(&f)).collect();
                let d = with.iter().filter(|r| r.summary.class.is_strict()).count();
                (f, with.len(), d as f64 / with.len().max(1) as f64)
            })
            .collect()
    }

    /// Fraction of blocks with at least one (kept) link feature.
    pub fn link_coverage(&self) -> f64 {
        let n = self.reports.iter().filter(|r| !r.link_features.is_empty()).count();
        n as f64 / self.len().max(1) as f64
    }

    /// Fig. 15: per allocation month, `(month, blocks, fraction strictly
    /// diurnal)`, ascending by month.
    pub fn allocation_histogram(&self) -> Vec<(YearMonth, usize, f64)> {
        let mut map: BTreeMap<i64, (usize, usize)> = BTreeMap::new();
        for r in &self.reports {
            let e = map.entry(r.alloc_date.months_since_epoch()).or_default();
            e.0 += 1;
            if r.summary.class.is_strict() {
                e.1 += 1;
            }
        }
        map.into_iter()
            .map(|(m, (n, d))| {
                (YearMonth::from_months_since_epoch(m), n, d as f64 / n.max(1) as f64)
            })
            .collect()
    }

    /// Fig. 14: `(longitude, unrolled phase)` pairs for geolocated diurnal
    /// blocks — strict only, or strict-plus-relaxed.
    pub fn phase_longitude_pairs(&self, include_relaxed: bool) -> Vec<(f64, f64)> {
        self.reports
            .iter()
            .filter(|r| {
                if include_relaxed {
                    r.summary.class.is_diurnal()
                } else {
                    r.summary.class.is_strict()
                }
            })
            .filter_map(|r| {
                let loc = r.location?;
                let phase = r.summary.phase?;
                Some((loc.lon, unroll_phase(phase, loc.lon)))
            })
            .collect()
    }

    /// Correlation coefficient of unrolled phase against longitude (the
    /// paper reports 0.835 strict / 0.763 relaxed).
    pub fn phase_longitude_correlation(&self, include_relaxed: bool) -> Option<f64> {
        let pairs = self.phase_longitude_pairs(include_relaxed);
        let lons: Vec<f64> = pairs.iter().map(|p| p.0.to_radians()).collect();
        let phases: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        pearson(&lons, &phases)
    }

    /// Fig. 14c: binning phase into `bins` over `[-π, π)`, the mean and
    /// standard deviation of longitude per bin (relaxed-diurnal blocks).
    pub fn phase_longitude_predictor(&self, bins: usize) -> Vec<(f64, f64, f64, usize)> {
        use std::f64::consts::PI;
        let mut groups: Vec<Vec<f64>> = vec![Vec::new(); bins];
        for r in &self.reports {
            let (Some(loc), Some(phase)) = (r.location, r.summary.phase) else { continue };
            if !r.summary.class.is_diurnal() {
                continue;
            }
            let idx = (((phase + PI) / (2.0 * PI)) * bins as f64) as usize;
            groups[idx.min(bins - 1)].push(loc.lon);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, g)| {
                let center = -PI + (i as f64 + 0.5) * 2.0 * PI / bins as f64;
                let n = g.len();
                let mean = g.iter().sum::<f64>() / n as f64;
                let var = g.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
                (center, mean, var.sqrt(), n)
            })
            .collect()
    }

    /// Figs. 12–13: 2°×2° world grids of observable blocks and of strictly
    /// diurnal blocks.
    pub fn world_grids(&self, cell_degrees: f64) -> (DensityGrid, DensityGrid) {
        let nx = (360.0 / cell_degrees) as usize;
        let ny = (180.0 / cell_degrees) as usize;
        let mut all = DensityGrid::new(-180.0, 180.0, nx, -90.0, 90.0, ny);
        let mut diurnal = DensityGrid::new(-180.0, 180.0, nx, -90.0, 90.0, ny);
        for r in &self.reports {
            let Some(loc) = r.location else { continue };
            all.add(loc.lon, loc.lat);
            if r.summary.class.is_strict() {
                diurnal.add(loc.lon, loc.lat);
            }
        }
        (all, diurnal)
    }

    /// Table 5: the full one- and two-factor ANOVA over country-level
    /// observations. Returns `(factor names, single-factor p-values,
    /// pairwise-interaction p-values [i][j])`.
    pub fn anova_factors(&self, min_blocks: usize) -> AnovaFactors {
        let stats = self.country_stats(min_blocks);
        let y: Vec<f64> = stats.iter().map(|s| s.frac_diurnal).collect();
        let factors: Vec<(&'static str, Vec<f64>)> = vec![
            ("gdp", stats.iter().map(|s| s.gdp).collect()),
            ("users_per_host", stats.iter().map(|s| s.users_per_host).collect()),
            ("electricity", stats.iter().map(|s| s.electricity).collect()),
            ("age_first", stats.iter().map(|s| s.age_first_alloc).collect()),
            ("age_mean", stats.iter().map(|s| s.age_mean_alloc).collect()),
        ];
        AnovaFactors { y, factors, countries: stats.len() }
    }
}

/// Per-organization aggregation (the §2.3.2 future-work analysis: compare
/// behaviour across ASes of the same organization).
#[derive(Debug, Clone)]
pub struct OrgStat {
    /// Cluster key (the dominant name token).
    pub org: String,
    /// ASes of this organization observed with blocks.
    pub asns: Vec<u32>,
    /// Blocks attributed to the organization.
    pub blocks: usize,
    /// Fraction strictly diurnal.
    pub frac_diurnal: f64,
}

impl WorldAnalysis {
    /// Groups blocks by organization via the AS→org mapper and reports the
    /// diurnal fraction per organization (≥ `min_blocks` blocks), sorted
    /// descending by fraction.
    pub fn organization_stats(
        &self,
        mapper: &sleepwatch_geoecon::AsOrgMapper,
        min_blocks: usize,
    ) -> Vec<OrgStat> {
        let mut by_org: BTreeMap<String, (Vec<u32>, usize, usize)> = BTreeMap::new();
        for r in &self.reports {
            let Some(cluster) = mapper.cluster_of(r.asn) else { continue };
            let e =
                by_org.entry(cluster.key.clone()).or_insert_with(|| (cluster.asns.clone(), 0, 0));
            e.1 += 1;
            if r.summary.class.is_strict() {
                e.2 += 1;
            }
        }
        let mut out: Vec<OrgStat> = by_org
            .into_iter()
            .filter(|(_, (_, n, _))| *n >= min_blocks)
            .map(|(org, (asns, n, d))| OrgStat {
                org,
                asns,
                blocks: n,
                frac_diurnal: d as f64 / n as f64,
            })
            .collect();
        out.sort_by(|a, b| {
            b.frac_diurnal.partial_cmp(&a.frac_diurnal).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

/// The country-level factor table feeding Table 5.
#[derive(Debug, Clone)]
pub struct AnovaFactors {
    /// Outcome: fraction of diurnal blocks per country.
    pub y: Vec<f64>,
    /// Named covariates.
    pub factors: Vec<(&'static str, Vec<f64>)>,
    /// Number of countries (observations).
    pub countries: usize,
}

impl AnovaFactors {
    /// Single-factor p-value (diagonal of Table 5).
    pub fn single_p(&self, i: usize) -> Result<f64, anova::AnovaError> {
        anova_single(&self.y, self.factors[i].0, &self.factors[i].1).map(|row| row.p)
    }

    /// Pairwise-combination p-value (off-diagonal of Table 5): the
    /// sequential p of the interaction term in `y ~ a * b`, matching R's
    /// `aov` output the paper used.
    pub fn pair_p(&self, i: usize, j: usize) -> Result<f64, anova::AnovaError> {
        let (na, a) = &self.factors[i];
        let (nb, b) = &self.factors[j];
        let table = anova_pair(&self.y, na, a, nb, b)?;
        Ok(table.row(&format!("{na}:{nb}")).map(|r| r.p).unwrap_or(f64::NAN))
    }

    /// Full sequential table for an arbitrary subset of factors, in order.
    pub fn model(&self, idx: &[usize]) -> Result<anova::AnovaTable, anova::AnovaError> {
        let terms: Vec<Term> =
            idx.iter().map(|&i| Term::continuous(self.factors[i].0, &self.factors[i].1)).collect();
        anova::anova(&self.y, &terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AnalysisConfig;
    use crate::worldrun::analyze_world;
    use sleepwatch_simnet::{World, WorldConfig};

    fn analysis() -> WorldAnalysis {
        let world = World::generate(WorldConfig {
            num_blocks: 400,
            seed: 77,
            span_days: 4.0,
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 4.0);
        analyze_world(&world, &cfg, 2, None)
    }

    #[test]
    fn country_stats_have_valid_rows() {
        let a = analysis();
        let stats = a.country_stats(5);
        assert!(!stats.is_empty());
        for s in &stats {
            assert!(s.blocks >= 5);
            assert!(s.diurnal <= s.relaxed, "strict ⊆ relaxed");
            assert!((0.0..=1.0).contains(&s.frac_diurnal));
            assert!(s.age_first_alloc >= s.age_mean_alloc, "first alloc is oldest");
        }
        // Sorted descending.
        assert!(stats.windows(2).all(|w| w[0].frac_diurnal >= w[1].frac_diurnal));
    }

    #[test]
    fn region_stats_sorted_ascending() {
        let a = analysis();
        let rs = a.region_stats();
        assert!(!rs.is_empty());
        assert!(rs.windows(2).all(|w| w[0].2 <= w[1].2));
        let total: usize = rs.iter().map(|r| r.1).sum();
        let located = a.reports.iter().filter(|r| r.location.is_some()).count();
        assert_eq!(total, located);
    }

    #[test]
    fn link_stats_cover_kept_features() {
        let a = analysis();
        let ls = a.link_stats();
        assert_eq!(ls.len(), 9);
        assert!(a.link_coverage() > 0.2, "coverage {}", a.link_coverage());
    }

    #[test]
    fn allocation_histogram_ordered() {
        let a = analysis();
        let h = a.allocation_histogram();
        assert!(!h.is_empty());
        assert!(h.windows(2).all(|w| w[0].0 <= w[1].0));
        let total: usize = h.iter().map(|x| x.1).sum();
        assert_eq!(total, a.len());
    }

    #[test]
    fn grids_count_located_blocks() {
        let a = analysis();
        let (all, diurnal) = a.world_grids(2.0);
        let located = a.reports.iter().filter(|r| r.location.is_some()).count() as u64;
        assert_eq!(all.total() + all.dropped(), located);
        assert!(diurnal.total() <= all.total());
    }

    #[test]
    fn anova_factors_shape() {
        let a = analysis();
        let f = a.anova_factors(3);
        assert_eq!(f.factors.len(), 5);
        assert_eq!(f.y.len(), f.countries);
        for (_, xs) in &f.factors {
            assert_eq!(xs.len(), f.countries);
        }
        if f.countries > 8 {
            let p = f.single_p(0).unwrap();
            assert!((0.0..=1.0).contains(&p));
            let pp = f.pair_p(2, 4).unwrap();
            assert!(pp.is_nan() || (0.0..=1.0).contains(&pp));
        }
    }

    #[test]
    fn phase_pairs_only_for_diurnal_blocks() {
        let a = analysis();
        let strict = a.phase_longitude_pairs(false);
        let relaxed = a.phase_longitude_pairs(true);
        assert!(relaxed.len() >= strict.len());
        let (strict_count, _) = a.strict_fraction();
        assert!(strict.len() <= strict_count);
    }

    #[test]
    fn predictor_bins_are_within_ranges() {
        use std::f64::consts::PI;
        let a = analysis();
        for (center, mean_lon, sd, n) in a.phase_longitude_predictor(20) {
            assert!((-PI..=PI).contains(&center));
            assert!((-180.0..=180.0).contains(&mean_lon));
            assert!(sd >= 0.0);
            assert!(n > 0);
        }
    }
}
