//! End-to-end diurnal-network analysis: the pipeline of *"When the Internet
//! Sleeps"* (IMC 2014).
//!
//! * [`analyze`]: per-block pipeline — adaptive probing, §2.1 availability
//!   estimation, §2.2 cleaning + FFT classification + phase, the
//!   stationarity screen, and phase unrolling for the longitude comparison;
//! * [`worldrun`]: the same pipeline over an entire synthetic world, in
//!   parallel, joined with geolocation, reverse-DNS link classes,
//!   allocation dates and country economics;
//! * [`aggregate`]: the paper's evaluation views — country league table,
//!   region table, link-technology fractions, allocation histogram,
//!   phase/longitude analysis, world grids, and the Table 5 ANOVA factors.
//!
//! # Example
//!
//! ```
//! use sleepwatch_core::{analyze_world, AnalysisConfig};
//! use sleepwatch_simnet::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig { num_blocks: 40, seed: 3, span_days: 3.0, ..Default::default() });
//! let cfg = AnalysisConfig::over_days(world.cfg.start_time, 3.0);
//! let analysis = analyze_world(&world, &cfg, 2, None);
//! let (strict, frac) = analysis.strict_fraction();
//! assert!(strict <= analysis.len());
//! assert!((0.0..=1.0).contains(&frac));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod analyze;
pub mod applications;
pub mod binfmt;
pub mod export;
pub mod framing {
    //! Shared binary-framing primitives (re-export of
    //! [`sleepwatch_framing`]).
    //!
    //! The toolbox historically lived here; it moved to its own
    //! bottom-of-stack crate so the probing-layer wire transport can
    //! share the same prelude and [`DecodeError`] taxonomy without a
    //! dependency cycle. Every pre-existing `sleepwatch_core::framing`
    //! path keeps working through this re-export.
    pub use sleepwatch_framing::*;
}
pub mod ingest;
pub mod journal;
pub mod serve;
pub mod streaming;
pub mod timeofday;
pub mod worldrun;

pub use aggregate::{AnovaFactors, CountryStat, OrgStat, AGE_REFERENCE};
pub use analyze::{
    analyze_block, analyze_block_with_scratch, analyze_series, unroll_phase, AnalysisConfig,
    BlockAnalysis, BlockScratch, BlockSummary,
};
pub use applications::{correct_snapshot, estimate_size, SizeEstimate};
pub use binfmt::{
    decode_dataset, decode_prefix, encode_dataset, BinDataset, BinRow, DatasetMode, DatasetStats,
    EncodeError,
};
pub use export::{
    dataset_rows, read_dataset, read_dataset_bin_file, read_dataset_file, write_dataset,
    write_dataset_bin_file, write_dataset_file, write_dataset_rows, DatasetRow, ExportError,
    ParseError,
};
pub use framing::{DecodeError, IdentityField, RunIdentity};
pub use ingest::{
    feed_identity, ingest_direct, ingest_events, ingest_source, ingest_source_resumable,
    ingest_world, ingest_world_resumable, world_feed, IngestConfig, IngestOutcome, IngestStats,
    TransportOutcome,
};
pub use journal::{JournalError, JournalHeader, JournalVersion, ReplayStats};
pub use serve::{
    load_rows, rows_from_dataset_bytes, rows_from_journal_bytes, ConnStats, LoadError, QueryServer,
    ServeConfig, ServeState,
};
pub use streaming::{DetectorSnapshot, OnlineConfig, OnlineDetector};
pub use timeofday::{activity_pattern, peak_local_hour, peak_utc_hour, ActivityPattern};
pub use worldrun::{
    analyze_world, analyze_world_resumable, analyze_world_resumable_with_mode,
    analyze_world_resumable_with_report, analyze_world_source, analyze_world_source_resumable,
    analyze_world_stats, analyze_world_stats_resumable, analyze_world_with_mode,
    analyze_world_with_report, run_identity, BlockOutcome, Quarantine, WorldAnalysis,
    WorldBlockReport, WorldRunMode, WorldRunStats,
};
