//! Property-based tests for the synthetic world: determinism, permutation
//! bijectivity, and behavioural invariants over arbitrary parameters.

use proptest::prelude::*;
use sleepwatch_simnet::{AddrKey, AddressBehavior, BlockProfile, BlockSpec};

fn arb_profile() -> impl Strategy<Value = BlockProfile> {
    (
        0u16..=128,     // n_stable
        0u16..=128,     // n_diurnal
        0.05f64..=1.0,  // stable_avail
        0.05f64..=1.0,  // diurnal_avail
        0.0f64..24.0,   // onset
        0.0f64..12.0,   // onset_spread
        1.0f64..16.0,   // duration
        0.0f64..4.0,    // sigma_start
        -12.0f64..12.0, // utc offset
    )
        .prop_map(|(ns, nd, sa, da, onset, spread, dur, ss, tz)| BlockProfile {
            n_stable: ns,
            n_diurnal: nd,
            stable_avail: sa,
            diurnal_avail: da,
            onset_hours: onset,
            onset_spread: spread,
            duration_hours: dur,
            duration_spread: 1.0,
            sigma_start: ss,
            sigma_duration: 0.5,
            utc_offset_hours: tz,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn address_permutation_is_always_a_bijection(
        offset in 0u8..=255,
        step_half in 0u8..=127,
    ) {
        let mut b = BlockSpec::bare(1, 1, BlockProfile::always_on(10, 0.5));
        b.perm_offset = offset;
        b.perm_step = step_half * 2 + 1;
        let mut seen = [false; 256];
        for slot in 0..=255u8 {
            let a = b.slot_to_addr(slot);
            prop_assert!(!seen[a as usize]);
            seen[a as usize] = true;
            prop_assert_eq!(b.addr_to_slot(a), slot);
        }
    }

    #[test]
    fn class_counts_match_profile(profile in arb_profile(), seed in 0u64..1000) {
        let b = BlockSpec::bare(3, seed, profile);
        let mut stable = 0u16;
        let mut diurnal = 0u16;
        for addr in 0..=255u8 {
            match b.behavior_of(addr) {
                AddressBehavior::On { .. } => stable += 1,
                AddressBehavior::Diurnal { .. } | AddressBehavior::Periodic { .. } => diurnal += 1,
                AddressBehavior::Inactive => {}
            }
        }
        prop_assert_eq!(stable, profile.n_stable);
        prop_assert_eq!(diurnal, profile.n_diurnal);
    }

    #[test]
    fn availability_is_a_probability(
        profile in arb_profile(),
        seed in 0u64..1000,
        time in 0u64..(40 * 86_400),
    ) {
        let b = BlockSpec::bare(4, seed, profile);
        let a = b.true_availability(time);
        prop_assert!((0.0..=1.0).contains(&a), "A = {a}");
        let active = b.active_count(time);
        prop_assert!(active <= b.ever_active_count());
    }

    #[test]
    fn probing_is_deterministic(
        profile in arb_profile(),
        seed in 0u64..1000,
        addr in 0u8..=255,
        time in 0u64..(40 * 86_400),
    ) {
        let b = BlockSpec::bare(5, seed, profile);
        prop_assert_eq!(b.probe(addr, time), b.probe(addr, time));
    }

    #[test]
    fn drift_keeps_probabilities_clamped(
        drift in -50.0f64..50.0,
        time in 0u64..(40 * 86_400),
    ) {
        let mut b = BlockSpec::bare(6, 9, BlockProfile::always_on(100, 0.5));
        b.drift_addr_per_day = drift;
        let p = b.response_probability(b.slot_to_addr(0), time);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn diurnal_duty_cycle_tracks_duration(
        dur in 2.0f64..20.0,
        onset in 0.0f64..24.0,
    ) {
        let key = AddrKey { seed: 1, block: 2, addr: 3 };
        let b = AddressBehavior::Diurnal {
            onset_hours: onset,
            duration_hours: dur,
            sigma_start: 0.0,
            sigma_duration: 0.0,
            avail: 1.0,
            utc_offset_hours: 0.0,
        };
        let rounds = 131 * 40;
        let up = (0..rounds).filter(|&r| b.is_up(key, r * 660)).count();
        let duty = up as f64 / rounds as f64;
        prop_assert!((duty - dur / 24.0).abs() < 0.02, "duty {duty} for {dur}h");
    }

    #[test]
    fn inactive_addresses_never_respond(
        seed in 0u64..1000,
        time in 0u64..(40 * 86_400),
    ) {
        let b = BlockSpec::bare(8, seed, BlockProfile::always_on(100, 1.0));
        // Slots ≥ 100 are inactive.
        let addr = b.slot_to_addr(200);
        prop_assert!(!b.probe(addr, time));
    }
}
