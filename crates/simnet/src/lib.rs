//! A deterministic synthetic Internet for diurnal-network research.
//!
//! The IMC 2014 paper measures the live IPv4 edge; this crate replaces it
//! with a reproducible world whose ground truth is known exactly:
//!
//! * [`behavior`]: per-address models — always-on, diurnal (onset,
//!   duration, per-day `σ_s`/`σ_d` noise, §3.2.2), inactive — as pure
//!   functions of `(seed, block, address, time)`;
//! * [`block`]: compact /24 specs that derive any address's behaviour in
//!   O(1), with injected outages and ground-truth availability;
//! * [`world`]: a calibrated population of blocks across ~55 countries,
//!   planting the paper's country fractions, phase/longitude structure,
//!   allocation-age gradient and link-technology correlations;
//! * [`controlled`]: the §3.2.2 controlled blocks (50 stable + `n_d`
//!   diurnal addresses) behind Figs. 7–9;
//! * [`rdns`]: PTR-name synthesis feeding the link-type classifier;
//! * [`evolution`]: the Fig. 11 long-term propensity curve.
//!
//! # Example
//!
//! ```
//! use sleepwatch_simnet::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig { num_blocks: 50, seed: 7, ..Default::default() });
//! let block = &world.blocks[0];
//! // Probe address .1 at the first round — deterministic, replayable.
//! let t = world.round_time(0);
//! let first = block.probe(1, t);
//! assert_eq!(first, block.probe(1, t));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod block;
pub mod campus;
pub mod controlled;
pub mod evolution;
pub mod rdns;
pub mod world;

pub use behavior::{AddrKey, AddressBehavior};
pub use block::{is_weekend, BlockProfile, BlockSpec, LeaseParams, LinkClass, ProbeOutcome};
pub use campus::{generate_campus, CampusConfig, CampusUse};
pub use controlled::ControlledConfig;
pub use rdns::{ptr_name, ptr_names};
pub use world::{
    shard_of, ShardRounds, World, WorldConfig, WorldSource, A12W_START, ROUND_SECONDS, S51W_START,
};
