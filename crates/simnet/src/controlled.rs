//! The controlled simulation blocks of §3.2.2.
//!
//! "We simulate one /24 block (256 addresses) … In that block, 50 addresses
//! are stable and always responding, and `n_d = 100` addresses are diurnal,
//! and the remaining addresses are not active. Diurnal addresses are
//! responsive for 8 hours and down for 16 hours each day. Each diurnal
//! address `i` turns on at a certain time during the day, the phase `φ_i`",
//! with `φ_i ~ U[0, Φ]` and per-day Gaussian noise `σ_s` on the start and
//! `σ_d` on the duration.

use crate::block::{BlockProfile, BlockSpec};

/// Parameters of one controlled experiment, named as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct ControlledConfig {
    /// Number of stable, always-responding addresses (paper: 50).
    pub n_stable: u16,
    /// Number of diurnal addresses `n_d` (paper default: 100).
    pub n_diurnal: u16,
    /// Up-time per day, hours (paper: 8).
    pub up_hours: f64,
    /// Maximum phase `Φ`: per-address onsets are uniform in `[0, Φ]` hours.
    pub phi_hours: f64,
    /// Per-day start-time noise `σ_s`, hours.
    pub sigma_start: f64,
    /// Per-day duration noise `σ_d`, hours.
    pub sigma_duration: f64,
}

impl Default for ControlledConfig {
    fn default() -> Self {
        ControlledConfig {
            n_stable: 50,
            n_diurnal: 100,
            up_hours: 8.0,
            phi_hours: 0.0,
            sigma_start: 0.0,
            sigma_duration: 0.0,
        }
    }
}

impl ControlledConfig {
    /// Builds the controlled block. `seed` drives the once-per-experiment
    /// phase draws and the per-day noise; `id` separates repeated
    /// experiments within a batch.
    pub fn build(&self, seed: u64, id: u64) -> BlockSpec {
        assert!(
            self.n_stable as u32 + self.n_diurnal as u32 <= 256,
            "a /24 holds at most 256 addresses"
        );
        let profile = BlockProfile {
            n_stable: self.n_stable,
            n_diurnal: self.n_diurnal,
            stable_avail: 1.0,
            diurnal_avail: 1.0,
            onset_hours: 0.0,
            onset_spread: self.phi_hours,
            duration_hours: self.up_hours,
            duration_spread: 0.0,
            sigma_start: self.sigma_start,
            sigma_duration: self.sigma_duration,
            utc_offset_hours: 0.0,
        };
        let mut b = BlockSpec::bare(id, seed, profile);
        // The paper's controlled block is majority-diurnal by design.
        b.planted_diurnal = true;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::AddrKey;

    #[test]
    fn default_matches_paper() {
        let c = ControlledConfig::default();
        assert_eq!(c.n_stable, 50);
        assert_eq!(c.n_diurnal, 100);
        assert_eq!(c.up_hours, 8.0);
    }

    #[test]
    fn noiseless_block_has_sharp_daily_square_wave() {
        let b = ControlledConfig::default().build(1, 0);
        // Exactly 150 ever-active; all diurnal share onset 0 with 8h up.
        assert_eq!(b.ever_active_count(), 150);
        let midnight_plus_1h = 3_600;
        let a_up = b.true_availability(midnight_plus_1h);
        assert!((a_up - 1.0).abs() < 1e-9, "all up in window, got {a_up}");
        let a_down = b.true_availability(12 * 3_600);
        assert!((a_down - 50.0 / 150.0).abs() < 1e-9, "only stable at midday, got {a_down}");
    }

    #[test]
    fn phase_spread_draws_once_per_address() {
        let cfg = ControlledConfig { phi_hours: 12.0, ..Default::default() };
        let b = cfg.build(7, 0);
        // Onsets vary across addresses but are stable across queries.
        let addrs = b.ever_active_addrs();
        let diurnal_addr = addrs[60]; // beyond the 50 stable slots
        let b1 = b.behavior_of(diurnal_addr);
        assert_eq!(b1, b.behavior_of(diurnal_addr));
        // With Φ=12 the availability at any instant is strictly between the
        // extremes (addresses are de-phased).
        let a = b.true_availability(6 * 3_600);
        assert!(a > 50.0 / 150.0 + 0.05 && a < 0.95, "de-phased A = {a}");
    }

    #[test]
    fn experiments_differ_by_id_when_randomized() {
        let cfg = ControlledConfig { phi_hours: 8.0, ..Default::default() };
        let b0 = cfg.build(3, 0);
        let b1 = cfg.build(3, 1);
        let a0 = b0.true_availability(4 * 3_600);
        let a1 = b1.true_availability(4 * 3_600);
        assert_ne!(a0, a1, "different experiment ids draw different phases");
    }

    #[test]
    fn duration_noise_perturbs_days_independently() {
        let cfg = ControlledConfig { sigma_duration: 2.0, ..Default::default() };
        let b = cfg.build(5, 0);
        let addr = b.ever_active_addrs()[70];
        let key = AddrKey { seed: b.seed, block: b.id, addr };
        let beh = b.behavior_of(addr);
        // Probe right after the nominal 8-hour edge on many days: noise
        // makes some days long (still up) and some short (already down).
        let t_edge = (8.0 * 3_600.0 + 600.0) as u64;
        let ups = (0..120u64).filter(|d| beh.is_up(key, d * 86_400 + t_edge)).count();
        assert!(ups > 10 && ups < 110, "edge up-count {ups}");
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn rejects_oversized_population() {
        let cfg = ControlledConfig { n_stable: 200, n_diurnal: 100, ..Default::default() };
        let _ = cfg.build(1, 0);
    }
}
