//! Long-term evolution of diurnal behaviour (Fig. 11).
//!
//! The paper applies its detector to 63 surveys spanning late 2009 to 2013
//! and observes a roughly stable diurnal fraction with a marked decline
//! after 2012, which it attributes to dynamic addresses shifting toward
//! always-on use. This module supplies the scaling curve the world
//! generator uses to reproduce that trajectory: multiply every country's
//! propensity by [`propensity_scale_at`] for the survey's date.

use sleepwatch_geoecon::allocation::YearMonth;

/// Scale on country diurnal propensities at a given date, relative to the
/// paper's main 2013 dataset (`A12w`, scale 1.0).
///
/// Shape: slowly rising through 2010–2011 (growing dynamic addressing),
/// peaking at the start of 2012, then declining through 2013 (dynamic
/// pools turning always-on).
pub fn propensity_scale_at(date: YearMonth) -> f64 {
    let m = date.months_since_epoch() as f64;
    let m2010 = YearMonth::new(2010, 1).months_since_epoch() as f64;
    let m2012 = YearMonth::new(2012, 1).months_since_epoch() as f64;
    let m2014 = YearMonth::new(2014, 1).months_since_epoch() as f64;
    if m <= m2012 {
        // 1.15 at 2010-01 rising to the 1.30 peak at 2012-01.
        let f = ((m - m2010) / (m2012 - m2010)).clamp(-0.5, 1.0);
        1.15 + 0.15 * f
    } else {
        // Decline from the 1.30 peak toward 0.95 by 2014-01.
        let f = ((m - m2012) / (m2014 - m2012)).clamp(0.0, 1.5);
        1.30 - 0.35 * f
    }
}

/// The survey calendar for the Fig. 11 reproduction: one two-week survey
/// per quarter from 2009-12 through 2013-12, three vantage points as in the
/// paper (`w`, `c`, `j`), yielding 51 (date, site) samples standing in for
/// the paper's 63 surveys.
pub fn survey_calendar() -> Vec<(YearMonth, char)> {
    let mut out = Vec::new();
    let start = YearMonth::new(2009, 12).months_since_epoch();
    let end = YearMonth::new(2013, 12).months_since_epoch();
    let mut m = start;
    let mut site = 0usize;
    const SITES: [char; 3] = ['w', 'c', 'j'];
    while m <= end {
        out.push((YearMonth::from_months_since_epoch(m), SITES[site % 3]));
        // Stagger sites so each quarter-ish period has a survey, like the
        // real archive's interleaved collection points.
        site += 1;
        if site % 3 == 0 {
            m += 3;
        } else {
            m += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_one_around_a12w() {
        // A12w starts 2013-04; the curve should pass near 1.0 there so the
        // main dataset is unscaled.
        let s = propensity_scale_at(YearMonth::new(2013, 4));
        assert!((s - 1.0).abs() < 0.1, "scale at 2013-04: {s}");
    }

    #[test]
    fn peak_at_2012_then_decline() {
        let s2010 = propensity_scale_at(YearMonth::new(2010, 1));
        let s2012 = propensity_scale_at(YearMonth::new(2012, 1));
        let s2013 = propensity_scale_at(YearMonth::new(2013, 6));
        assert!(s2012 > s2010, "rising into 2012");
        assert!(s2013 < s2012, "declining after 2012");
        assert!(s2012 <= 1.35);
    }

    #[test]
    fn scale_is_continuous_at_the_peak() {
        let before = propensity_scale_at(YearMonth::new(2011, 12));
        let at = propensity_scale_at(YearMonth::new(2012, 1));
        let after = propensity_scale_at(YearMonth::new(2012, 2));
        assert!((at - before).abs() < 0.05);
        assert!((at - after).abs() < 0.05);
    }

    #[test]
    fn calendar_spans_the_archive() {
        let cal = survey_calendar();
        assert!(cal.len() >= 30, "got {} surveys", cal.len());
        assert_eq!(cal.first().unwrap().0, YearMonth::new(2009, 12));
        assert!(cal.last().unwrap().0 >= YearMonth::new(2013, 10));
        // All three sites appear.
        for site in ['w', 'c', 'j'] {
            assert!(cal.iter().any(|&(_, s)| s == site));
        }
        // Dates are non-decreasing.
        assert!(cal.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn scale_clamps_outside_modeled_window() {
        assert!(propensity_scale_at(YearMonth::new(2005, 1)) >= 1.0);
        let far = propensity_scale_at(YearMonth::new(2016, 1));
        assert!(far > 0.5 && far < 1.0);
    }
}
