//! A campus network in the style of §3.2.4's USC ground-truth study.
//!
//! The paper validates its diurnal detection against operator knowledge of
//! one university: a few hundred /24s with very different management —
//! heavily overprovisioned wireless pools ("one wireless address for every
//! student … around ten live addresses at any time"), centrally managed
//! dynamic pools, general-use building networks (some hiding decentralized
//! 16-address dynamic pockets), and server space. This module generates
//! such a campus with known per-block roles so experiments can score
//! true/false positives and the policy-exclusion false negatives.

use crate::block::{BlockProfile, BlockSpec, LinkClass};
use sleepwatch_geoecon::rng::KeyedRng;

/// Ground-truth role of a campus block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampusUse {
    /// Overprovisioned wireless pool: many addresses seen over months, ~10
    /// live at any instant.
    Wireless,
    /// Centrally managed dynamic pool: strongly diurnal.
    Dynamic,
    /// General building use: mostly always-on desktops/printers.
    GeneralUse,
    /// General use with a decentralized pocket of 16 dynamic addresses.
    GeneralWithPocket,
    /// Server/datacenter space: dense and always on.
    Server,
}

impl CampusUse {
    /// Whether the role is *expected* to behave diurnally (the operator's
    /// prior — the paper found general-use blocks surprising them).
    pub fn expected_diurnal(self) -> bool {
        matches!(self, CampusUse::Wireless | CampusUse::Dynamic)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CampusUse::Wireless => "wireless",
            CampusUse::Dynamic => "dynamic",
            CampusUse::GeneralUse => "general",
            CampusUse::GeneralWithPocket => "general+pocket",
            CampusUse::Server => "server",
        }
    }
}

/// Campus composition; defaults mirror the USC numbers in §3.2.4.
#[derive(Debug, Clone, Copy)]
pub struct CampusConfig {
    /// Seed for the campus's behaviour streams.
    pub seed: u64,
    /// Overprovisioned wireless blocks (USC: 142).
    pub wireless: usize,
    /// Dynamic pools (USC DNS labels 32 blocks dynamic).
    pub dynamic: usize,
    /// General-use blocks without pockets.
    pub general: usize,
    /// General-use blocks with a 16-address dynamic pocket.
    pub general_with_pocket: usize,
    /// Server blocks.
    pub server: usize,
    /// Campus timezone (USC: UTC−8 ≈ −7.9 h from longitude).
    pub utc_offset_hours: f64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            seed: 0x0055_5343, // "USC"
            wireless: 142,
            dynamic: 32,
            general: 240,
            general_with_pocket: 40,
            server: 60,
            utc_offset_hours: -8.0,
        }
    }
}

/// Builds the campus: `(block, role)` pairs with sequential ids.
pub fn generate_campus(cfg: &CampusConfig) -> Vec<(BlockSpec, CampusUse)> {
    let mut out = Vec::new();
    let mut id = 0u64;
    let mut push = |role: CampusUse, n: usize, out: &mut Vec<(BlockSpec, CampusUse)>| {
        for _ in 0..n {
            let mut rng = KeyedRng::from_parts(&[cfg.seed, 0x6361_6d70, id]);
            let profile = match role {
                CampusUse::Wireless => BlockProfile {
                    // Hundreds of addresses used over months, each up for
                    // about an hour a day scattered across the whole day:
                    // ~10 live at once.
                    n_stable: 2,
                    n_diurnal: 180 + rng.below(60) as u16,
                    stable_avail: 0.95,
                    diurnal_avail: 0.9,
                    onset_hours: 7.0,
                    onset_spread: 13.0,
                    duration_hours: 1.0 + rng.next_f64() * 0.6,
                    duration_spread: 0.5,
                    sigma_start: 1.0,
                    sigma_duration: 0.4,
                    utc_offset_hours: cfg.utc_offset_hours,
                },
                CampusUse::Dynamic => BlockProfile {
                    n_stable: 5 + rng.below(10) as u16,
                    n_diurnal: 120 + rng.below(100) as u16,
                    stable_avail: 0.9,
                    diurnal_avail: 0.85,
                    onset_hours: 8.0 + rng.normal() * 0.7,
                    onset_spread: 2.5,
                    duration_hours: 9.0 + rng.next_f64() * 3.0,
                    duration_spread: 2.0,
                    sigma_start: 0.7,
                    sigma_duration: 0.8,
                    utc_offset_hours: cfg.utc_offset_hours,
                },
                CampusUse::GeneralUse => BlockProfile {
                    n_stable: 60 + rng.below(120) as u16,
                    n_diurnal: 0,
                    stable_avail: 0.55 + rng.next_f64() * 0.4,
                    diurnal_avail: 0.0,
                    onset_hours: 0.0,
                    onset_spread: 0.0,
                    duration_hours: 0.0,
                    duration_spread: 0.0,
                    sigma_start: 0.0,
                    sigma_duration: 0.0,
                    utc_offset_hours: cfg.utc_offset_hours,
                },
                CampusUse::GeneralWithPocket => BlockProfile {
                    // The §3.2.4 surprise: a 16-address dynamic range inside
                    // an otherwise general-use block.
                    n_stable: 50 + rng.below(80) as u16,
                    n_diurnal: 16,
                    stable_avail: 0.6 + rng.next_f64() * 0.3,
                    diurnal_avail: 0.85,
                    onset_hours: 8.5,
                    onset_spread: 2.0,
                    duration_hours: 9.0,
                    duration_spread: 1.0,
                    sigma_start: 0.5,
                    sigma_duration: 0.5,
                    utc_offset_hours: cfg.utc_offset_hours,
                },
                CampusUse::Server => BlockProfile {
                    n_stable: 40 + rng.below(160) as u16,
                    n_diurnal: 0,
                    stable_avail: 0.9 + rng.next_f64() * 0.09,
                    diurnal_avail: 0.0,
                    onset_hours: 0.0,
                    onset_spread: 0.0,
                    duration_hours: 0.0,
                    duration_spread: 0.0,
                    sigma_start: 0.0,
                    sigma_duration: 0.0,
                    utc_offset_hours: cfg.utc_offset_hours,
                },
            };
            let mut b = BlockSpec::bare(id, cfg.seed, profile);
            // Pocket blocks are predominantly always-on, so the planted
            // ground-truth label follows the operator's expectation.
            b.planted_diurnal = role.expected_diurnal();
            b.perm_offset = rng.below(256) as u8;
            b.perm_step = (rng.below(128) as u8) * 2 + 1;
            b.links = match role {
                CampusUse::Wireless => vec![LinkClass::Dhcp],
                CampusUse::Dynamic => vec![LinkClass::Dynamic],
                CampusUse::Server => vec![LinkClass::Server],
                _ => vec![LinkClass::Static],
            };
            out.push((b, role));
            id += 1;
        }
    };
    push(CampusUse::Wireless, cfg.wireless, &mut out);
    push(CampusUse::Dynamic, cfg.dynamic, &mut out);
    push(CampusUse::GeneralUse, cfg.general, &mut out);
    push(CampusUse::GeneralWithPocket, cfg.general_with_pocket, &mut out);
    push(CampusUse::Server, cfg.server, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_matches_config() {
        let cfg = CampusConfig::default();
        let campus = generate_campus(&cfg);
        let count = |role: CampusUse| campus.iter().filter(|(_, r)| *r == role).count();
        assert_eq!(count(CampusUse::Wireless), 142);
        assert_eq!(count(CampusUse::Dynamic), 32);
        assert_eq!(count(CampusUse::GeneralUse), 240);
        assert_eq!(count(CampusUse::GeneralWithPocket), 40);
        assert_eq!(count(CampusUse::Server), 60);
        assert_eq!(campus.len(), 514);
    }

    #[test]
    fn wireless_blocks_are_sparse_at_any_instant() {
        let cfg = CampusConfig::default();
        let campus = generate_campus(&cfg);
        let (b, _) = campus.iter().find(|(_, r)| *r == CampusUse::Wireless).unwrap();
        // Count live addresses at several times of day.
        let mut total = 0usize;
        let samples = 24;
        for h in 0..samples {
            total += b.active_count(h * 3_600);
        }
        let mean_live = total as f64 / samples as f64;
        assert!(
            (3.0..25.0).contains(&mean_live),
            "overprovisioned wireless should hold ~10 live, got {mean_live}"
        );
        assert!(b.ever_active_count() > 150, "many addresses used over months");
    }

    #[test]
    fn dynamic_blocks_swing_daily() {
        let cfg = CampusConfig::default();
        let campus = generate_campus(&cfg);
        let (b, _) = campus.iter().find(|(_, r)| *r == CampusUse::Dynamic).unwrap();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for h in 0..24u64 {
            let a = b.true_availability(h * 3_600);
            lo = lo.min(a);
            hi = hi.max(a);
        }
        assert!(hi - lo > 0.3, "dynamic pool must swing: {lo}..{hi}");
    }

    #[test]
    fn server_blocks_are_flat_and_dense() {
        let cfg = CampusConfig::default();
        let campus = generate_campus(&cfg);
        let (b, _) = campus.iter().find(|(_, r)| *r == CampusUse::Server).unwrap();
        let a0 = b.true_availability(3 * 3_600);
        let a12 = b.true_availability(15 * 3_600);
        assert!((a0 - a12).abs() < 0.02, "servers don't sleep");
        assert!(a0 > 0.85);
    }

    #[test]
    fn roles_expectations() {
        assert!(CampusUse::Wireless.expected_diurnal());
        assert!(CampusUse::Dynamic.expected_diurnal());
        assert!(!CampusUse::GeneralUse.expected_diurnal());
        assert!(!CampusUse::Server.expected_diurnal());
        assert_eq!(CampusUse::GeneralWithPocket.label(), "general+pocket");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CampusConfig::default();
        let a = generate_campus(&cfg);
        let b = generate_campus(&cfg);
        for ((ba, ra), (bb, rb)) in a.iter().zip(&b) {
            assert_eq!(ra, rb);
            assert_eq!(ba.profile.n_diurnal, bb.profile.n_diurnal);
            assert_eq!(ba.perm_offset, bb.perm_offset);
        }
    }
}
