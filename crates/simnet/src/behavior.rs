//! Per-address behaviour models.
//!
//! Every address in the synthetic Internet is a pure function from
//! `(world seed, block, address, time)` to respond/not-respond. Diurnal
//! addresses follow the model the paper validates against in §3.2.2: an
//! address turns on once per day at a phase `φ`, stays up for a nominal
//! duration, and both onset and duration may carry per-day Gaussian noise
//! (`σ_s`, `σ_d`). Noise draws are keyed by `(…, day)`, so a day's schedule
//! is stable however often it is probed.

use sleepwatch_geoecon::rng::{hash_parts, KeyedRng};

/// Seconds per day.
pub const DAY_SECONDS: u64 = 86_400;

/// Stream tags keeping the behaviour's independent random draws apart.
const STREAM_RESPONSE: u64 = 0x7265_7370; // "resp"
const STREAM_ONSET: u64 = 0x6f6e_7365; // "onse"
const STREAM_DURATION: u64 = 0x6475_7261; // "dura"

/// Identity of one address for keying random streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrKey {
    /// World seed.
    pub seed: u64,
    /// Block identifier.
    pub block: u64,
    /// Address within the block (0–255).
    pub addr: u8,
}

impl AddrKey {
    fn parts(&self, stream: u64, extra: u64) -> [u64; 5] {
        [self.seed, stream, self.block, self.addr as u64, extra]
    }
}

/// How one address behaves over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressBehavior {
    /// Never responds; not part of the block's ever-active set.
    Inactive,
    /// Active around the clock, responding to any probe with probability
    /// `avail` (models hosts behind lossy links or with duty cycles shorter
    /// than a round).
    On {
        /// Response probability while up.
        avail: f64,
    },
    /// Cycles with an arbitrary period — the DHCP lease-pool effect §4
    /// describes: "if dynamic addresses are allocated for some period p,
    /// and given out sequentially across a region that spans multiple /24
    /// blocks, then those blocks will see usage that changes with period
    /// p". Unlike [`AddressBehavior::Diurnal`] the period need not be 24 h
    /// and carries no day-by-day noise.
    Periodic {
        /// Full cycle length, hours.
        period_hours: f64,
        /// Phase offset as a fraction of the period, `[0, 1)`.
        phase_frac: f64,
        /// Fraction of the period the address is up, `(0, 1]`.
        duty: f64,
        /// Response probability while up.
        avail: f64,
    },
    /// Up for part of each day.
    Diurnal {
        /// Nominal daily onset, hours of *local* time in `[0, 24)`.
        onset_hours: f64,
        /// Nominal up-time per day, hours.
        duration_hours: f64,
        /// Per-day Gaussian jitter of the onset, hours (paper's `σ_s`).
        sigma_start: f64,
        /// Per-day Gaussian jitter of the duration, hours (paper's `σ_d`).
        sigma_duration: f64,
        /// Response probability while up.
        avail: f64,
        /// Local-time offset from UTC, hours.
        utc_offset_hours: f64,
    },
}

impl AddressBehavior {
    /// Whether the address ever responds (membership in `E(b)`).
    pub fn is_ever_active(&self) -> bool {
        !matches!(self, AddressBehavior::Inactive)
    }

    /// Whether this is a diurnal address.
    pub fn is_diurnal(&self) -> bool {
        matches!(self, AddressBehavior::Diurnal { .. })
    }

    /// Whether the address is *up* (would answer with its `avail`
    /// probability) at `time` seconds since the epoch.
    pub fn is_up(&self, key: AddrKey, time: u64) -> bool {
        match *self {
            AddressBehavior::Inactive => false,
            AddressBehavior::On { .. } => true,
            AddressBehavior::Periodic { period_hours, phase_frac, duty, .. } => {
                let cycles = time as f64 / (period_hours * 3_600.0) + phase_frac;
                cycles.fract() < duty
            }
            AddressBehavior::Diurnal {
                onset_hours,
                duration_hours,
                sigma_start,
                sigma_duration,
                utc_offset_hours,
                ..
            } => {
                // Work in local time so onsets align with human schedules.
                let local = time as f64 + utc_offset_hours * 3_600.0;
                let day = (local / DAY_SECONDS as f64).floor();
                let tod_h = (local - day * DAY_SECONDS as f64) / 3_600.0;

                // An up-period that starts late yesterday can cover early
                // today, so evaluate yesterday's window too.
                for d in [day - 1.0, day] {
                    let (start, dur) = self.daily_window(
                        key,
                        d as i64,
                        onset_hours,
                        duration_hours,
                        sigma_start,
                        sigma_duration,
                    );
                    let offset = (day - d) * 24.0; // 24 when looking at yesterday
                    let t = tod_h + offset;
                    if t >= start && t < start + dur {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// That day's realized (onset, duration) in hours, with per-day noise.
    fn daily_window(
        &self,
        key: AddrKey,
        day: i64,
        onset: f64,
        duration: f64,
        sigma_start: f64,
        sigma_duration: f64,
    ) -> (f64, f64) {
        let day_u = day as u64;
        let start = if sigma_start > 0.0 {
            let mut rng = KeyedRng::from_parts(&key.parts(STREAM_ONSET, day_u));
            onset + rng.normal() * sigma_start
        } else {
            onset
        };
        let dur = if sigma_duration > 0.0 {
            let mut rng = KeyedRng::from_parts(&key.parts(STREAM_DURATION, day_u));
            (duration + rng.normal() * sigma_duration).clamp(0.0, 24.0)
        } else {
            duration
        };
        (start, dur)
    }

    /// Probability the address answers a probe at `time` (0, or its `avail`
    /// while up). This is the ground-truth expectation the estimators chase.
    pub fn response_probability(&self, key: AddrKey, time: u64) -> f64 {
        match *self {
            AddressBehavior::Inactive => 0.0,
            AddressBehavior::On { avail } => avail,
            AddressBehavior::Periodic { avail, .. } => {
                if self.is_up(key, time) {
                    avail
                } else {
                    0.0
                }
            }
            AddressBehavior::Diurnal { avail, .. } => {
                if self.is_up(key, time) {
                    avail
                } else {
                    0.0
                }
            }
        }
    }

    /// Samples one probe: does the address answer at `time`?
    ///
    /// Deterministic in `(key, time)` — re-evaluating the same probe gives
    /// the same outcome, which keeps full runs replayable.
    pub fn responds(&self, key: AddrKey, time: u64) -> bool {
        let p = self.response_probability(key, time);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = hash_parts(&key.parts(STREAM_RESPONSE, time));
        ((h >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: AddrKey = AddrKey { seed: 99, block: 5, addr: 17 };

    #[test]
    fn periodic_behavior_cycles_at_its_period() {
        // 6-hour lease, half duty: up for 3 h, down for 3 h.
        let b =
            AddressBehavior::Periodic { period_hours: 6.0, phase_frac: 0.0, duty: 0.5, avail: 1.0 };
        assert!(b.is_up(KEY, 0));
        assert!(b.is_up(KEY, 2 * 3_600));
        assert!(!b.is_up(KEY, 4 * 3_600));
        assert!(b.is_up(KEY, 6 * 3_600));
        assert!(b.is_ever_active());
        // Duty over many cycles.
        let n = 10_000u64;
        let up = (0..n).filter(|&i| b.is_up(KEY, i * 660)).count();
        let frac = up as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "duty {frac}");
    }

    #[test]
    fn periodic_phase_shifts_window() {
        let b = AddressBehavior::Periodic {
            period_hours: 12.0,
            phase_frac: 0.5,
            duty: 0.25,
            avail: 1.0,
        };
        // phase 0.5 of a 12 h period → window covers hours 6..9.
        assert!(!b.is_up(KEY, 3_600));
        assert!(b.is_up(KEY, 7 * 3_600));
        assert!(!b.is_up(KEY, 10 * 3_600));
    }

    fn diurnal(onset: f64, dur: f64, ss: f64, sd: f64, offset: f64) -> AddressBehavior {
        AddressBehavior::Diurnal {
            onset_hours: onset,
            duration_hours: dur,
            sigma_start: ss,
            sigma_duration: sd,
            avail: 1.0,
            utc_offset_hours: offset,
        }
    }

    #[test]
    fn inactive_never_responds() {
        let b = AddressBehavior::Inactive;
        for t in (0..DAY_SECONDS).step_by(3_600) {
            assert!(!b.responds(KEY, t));
        }
        assert!(!b.is_ever_active());
        assert_eq!(b.response_probability(KEY, 0), 0.0);
    }

    #[test]
    fn always_on_full_availability() {
        let b = AddressBehavior::On { avail: 1.0 };
        for t in (0..DAY_SECONDS).step_by(660) {
            assert!(b.responds(KEY, t));
        }
    }

    #[test]
    fn always_on_partial_availability_matches_rate() {
        let b = AddressBehavior::On { avail: 0.3 };
        let n = 20_000;
        let hits = (0..n).filter(|&i| b.responds(KEY, i * 660)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn probe_outcomes_are_replayable() {
        let b = AddressBehavior::On { avail: 0.5 };
        for t in (0..100_000).step_by(660) {
            assert_eq!(b.responds(KEY, t), b.responds(KEY, t));
        }
    }

    #[test]
    fn clean_diurnal_respects_window() {
        // Up 08:00–16:00 UTC, no noise.
        let b = diurnal(8.0, 8.0, 0.0, 0.0, 0.0);
        assert!(!b.is_up(KEY, 7 * 3_600));
        assert!(b.is_up(KEY, 8 * 3_600));
        assert!(b.is_up(KEY, 12 * 3_600));
        assert!(b.is_up(KEY, 15 * 3_600 + 3_599));
        assert!(!b.is_up(KEY, 16 * 3_600));
        assert!(!b.is_up(KEY, 23 * 3_600));
    }

    #[test]
    fn diurnal_duty_cycle_over_many_days() {
        let b = diurnal(9.0, 8.0, 0.0, 0.0, 0.0);
        let rounds = 28 * 131;
        let up = (0..rounds).filter(|&r| b.is_up(KEY, r * 660)).count();
        let frac = up as f64 / rounds as f64;
        assert!((frac - 8.0 / 24.0).abs() < 0.01, "duty {frac}");
    }

    #[test]
    fn timezone_shifts_window() {
        // Onset 08:00 local at UTC+8 → up at 00:00 UTC.
        let b = diurnal(8.0, 8.0, 0.0, 0.0, 8.0);
        assert!(b.is_up(KEY, 0));
        assert!(b.is_up(KEY, 7 * 3_600));
        assert!(!b.is_up(KEY, 9 * 3_600));
    }

    #[test]
    fn window_wrapping_past_midnight() {
        // Starts 20:00, 10 hours → covers 20:00–06:00 next day.
        let b = diurnal(20.0, 10.0, 0.0, 0.0, 0.0);
        assert!(b.is_up(KEY, 21 * 3_600));
        assert!(b.is_up(KEY, DAY_SECONDS + 3 * 3_600)); // 03:00 next day
        assert!(!b.is_up(KEY, DAY_SECONDS + 7 * 3_600));
    }

    #[test]
    fn onset_noise_moves_start_but_preserves_mean_duty() {
        let b = diurnal(10.0, 8.0, 1.5, 0.0, 0.0);
        let days = 200;
        let mut up_rounds = 0usize;
        let mut total = 0usize;
        for r in 0..days * 131 {
            total += 1;
            if b.is_up(KEY, r as u64 * 660) {
                up_rounds += 1;
            }
        }
        let frac = up_rounds as f64 / total as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.02, "duty with onset noise {frac}");
    }

    #[test]
    fn duration_noise_clamped_to_day() {
        // Huge σ_d: durations clamp to [0, 24] so is_up never panics and the
        // mean duty stays in range.
        let b = diurnal(6.0, 12.0, 0.0, 20.0, 0.0);
        let mut up = 0;
        let n = 131 * 100;
        for r in 0..n {
            if b.is_up(KEY, r * 660) {
                up += 1;
            }
        }
        let frac = up as f64 / n as f64;
        assert!(frac > 0.2 && frac < 0.8, "duty {frac}");
    }

    #[test]
    fn different_addresses_have_independent_noise() {
        let b = diurnal(9.0, 8.0, 2.0, 0.0, 0.0);
        let k1 = AddrKey { seed: 1, block: 2, addr: 3 };
        let k2 = AddrKey { seed: 1, block: 2, addr: 4 };
        // At the window edge, noise makes the two addresses disagree on
        // some days.
        let t_edge = 9 * 3_600;
        let disagreements = (0..200)
            .filter(|&d| {
                let t = d * DAY_SECONDS + t_edge;
                b.is_up(k1, t) != b.is_up(k2, t)
            })
            .count();
        assert!(disagreements > 10, "only {disagreements} disagreements");
    }

    #[test]
    fn response_probability_matches_is_up() {
        let b = diurnal(8.0, 8.0, 0.0, 0.0, 0.0);
        assert_eq!(b.response_probability(KEY, 9 * 3_600), 1.0);
        assert_eq!(b.response_probability(KEY, 20 * 3_600), 0.0);
    }
}
