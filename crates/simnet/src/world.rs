//! World synthesis: a calibrated population of /24 blocks.
//!
//! The generator plants the structure the paper measured — country-level
//! diurnal fractions (Tables 3/4), phase tied to longitude (§5.2), newer
//! allocations more diurnal (§5.3), link technologies correlated with
//! diurnalness (§5.5) — and nothing downstream may read the planted labels;
//! the probing + spectral pipeline has to rediscover them.

use crate::block::{BlockProfile, BlockSpec, LinkClass};
use sleepwatch_geoecon::allocation::{AllocationRegistry, Rir, YearMonth};
use sleepwatch_geoecon::asmap::AsRecord;
use sleepwatch_geoecon::country::{Country, COUNTRIES};
use sleepwatch_geoecon::geolocate::GeoDatabase;
use sleepwatch_geoecon::rng::{hash_parts, KeyedRng};

/// Start of the paper's `A12w` adaptive dataset: 2013-04-24 17:18 UTC.
pub const A12W_START: u64 = 1_366_823_880;

/// Start of Survey `S51w`: 2012-11-16 00:00 UTC.
pub const S51W_START: u64 = 1_353_024_000;

/// One probing round: 11 minutes.
pub const ROUND_SECONDS: u64 = 660;

/// Configuration of a synthetic world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; all structure and behaviour derive from it.
    pub seed: u64,
    /// Number of /24 blocks to synthesize.
    pub num_blocks: usize,
    /// Measurement epoch (unix seconds); outages are planted inside
    /// `[start_time, start_time + span_days]`.
    pub start_time: u64,
    /// Nominal observation span, days (for outage placement only).
    pub span_days: f64,
    /// Multiplier on every country's diurnal propensity (the Fig. 11
    /// long-term evolution knob). 1.0 = the paper's 2013 world.
    pub propensity_scale: f64,
    /// Restrict generation to these country codes (`None` = whole world).
    pub country_filter: Option<Vec<&'static str>>,
    /// Fraction of blocks suffering one injected outage during the span.
    pub outage_fraction: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 1,
            num_blocks: 10_000,
            start_time: A12W_START,
            span_days: 35.0,
            propensity_scale: 1.0,
            country_filter: None,
            outage_fraction: 0.04,
        }
    }
}

/// A fully synthesized world.
#[derive(Debug)]
pub struct World {
    /// The configuration it was built from.
    pub cfg: WorldConfig,
    /// All blocks.
    pub blocks: Vec<BlockSpec>,
    /// The /8 allocation registry.
    pub registry: AllocationRegistry,
    /// The geolocation database (with its error model).
    pub geodb: GeoDatabase,
    /// WHOIS-style AS records for every AS in use.
    pub as_records: Vec<AsRecord>,
}

/// Stream tags for world-generation draws.
const STREAM_BLOCK: u64 = 0x626c_6f6b; // "blok"
const STREAM_OUTAGE: u64 = 0x6f75_7467; // "outg"
const STREAM_SHARD: u64 = 0x7368_7264; // "shrd"

/// Routes a block id to one of `shards` ingest shards.
///
/// A pure keyed hash: the mapping depends only on `(block_id, shards)` —
/// never on arrival order, world configuration or thread count — which is
/// what lets any process rebuild a shard's membership from the id alone.
#[inline]
pub fn shard_of(block_id: u64, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard required");
    (hash_parts(&[STREAM_SHARD, block_id]) % shards as u64) as usize
}

/// Iterator behind [`WorldSource::shard_rounds`]: one shard's
/// ground-truth availability stream, round-major.
#[derive(Debug)]
pub struct ShardRounds {
    blocks: Vec<(u64, BlockSpec)>,
    start_time: u64,
    rounds: u64,
    round: u64,
    idx: usize,
}

impl Iterator for ShardRounds {
    type Item = (u64, u64, f64);

    fn next(&mut self) -> Option<(u64, u64, f64)> {
        if self.blocks.is_empty() || self.round >= self.rounds {
            return None;
        }
        let (id, spec) = &self.blocks[self.idx];
        let t = self.start_time + self.round * ROUND_SECONDS;
        let item = (*id, self.round, spec.true_availability(t));
        self.idx += 1;
        if self.idx == self.blocks.len() {
            self.idx = 0;
            self.round += 1;
        }
        Some(item)
    }
}

/// Per-country AS inventory: `(asn, ISP display name)` pairs.
fn synthesize_ases(countries: &[&'static Country]) -> (Vec<AsRecord>, Vec<Vec<u32>>) {
    const SUFFIXES: [&str; 6] =
        ["Telecom", "Cable", "Online", "DSL Networks", "Broadband", "Datacom"];
    let mut records = Vec::new();
    let mut per_country = Vec::with_capacity(countries.len());
    let mut next_asn = 1_000u32;
    for c in countries {
        // Bigger address populations get more ISPs (2–10).
        let n_isps = (2 + (c.block_weight / 60_000.0) as usize).min(10);
        let mut asns = Vec::new();
        for i in 0..n_isps {
            let isp = format!("{} {}", c.name.replace(' ', ""), SUFFIXES[i % SUFFIXES.len()]);
            // Registry-style tag leading with the organization, like
            // "CHINANET-BACKBONE China Telecom": the org token must come
            // first so string clustering groups the ISP's ASes together.
            let tag = isp.replace(' ', "").to_ascii_uppercase();
            // Larger ISPs register several ASes, exercising org clustering.
            let n_as = 1 + (i % 3);
            for j in 0..n_as {
                let asn = next_asn;
                next_asn += 1;
                records.push(AsRecord {
                    asn,
                    name: format!("{tag}-{asn} {isp} {}", ["", "II", "III"][j]),
                });
                asns.push(asn);
            }
        }
        per_country.push(asns);
    }
    (records, per_country)
}

/// Link-class mixes: `(class, weight)`; one table for diurnal blocks, one
/// for always-on blocks. Calibrated so the measured per-keyword fractions
/// land near Fig. 17 (dynamic most diurnal at ~19 %, dsl ~11 %, dialup
/// barely diurnal despite expectations).
const DIURNAL_LINK_MIX: [(LinkClass, f64); 9] = [
    (LinkClass::Dynamic, 0.30),
    (LinkClass::Dsl, 0.22),
    (LinkClass::Dhcp, 0.14),
    (LinkClass::Ppp, 0.10),
    (LinkClass::Residential, 0.08),
    (LinkClass::Cable, 0.08),
    (LinkClass::Static, 0.05),
    (LinkClass::Dialup, 0.01),
    (LinkClass::Server, 0.01),
];
const ALWAYSON_LINK_MIX: [(LinkClass, f64); 9] = [
    (LinkClass::Static, 0.20),
    (LinkClass::Dsl, 0.20),
    (LinkClass::Cable, 0.18),
    (LinkClass::Dynamic, 0.17),
    (LinkClass::Dhcp, 0.09),
    (LinkClass::Server, 0.07),
    (LinkClass::Residential, 0.06),
    (LinkClass::Dialup, 0.04),
    (LinkClass::Ppp, 0.04),
];

fn weighted_pick<T: Copy>(rng: &mut KeyedRng, table: &[(T, f64)]) -> T {
    let total: f64 = table.iter().map(|&(_, w)| w).sum();
    let mut x = rng.next_f64() * total;
    for &(v, w) in table {
        x -= w;
        if x <= 0.0 {
            return v;
        }
    }
    table.last().expect("non-empty table").0
}

/// A lazy, seed-keyed block generator: the shared world structure
/// (country tables, allocation registry, geo database, AS inventory)
/// without the `Vec<BlockSpec>`.
///
/// Every block's randomness is keyed by `(seed, stream, id)` alone, so any
/// block — and therefore any id-range shard — can be synthesized
/// independently, in any order, on any worker, and is bit-identical to the
/// block [`World::generate`] would have produced at that index. Paper-scale
/// runs (3.7M blocks) pull chunks from a `WorldSource` instead of
/// materializing ~1 GB of specs up front, bounding peak memory at
/// O(workers × chunk).
#[derive(Debug)]
pub struct WorldSource {
    cfg: WorldConfig,
    countries: Vec<&'static Country>,
    /// Cumulative sampling weights, aligned with `countries`.
    cumulative: Vec<f64>,
    /// Per-country AS inventories, aligned with `countries`.
    country_asns: Vec<Vec<u32>>,
    registry: AllocationRegistry,
    geodb: GeoDatabase,
    as_records: Vec<AsRecord>,
    exhaustion: YearMonth,
    span_seconds: u64,
}

impl WorldSource {
    /// Builds the shared structure for `cfg` without generating any block.
    /// Deterministic in `cfg`.
    pub fn new(cfg: WorldConfig) -> WorldSource {
        let countries: Vec<&'static Country> = match &cfg.country_filter {
            Some(codes) => COUNTRIES.iter().filter(|c| codes.contains(&c.code)).collect(),
            None => COUNTRIES.iter().collect(),
        };
        assert!(!countries.is_empty(), "country filter excluded every country");

        let registry = AllocationRegistry::synthesize(cfg.seed);
        let geodb = GeoDatabase::new(cfg.seed);
        let (as_records, country_asns) = synthesize_ases(&countries);

        // Cumulative weights for country sampling.
        let total_w: f64 = countries.iter().map(|c| c.block_weight).sum();
        let mut cumulative = Vec::with_capacity(countries.len());
        let mut acc = 0.0;
        for c in &countries {
            acc += c.block_weight / total_w;
            cumulative.push(acc);
        }

        let span_seconds = (cfg.span_days * 86_400.0) as u64;
        let exhaustion = registry.exhaustion();
        WorldSource {
            cfg,
            countries,
            cumulative,
            country_asns,
            registry,
            geodb,
            as_records,
            exhaustion,
            span_seconds,
        }
    }

    /// The configuration this source serves.
    pub fn cfg(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Number of blocks in the world (`cfg.num_blocks`).
    pub fn len(&self) -> usize {
        self.cfg.num_blocks
    }

    /// `true` for a zero-block world.
    pub fn is_empty(&self) -> bool {
        self.cfg.num_blocks == 0
    }

    /// The geolocation database shared by every block.
    pub fn geodb(&self) -> &GeoDatabase {
        &self.geodb
    }

    /// The /8 allocation registry.
    pub fn registry(&self) -> &AllocationRegistry {
        &self.registry
    }

    /// WHOIS-style AS records for every AS in use.
    pub fn as_records(&self) -> &[AsRecord] {
        &self.as_records
    }

    /// Synthesizes block `id`. Bit-identical to `World::generate`'s block
    /// at the same index regardless of which other blocks were generated.
    pub fn generate_block(&self, id: u64) -> BlockSpec {
        let spec = self.synthesize(id);
        sleepwatch_obs::global().simnet.blocks_generated.incr();
        spec
    }

    /// Synthesizes the given ids into `out` (cleared first), in order.
    /// One counter update for the whole shard keeps telemetry out of the
    /// per-block path.
    pub fn generate_into(&self, ids: impl IntoIterator<Item = u64>, out: &mut Vec<BlockSpec>) {
        out.clear();
        out.extend(ids.into_iter().map(|id| self.synthesize(id)));
        sleepwatch_obs::global().simnet.blocks_generated.add(out.len() as u64);
    }

    /// Ids of the blocks `shard` owns under [`shard_of`] routing, in
    /// ascending order.
    pub fn shard_block_ids(&self, shard: usize, shards: usize) -> impl Iterator<Item = u64> + '_ {
        assert!(shard < shards, "shard {shard} out of range for {shards} shards");
        (0..self.cfg.num_blocks as u64).filter(move |&id| shard_of(id, shards) == shard)
    }

    /// Ground-truth availability round generator for one ingest shard.
    ///
    /// Yields `(block_id, round, availability)` round-major over the
    /// shard's blocks. The stream depends only on
    /// `(WorldConfig, shard, shards, rounds)` — the generator synthesizes
    /// just the blocks [`shard_of`] assigns to `shard` — so any shard's
    /// feed can be regenerated independently of every other shard.
    pub fn shard_rounds(&self, shard: usize, shards: usize, rounds: u64) -> ShardRounds {
        let ids: Vec<u64> = self.shard_block_ids(shard, shards).collect();
        let mut specs = Vec::new();
        self.generate_into(ids.iter().copied(), &mut specs);
        ShardRounds {
            blocks: ids.into_iter().zip(specs).collect(),
            start_time: self.cfg.start_time,
            rounds,
            round: 0,
            idx: 0,
        }
    }

    /// Materializes every block, consuming the source.
    pub fn into_world(self) -> World {
        let blocks: Vec<BlockSpec> =
            (0..self.cfg.num_blocks as u64).map(|id| self.synthesize(id)).collect();
        let obs = sleepwatch_obs::global();
        obs.simnet.worlds_generated.incr();
        obs.simnet.blocks_generated.add(blocks.len() as u64);
        World {
            cfg: self.cfg,
            blocks,
            registry: self.registry,
            geodb: self.geodb,
            as_records: self.as_records,
        }
    }

    /// The uncounted per-block generator; all public entry points funnel
    /// here so they stay bit-identical.
    fn synthesize(&self, id: u64) -> BlockSpec {
        let cfg = &self.cfg;
        let mut rng = KeyedRng::from_parts(&[cfg.seed, STREAM_BLOCK, id]);

        // 1. Country.
        let u = rng.next_f64();
        let ci = self.cumulative.iter().position(|&c| u <= c).unwrap_or(self.countries.len() - 1);
        let country = self.countries[ci];
        let country_idx = COUNTRIES
            .iter()
            .position(|c| c.code == country.code)
            .expect("filtered from the same table");

        // 2. Planted diurnal label.
        let propensity = (country.diurnal_propensity * cfg.propensity_scale).min(0.95);
        let diurnal = rng.chance(propensity);

        // 3. True position.
        let lon = (country.lon + rng.normal() * country.lon_spread).clamp(-179.9, 179.9);
        let lat = (country.lat + rng.normal() * country.lat_spread).clamp(-85.0, 85.0);

        // 4. Allocation: diurnal blocks skew toward late /8s (§5.3).
        let rir = Rir::for_region(country.region);
        let first = YearMonth::new(country.first_alloc_year, 1);
        let window = self.exhaustion.months_between(first).max(1) as f64;
        let frac = if diurnal {
            rng.next_f64().powf(0.45) // late-skewed
        } else {
            rng.next_f64().powf(1.6) // early-skewed
        };
        let target =
            YearMonth::from_months_since_epoch(first.months_since_epoch() + (frac * window) as i64);
        let prefix8 = pick_prefix_near(&self.registry, rir, target, cfg.seed ^ id);
        let alloc_date = self.registry.date_of(prefix8).expect("picked from registry");

        // 5. AS.
        let asns = &self.country_asns[ci];
        let asn = asns[rng.below(asns.len() as u64) as usize];

        // 6. Link classes: 1 primary, sometimes a secondary.
        let mix: &[(LinkClass, f64)] = if diurnal { &DIURNAL_LINK_MIX } else { &ALWAYSON_LINK_MIX };
        let mut links = vec![weighted_pick(&mut rng, mix)];
        if rng.chance(0.25) {
            let second = weighted_pick(&mut rng, mix);
            if second != links[0] {
                links.push(second);
            }
        }

        // 7. Address population.
        let profile = if diurnal {
            let e = 32 + rng.below(225) as u16; // 32..=256
            let n_stable = ((e as f64) * rng.range(0.05, 0.30)) as u16;
            BlockProfile {
                n_stable,
                n_diurnal: e - n_stable,
                stable_avail: rng.range(0.6, 0.95),
                diurnal_avail: rng.range(0.55, 0.95),
                // Business-day usage: on in the local morning.
                onset_hours: 7.5 + rng.normal() * 1.2,
                onset_spread: rng.range(0.5, 3.5),
                duration_hours: rng.range(8.0, 14.0),
                duration_spread: rng.range(0.5, 3.0),
                sigma_start: rng.range(0.2, 1.2),
                sigma_duration: rng.range(0.2, 1.5),
                utc_offset_hours: country.utc_offset_hours(),
            }
        } else {
            // Archetypes from §3.1.1: sparse/high-A, dense/low-A,
            // and a broad middle; a few also carry a *minority* of
            // diurnal addresses (decentralized dynamic pockets, as
            // found at USC).
            let arch = rng.next_f64();
            let (e, avail) = if arch < 0.30 {
                (16 + rng.below(48) as u16, rng.range(0.55, 0.95))
            } else if arch < 0.50 {
                (180 + rng.below(77) as u16, rng.range(0.10, 0.45))
            } else {
                (64 + rng.below(116) as u16, rng.range(0.30, 0.90))
            };
            let minority_diurnal =
                if rng.chance(0.15) { ((e as f64) * rng.range(0.02, 0.10)) as u16 } else { 0 };
            BlockProfile {
                n_stable: e - minority_diurnal,
                n_diurnal: minority_diurnal,
                stable_avail: avail,
                diurnal_avail: avail,
                onset_hours: 7.5 + rng.normal() * 1.5,
                onset_spread: rng.range(0.5, 3.0),
                duration_hours: rng.range(8.0, 12.0),
                duration_spread: 1.0,
                sigma_start: 0.5,
                sigma_duration: 0.5,
                utc_offset_hours: country.utc_offset_hours(),
            }
        };

        // 8. Slow availability drift: a quarter of blocks renumber
        //    or grow over the observation window; the paper finds
        //    ~80 % of blocks drift less than 1 address/day.
        let drift_addr_per_day = if rng.chance(0.25) {
            let mag = rng.range(0.3, 3.5);
            if rng.chance(0.5) {
                mag
            } else {
                -mag
            }
        } else {
            0.0
        };

        // 9. Outage injection.
        let mut og = KeyedRng::from_parts(&[cfg.seed, STREAM_OUTAGE, id]);
        let outage = if og.chance(cfg.outage_fraction) && self.span_seconds > 0 {
            let dur = (3_600.0 * og.range(1.0, 24.0)) as u64;
            let start = cfg.start_time + og.below(self.span_seconds.saturating_sub(dur).max(1));
            Some((start, start + dur))
        } else {
            None
        };

        // 10. Stale historical estimate for estimator startup.
        let duty = (profile.duration_hours / 24.0).min(1.0);
        let e_cnt = profile.ever_active() as f64;
        let long_run = if e_cnt > 0.0 {
            (profile.n_stable as f64 * profile.stable_avail
                + profile.n_diurnal as f64 * profile.diurnal_avail * duty)
                / e_cnt
        } else {
            0.0
        };
        let hist_avail = if rng.chance(0.8) {
            (long_run + rng.range(-0.08, 0.08)).clamp(0.1, 1.0)
        } else {
            rng.range(0.1, 1.0) // badly stale, as in Fig. 1's start
        };

        // 11. Address permutation (scatter slots over the /24).
        let perm_offset = rng.below(256) as u8;
        let perm_step = (rng.below(128) as u8) * 2 + 1;

        BlockSpec {
            id,
            seed: cfg.seed,
            country_idx,
            asn,
            prefix8,
            alloc_date,
            lon,
            lat,
            links,
            profile,
            outage,
            lease: None,
            // Mild weekend quieting for a third of always-on
            // enterprise-ish blocks; homes don't sleep weekends.
            weekend_scale: if !diurnal && rng.chance(0.2) { rng.range(0.8, 0.97) } else { 1.0 },
            drift_addr_per_day,
            drift_ref: cfg.start_time,
            hist_avail,
            planted_diurnal: diurnal,
            perm_offset,
            perm_step,
        }
    }
}

/// Picks the /8 whose allocation date is nearest `target` within `rir`
/// (small keyed tie-jitter so one date doesn't absorb everything).
fn pick_prefix_near(registry: &AllocationRegistry, rir: Rir, target: YearMonth, key: u64) -> u8 {
    let mut rng = KeyedRng::from_parts(&[0x6e65_6172, key]);
    let jitter = rng.below(7) as i64 - 3;
    registry
        .entries()
        .iter()
        .filter(|e| e.rir == rir)
        .min_by_key(|e| (e.date.months_between(target) + jitter).abs())
        .map(|e| e.prefix)
        .unwrap_or(1)
}

impl World {
    /// Synthesizes a world from `cfg`. Deterministic in `cfg`, and
    /// equivalent to materializing every block of
    /// [`WorldSource::new(cfg)`](WorldSource::new).
    pub fn generate(cfg: WorldConfig) -> World {
        WorldSource::new(cfg).into_world()
    }

    /// The country of a block.
    pub fn country_of(&self, block: &BlockSpec) -> &'static Country {
        &COUNTRIES[block.country_idx]
    }

    /// Absolute time of round `r`.
    pub fn round_time(&self, round: u64) -> u64 {
        self.cfg.start_time + round * ROUND_SECONDS
    }

    /// Number of rounds in `days`.
    pub fn rounds_in_days(days: f64) -> usize {
        (days * 86_400.0 / ROUND_SECONDS as f64).round() as usize
    }

    /// Ground-truth availability series for one block over `rounds` rounds.
    pub fn true_availability_series(&self, block_idx: usize, rounds: usize) -> Vec<f64> {
        let b = &self.blocks[block_idx];
        (0..rounds as u64).map(|r| b.true_availability(self.round_time(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldConfig { num_blocks: 2_000, seed: 11, ..WorldConfig::default() })
    }

    #[test]
    fn shard_routing_partitions_the_id_space() {
        // Every id lands in exactly one shard, the mapping is stable, and
        // no shard is starved on a realistic id range.
        for shards in [1usize, 4, 8] {
            let mut per_shard = vec![0u64; shards];
            for id in 0..4_096u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "routing must be pure");
                per_shard[s] += 1;
            }
            for (s, &n) in per_shard.iter().enumerate() {
                assert!(n > 0, "shard {s}/{shards} got no blocks");
            }
        }
    }

    #[test]
    fn shard_block_ids_cover_the_world_disjointly() {
        let src = WorldSource::new(WorldConfig { num_blocks: 500, seed: 9, ..Default::default() });
        let shards = 4;
        let mut seen = vec![false; src.len()];
        for shard in 0..shards {
            for id in src.shard_block_ids(shard, shards) {
                assert!(!seen[id as usize], "block {id} owned by two shards");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "a block belongs to no shard");
    }

    #[test]
    fn shard_rounds_are_reproducible_and_round_major() {
        let cfg = WorldConfig { num_blocks: 300, seed: 7, ..Default::default() };
        let src = WorldSource::new(cfg.clone());
        let a: Vec<_> = src.shard_rounds(2, 4, 5).collect();
        // A second source built from the same config yields the identical
        // stream: the feed is derivable from (cfg, shard, shards) alone.
        let b: Vec<_> = WorldSource::new(cfg).shard_rounds(2, 4, 5).collect();
        assert_eq!(a, b, "shard stream must be reproducible");

        let ids: Vec<u64> = src.shard_block_ids(2, 4).collect();
        assert_eq!(a.len(), ids.len() * 5, "5 rounds for every owned block");
        for (i, &(id, round, avail)) in a.iter().enumerate() {
            assert_eq!(id, ids[i % ids.len()], "round-major block order");
            assert_eq!(round, (i / ids.len()) as u64);
            assert!((0.0..=1.0).contains(&avail), "availability {avail} out of range");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig { num_blocks: 100, seed: 5, ..Default::default() });
        let b = World::generate(WorldConfig { num_blocks: 100, seed: 5, ..Default::default() });
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.prefix8, y.prefix8);
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.planted_diurnal, y.planted_diurnal);
            assert_eq!(x.profile.ever_active(), y.profile.ever_active());
        }
    }

    #[test]
    fn source_shards_match_materialized_world_exactly() {
        let cfg = WorldConfig { num_blocks: 300, seed: 5, ..Default::default() };
        let world = World::generate(cfg.clone());
        let source = WorldSource::new(cfg);
        // Single blocks, in arbitrary order.
        for &id in &[299u64, 0, 137, 42] {
            assert_eq!(source.generate_block(id), world.blocks[id as usize]);
        }
        // A mid-world shard, generated independently.
        let mut shard = Vec::new();
        source.generate_into(100..200, &mut shard);
        assert_eq!(shard.as_slice(), &world.blocks[100..200]);
    }

    #[test]
    fn seeds_change_the_world() {
        let a = World::generate(WorldConfig { num_blocks: 200, seed: 1, ..Default::default() });
        let b = World::generate(WorldConfig { num_blocks: 200, seed: 2, ..Default::default() });
        let same = a
            .blocks
            .iter()
            .zip(&b.blocks)
            .filter(|(x, y)| x.planted_diurnal == y.planted_diurnal && x.asn == y.asn)
            .count();
        assert!(same < 150, "{same} of 200 identical across seeds");
    }

    #[test]
    fn planted_diurnal_fraction_matches_calibration() {
        let w = small_world();
        let diurnal = w.blocks.iter().filter(|b| b.planted_diurnal).count();
        let frac = diurnal as f64 / w.blocks.len() as f64;
        let planted = sleepwatch_geoecon::country::planted_world_diurnal_fraction();
        assert!((frac - planted).abs() < 0.03, "measured {frac}, planted {planted}");
    }

    #[test]
    fn us_blocks_rarely_diurnal_cn_often() {
        let w = World::generate(WorldConfig { num_blocks: 6_000, seed: 3, ..Default::default() });
        let frac_in = |code: &str| {
            let blocks: Vec<_> = w.blocks.iter().filter(|b| w.country_of(b).code == code).collect();
            let d = blocks.iter().filter(|b| b.planted_diurnal).count();
            (d as f64 / blocks.len().max(1) as f64, blocks.len())
        };
        let (us, us_n) = frac_in("US");
        let (cn, cn_n) = frac_in("CN");
        assert!(us_n > 500, "US should dominate block counts, got {us_n}");
        assert!(cn_n > 300, "CN second, got {cn_n}");
        assert!(us < 0.02, "US fraction {us}");
        assert!((cn - 0.498).abs() < 0.08, "CN fraction {cn}");
    }

    #[test]
    fn diurnal_blocks_allocated_later_on_average() {
        let w = small_world();
        let mean_month = |diurnal: bool| {
            let xs: Vec<i64> = w
                .blocks
                .iter()
                .filter(|b| b.planted_diurnal == diurnal)
                .map(|b| b.alloc_date.months_since_epoch())
                .collect();
            xs.iter().sum::<i64>() as f64 / xs.len() as f64
        };
        assert!(
            mean_month(true) > mean_month(false) + 12.0,
            "diurnal blocks must sit in newer space: {} vs {}",
            mean_month(true),
            mean_month(false)
        );
    }

    #[test]
    fn prefixes_respect_rir_of_country() {
        let w = small_world();
        for b in w.blocks.iter().take(300) {
            let c = w.country_of(b);
            let rir = Rir::for_region(c.region);
            assert_eq!(w.registry.get(b.prefix8).unwrap().rir, rir, "block {}", b.id);
        }
    }

    #[test]
    fn dynamic_links_skew_diurnal() {
        let w = small_world();
        let frac_diurnal = |class: LinkClass| {
            let with: Vec<_> = w.blocks.iter().filter(|b| b.links.contains(&class)).collect();
            with.iter().filter(|b| b.planted_diurnal).count() as f64 / with.len().max(1) as f64
        };
        assert!(frac_diurnal(LinkClass::Dynamic) > frac_diurnal(LinkClass::Static));
        assert!(frac_diurnal(LinkClass::Dynamic) > frac_diurnal(LinkClass::Dialup));
    }

    #[test]
    fn outage_fraction_respected() {
        let w = small_world();
        let with = w.blocks.iter().filter(|b| b.outage.is_some()).count();
        let frac = with as f64 / w.blocks.len() as f64;
        assert!((frac - 0.04).abs() < 0.015, "outage fraction {frac}");
        for b in w.blocks.iter().filter(|b| b.outage.is_some()) {
            let (s, e) = b.outage.unwrap();
            assert!(s >= w.cfg.start_time);
            assert!(e > s);
        }
    }

    #[test]
    fn country_filter_restricts_world() {
        let w = World::generate(WorldConfig {
            num_blocks: 300,
            seed: 9,
            country_filter: Some(vec!["JP", "BR"]),
            ..Default::default()
        });
        for b in &w.blocks {
            let code = w.country_of(b).code;
            assert!(code == "JP" || code == "BR", "unexpected {code}");
        }
    }

    #[test]
    fn propensity_scale_shifts_fraction() {
        let base =
            World::generate(WorldConfig { num_blocks: 3_000, seed: 4, ..Default::default() });
        let scaled = World::generate(WorldConfig {
            num_blocks: 3_000,
            seed: 4,
            propensity_scale: 0.5,
            ..Default::default()
        });
        let f = |w: &World| {
            w.blocks.iter().filter(|b| b.planted_diurnal).count() as f64 / w.blocks.len() as f64
        };
        assert!(f(&scaled) < 0.7 * f(&base), "{} vs {}", f(&scaled), f(&base));
    }

    #[test]
    fn as_records_cluster_by_isp() {
        let w = small_world();
        assert!(!w.as_records.is_empty());
        // Every block's ASN exists in the record set.
        let asns: std::collections::HashSet<u32> = w.as_records.iter().map(|r| r.asn).collect();
        for b in w.blocks.iter().take(200) {
            assert!(asns.contains(&b.asn));
        }
    }

    #[test]
    fn rounds_helper() {
        assert_eq!(World::rounds_in_days(35.0), 4582);
        assert_eq!(World::rounds_in_days(14.0), 1833);
    }

    #[test]
    fn true_series_reflects_diurnality() {
        let w = small_world();
        let idx = w.blocks.iter().position(|b| b.planted_diurnal).expect("some diurnal block");
        let series = w.true_availability_series(idx, 131 * 3);
        let hi = series.iter().cloned().fold(0.0, f64::max);
        let lo = series.iter().cloned().fold(1.0, f64::min);
        assert!(hi - lo > 0.2, "diurnal block should swing: {lo}..{hi}");
    }
}
