//! /24 blocks: compact specs that expand, on demand, into 256 per-address
//! behaviours.
//!
//! A [`BlockSpec`] does not store 256 [`AddressBehavior`]s — it stores a
//! [`BlockProfile`] (how many stable / diurnal / inactive addresses, and
//! their parameters) plus a per-block address permutation, and derives any
//! address's behaviour in O(1). That keeps a multi-hundred-thousand-block
//! world in a few tens of megabytes while remaining bit-for-bit
//! reproducible.

use crate::behavior::{AddrKey, AddressBehavior};
use sleepwatch_geoecon::allocation::YearMonth;
use sleepwatch_geoecon::rng::KeyedRng;

/// Link technology classes a block can carry (the generator's side of
/// §2.3.3; the measurement side infers these back from reverse DNS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LinkClass {
    Static,
    Dynamic,
    Dhcp,
    Ppp,
    Dsl,
    Dialup,
    Cable,
    Server,
    Residential,
}

impl LinkClass {
    /// All classes.
    pub const ALL: [LinkClass; 9] = [
        LinkClass::Static,
        LinkClass::Dynamic,
        LinkClass::Dhcp,
        LinkClass::Ppp,
        LinkClass::Dsl,
        LinkClass::Dialup,
        LinkClass::Cable,
        LinkClass::Server,
        LinkClass::Residential,
    ];

    /// The keyword this class plants into reverse DNS names — the same
    /// token §2.3.3's classifier searches for.
    pub fn keyword(self) -> &'static str {
        match self {
            LinkClass::Static => "sta",
            LinkClass::Dynamic => "dyn",
            LinkClass::Dhcp => "dhcp",
            LinkClass::Ppp => "ppp",
            LinkClass::Dsl => "dsl",
            LinkClass::Dialup => "dial",
            LinkClass::Cable => "cable",
            LinkClass::Server => "srv",
            LinkClass::Residential => "res",
        }
    }
}

/// What one ICMP echo request elicited. Trinocular's belief update
/// distinguishes all three: a reply is strong up-evidence, a timeout is
/// weak down-evidence, and an ICMP *unreachable* error from an upstream
/// router is strong down-evidence (the router itself says the network is
/// gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// Echo reply received.
    Reply,
    /// No answer before the timeout.
    Timeout,
    /// ICMP destination/network unreachable from an intermediate router.
    Unreachable,
}

impl ProbeOutcome {
    /// `true` for [`ProbeOutcome::Reply`].
    pub fn is_positive(self) -> bool {
        self == ProbeOutcome::Reply
    }
}

/// Population parameters of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockProfile {
    /// Addresses that are up around the clock.
    pub n_stable: u16,
    /// Addresses with daily on/off cycles.
    pub n_diurnal: u16,
    /// Response probability of stable addresses.
    pub stable_avail: f64,
    /// Response probability of diurnal addresses while up.
    pub diurnal_avail: f64,
    /// Block-level mean daily onset, hours local time.
    pub onset_hours: f64,
    /// Per-address onset spread: address onsets are uniform in
    /// `[onset, onset + onset_spread)` (the paper's `Φ`).
    pub onset_spread: f64,
    /// Block-level nominal up-time, hours.
    pub duration_hours: f64,
    /// Per-address fixed duration spread (uniform, ± half of this).
    pub duration_spread: f64,
    /// Per-day onset jitter `σ_s`, hours.
    pub sigma_start: f64,
    /// Per-day duration jitter `σ_d`, hours.
    pub sigma_duration: f64,
    /// Local-time offset from UTC, hours.
    pub utc_offset_hours: f64,
}

impl BlockProfile {
    /// Number of ever-active addresses `|E(b)|`.
    pub fn ever_active(&self) -> u16 {
        self.n_stable + self.n_diurnal
    }

    /// A profile with only always-on addresses.
    pub fn always_on(n: u16, avail: f64) -> Self {
        BlockProfile {
            n_stable: n,
            n_diurnal: 0,
            stable_avail: avail,
            diurnal_avail: 0.0,
            onset_hours: 0.0,
            onset_spread: 0.0,
            duration_hours: 0.0,
            duration_spread: 0.0,
            sigma_start: 0.0,
            sigma_duration: 0.0,
            utc_offset_hours: 0.0,
        }
    }
}

/// Per-address parameter-jitter streams.
const STREAM_ADDR_ONSET: u64 = 0x6164_6f6e; // "adon"
const STREAM_ADDR_DUR: u64 = 0x6164_6475; // "addu"
const STREAM_ADDR_AVAIL: u64 = 0x6164_6176; // "adav"
const STREAM_PROBE: u64 = 0x7072_6f62; // "prob"
const STREAM_UNREACH: u64 = 0x756e_7263; // "unrc"
const STREAM_LEASE: u64 = 0x6c65_6173; // "leas"

/// Parameters of a DHCP-lease sweep (see [`BlockSpec::lease`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseParams {
    /// Sweep period `p`, hours.
    pub period_hours: f64,
    /// Fraction of each period this block's addresses are allocated.
    pub duty: f64,
}

/// `true` on Saturdays and Sundays UTC (the unix epoch was a Thursday).
pub fn is_weekend(time: u64) -> bool {
    let dow = (time / 86_400 + 4) % 7; // 0 = Sunday
    dow == 0 || dow == 6
}

/// Per-address availability jitter (±0.08). A base of exactly 1.0 means
/// "always responding" — the §3.2.2 controlled blocks depend on that — so
/// it is passed through unjittered.
fn jittered_avail(base: f64, block: &BlockSpec, addr: u8) -> f64 {
    if base >= 1.0 {
        return 1.0;
    }
    let mut rng = KeyedRng::from_parts(&[block.seed, STREAM_ADDR_AVAIL, block.id, addr as u64]);
    (base + rng.range(-0.08, 0.08)).clamp(0.02, 1.0)
}

/// One /24 block of the synthetic world.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Block index, unique in the world.
    pub id: u64,
    /// World seed (behaviour streams are keyed off it).
    pub seed: u64,
    /// Index into the country table.
    pub country_idx: usize,
    /// Origin AS.
    pub asn: u32,
    /// The /8 this block lives in.
    pub prefix8: u8,
    /// Allocation date of that /8.
    pub alloc_date: YearMonth,
    /// True longitude of the block's users.
    pub lon: f64,
    /// True latitude.
    pub lat: f64,
    /// Link technologies present (1–2 classes).
    pub links: Vec<LinkClass>,
    /// Address-population parameters.
    pub profile: BlockProfile,
    /// Optional outage: no address responds in `[start, end)` (seconds).
    pub outage: Option<(u64, u64)>,
    /// When set, the block's cycling addresses follow a DHCP-lease sweep of
    /// this period instead of human daily schedules (§4's non-24-hour
    /// periodicity). The diurnal slot population cycles together, phased by
    /// the block's position in the larger allocation pool.
    pub lease: Option<LeaseParams>,
    /// Weekend modulation: active addresses respond with probability scaled
    /// by this factor on Saturdays and Sundays (UTC). 1.0 = no weekend
    /// effect; enterprise networks sit nearer 0.6. Introduces the 7-day
    /// periodicity real blocks show, which the daily classifier must
    /// tolerate as a non-harmonic competitor.
    pub weekend_scale: f64,
    /// Slow availability drift in *addresses per day* (may be negative):
    /// every active address's response probability shifts by
    /// `drift/256` per day relative to `drift_ref`. Real blocks renumber
    /// and grow — the paper found only 80.3 % of survey blocks drift less
    /// than one address/day.
    pub drift_addr_per_day: f64,
    /// Reference time for the drift (usually the measurement start).
    pub drift_ref: u64,
    /// Stale "historical" availability estimate handed to the estimators as
    /// their starting point (deliberately imperfect, per §2.1.1).
    pub hist_avail: f64,
    /// Ground-truth label: was this block generated as diurnal? The
    /// measurement pipeline must never read this; experiments use it to
    /// score detection accuracy.
    pub planted_diurnal: bool,
    /// Offset of the slot→address permutation.
    pub perm_offset: u8,
    /// Odd step of the slot→address permutation.
    pub perm_step: u8,
}

impl BlockSpec {
    /// Creates a block with an identity address permutation and neutral
    /// metadata — enough for estimator / probing tests that don't need a
    /// full world.
    pub fn bare(id: u64, seed: u64, profile: BlockProfile) -> Self {
        BlockSpec {
            id,
            seed,
            country_idx: 0,
            asn: 0,
            prefix8: 1,
            alloc_date: YearMonth::new(1990, 1),
            lon: 0.0,
            lat: 0.0,
            links: Vec::new(),
            profile,
            outage: None,
            lease: None,
            weekend_scale: 1.0,
            drift_addr_per_day: 0.0,
            drift_ref: 0,
            hist_avail: 0.5,
            planted_diurnal: profile.n_diurnal > profile.n_stable,
            perm_offset: 0,
            perm_step: 1,
        }
    }

    /// Maps a logical slot (0..255; stable first, then diurnal, then
    /// inactive) to its physical address.
    pub fn slot_to_addr(&self, slot: u8) -> u8 {
        self.perm_offset.wrapping_add(slot.wrapping_mul(self.perm_step))
    }

    /// Inverse of [`BlockSpec::slot_to_addr`].
    pub fn addr_to_slot(&self, addr: u8) -> u8 {
        // perm_step is odd, hence invertible mod 256.
        let inv = Self::odd_inverse(self.perm_step);
        addr.wrapping_sub(self.perm_offset).wrapping_mul(inv)
    }

    /// Multiplicative inverse of an odd byte modulo 256 (Newton iteration).
    fn odd_inverse(step: u8) -> u8 {
        debug_assert!(step % 2 == 1, "permutation step must be odd");
        let mut inv: u8 = step; // correct mod 2³
        for _ in 0..3 {
            inv = inv.wrapping_mul(2u8.wrapping_sub(step.wrapping_mul(inv)));
        }
        inv
    }

    /// The behaviour of a physical address.
    pub fn behavior_of(&self, addr: u8) -> AddressBehavior {
        let slot = self.addr_to_slot(addr) as u16;
        let p = &self.profile;
        if slot < p.n_stable {
            AddressBehavior::On { avail: jittered_avail(p.stable_avail, self, addr) }
        } else if slot < p.n_stable + p.n_diurnal {
            if let Some(lease) = self.lease {
                // Lease sweep: the whole pool segment cycles together; the
                // block's phase in the regional pool is keyed, with a small
                // sequential skew across its addresses (sequential
                // hand-out).
                let mut ph = KeyedRng::from_parts(&[self.seed, STREAM_LEASE, self.id]);
                let base_phase = ph.next_f64();
                let skew = (slot - p.n_stable) as f64 / 256.0 * 0.1;
                return AddressBehavior::Periodic {
                    period_hours: lease.period_hours,
                    phase_frac: (base_phase + skew).fract(),
                    duty: lease.duty,
                    avail: jittered_avail(p.diurnal_avail, self, addr),
                };
            }
            let mut on =
                KeyedRng::from_parts(&[self.seed, STREAM_ADDR_ONSET, self.id, addr as u64]);
            let onset = p.onset_hours + on.next_f64() * p.onset_spread;
            let mut du = KeyedRng::from_parts(&[self.seed, STREAM_ADDR_DUR, self.id, addr as u64]);
            let duration = (p.duration_hours
                + du.range(-p.duration_spread / 2.0, p.duration_spread / 2.0))
            .clamp(0.5, 24.0);
            let avail = jittered_avail(p.diurnal_avail, self, addr);
            AddressBehavior::Diurnal {
                onset_hours: onset,
                duration_hours: duration,
                sigma_start: p.sigma_start,
                sigma_duration: p.sigma_duration,
                avail,
                utc_offset_hours: p.utc_offset_hours,
            }
        } else {
            AddressBehavior::Inactive
        }
    }

    /// Physical addresses of the ever-active set `E(b)`, in slot order.
    pub fn ever_active_addrs(&self) -> Vec<u8> {
        (0..self.profile.ever_active().min(256)).map(|s| self.slot_to_addr(s as u8)).collect()
    }

    /// `|E(b)|`.
    pub fn ever_active_count(&self) -> usize {
        self.profile.ever_active().min(256) as usize
    }

    /// `true` while the block is inside its injected outage window.
    pub fn in_outage(&self, time: u64) -> bool {
        matches!(self.outage, Some((s, e)) if time >= s && time < e)
    }

    /// Drift-adjusted probability that `addr` answers a probe at `time`
    /// (0 during outages).
    pub fn response_probability(&self, addr: u8, time: u64) -> f64 {
        if self.in_outage(time) {
            return 0.0;
        }
        let key = AddrKey { seed: self.seed, block: self.id, addr };
        let mut p = self.behavior_of(addr).response_probability(key, time);
        if p <= 0.0 {
            return 0.0;
        }
        if self.weekend_scale != 1.0 && is_weekend(time) {
            p *= self.weekend_scale;
        }
        if self.drift_addr_per_day != 0.0 {
            let days = (time as f64 - self.drift_ref as f64) / 86_400.0;
            p += self.drift_addr_per_day / 256.0 * days;
        }
        p.clamp(0.0, 1.0)
    }

    /// Samples one probe of `addr` at `time`. Deterministic in
    /// `(block, addr, time)`, so full runs replay exactly.
    pub fn probe(&self, addr: u8, time: u64) -> bool {
        let p = self.response_probability(addr, time);
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            sleepwatch_geoecon::rng::uniform_at(&[
                self.seed,
                STREAM_PROBE,
                self.id,
                addr as u64,
                time,
            ]) < p
        }
    }

    /// Fraction of non-answers during a routed outage that come back as
    /// explicit ICMP unreachable errors (the rest silently time out).
    const OUTAGE_UNREACHABLE_RATE: f64 = 0.7;

    /// Samples one probe with full ICMP semantics: replies, silent
    /// timeouts, and — during routed outages — explicit unreachable errors
    /// from upstream routers.
    pub fn probe_outcome(&self, addr: u8, time: u64) -> ProbeOutcome {
        if self.in_outage(time) {
            let unreachable = sleepwatch_geoecon::rng::chance_at(
                Self::OUTAGE_UNREACHABLE_RATE,
                &[self.seed, STREAM_UNREACH, self.id, addr as u64, time],
            );
            return if unreachable { ProbeOutcome::Unreachable } else { ProbeOutcome::Timeout };
        }
        if self.probe(addr, time) {
            ProbeOutcome::Reply
        } else {
            // A live block's unanswering addresses just drop the probe;
            // routers don't generate errors for hosts that are merely off.
            ProbeOutcome::Timeout
        }
    }

    /// Ground-truth availability at `time`: the mean response probability
    /// over `E(b)` (the quantity the paper measures from full surveys).
    pub fn true_availability(&self, time: u64) -> f64 {
        let e = self.ever_active_count();
        if e == 0 || self.in_outage(time) {
            return 0.0;
        }
        let mut sum = 0.0;
        for slot in 0..e {
            let addr = self.slot_to_addr(slot as u8);
            sum += self.response_probability(addr, time);
        }
        sum / e as f64
    }

    /// Number of addresses currently up.
    pub fn active_count(&self, time: u64) -> usize {
        if self.in_outage(time) {
            return 0;
        }
        (0..self.ever_active_count())
            .filter(|&slot| {
                let addr = self.slot_to_addr(slot as u8);
                let key = AddrKey { seed: self.seed, block: self.id, addr };
                self.behavior_of(addr).is_up(key, time)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_profile() -> BlockProfile {
        BlockProfile {
            n_stable: 50,
            n_diurnal: 100,
            stable_avail: 0.9,
            diurnal_avail: 0.9,
            onset_hours: 8.0,
            onset_spread: 2.0,
            duration_hours: 8.0,
            duration_spread: 2.0,
            sigma_start: 0.5,
            sigma_duration: 0.5,
            utc_offset_hours: 0.0,
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut b = BlockSpec::bare(1, 2, BlockProfile::always_on(100, 0.8));
        b.perm_offset = 37;
        b.perm_step = 91; // odd
        let mut seen = [false; 256];
        for slot in 0..=255u8 {
            let a = b.slot_to_addr(slot);
            assert!(!seen[a as usize], "collision at {a}");
            seen[a as usize] = true;
            assert_eq!(b.addr_to_slot(a), slot, "roundtrip failed for slot {slot}");
        }
    }

    #[test]
    fn odd_inverse_is_correct_for_all_odd_bytes() {
        for step in (1..=255u8).step_by(2) {
            let inv = BlockSpec::odd_inverse(step);
            assert_eq!(step.wrapping_mul(inv), 1, "step {step}");
        }
    }

    #[test]
    fn slot_classes_partition_addresses() {
        let mut b = BlockSpec::bare(7, 3, diurnal_profile());
        b.perm_offset = 11;
        b.perm_step = 33;
        let mut stable = 0;
        let mut diurnal = 0;
        let mut inactive = 0;
        for addr in 0..=255u8 {
            match b.behavior_of(addr) {
                AddressBehavior::On { .. } => stable += 1,
                AddressBehavior::Diurnal { .. } | AddressBehavior::Periodic { .. } => diurnal += 1,
                AddressBehavior::Inactive => inactive += 1,
            }
        }
        assert_eq!(stable, 50);
        assert_eq!(diurnal, 100);
        assert_eq!(inactive, 106);
    }

    #[test]
    fn ever_active_set_is_consistent() {
        let b = BlockSpec::bare(9, 4, diurnal_profile());
        let e = b.ever_active_addrs();
        assert_eq!(e.len(), 150);
        for &a in &e {
            assert!(b.behavior_of(a).is_ever_active());
        }
    }

    #[test]
    fn true_availability_of_always_on_block() {
        let b = BlockSpec::bare(1, 5, BlockProfile::always_on(64, 0.7));
        let a = b.true_availability(12_345);
        // Per-address jitter is ±0.08 uniform; the mean should be close.
        assert!((a - 0.7).abs() < 0.05, "A = {a}");
        // Constant over time.
        assert_eq!(a, b.true_availability(999_999));
    }

    #[test]
    fn diurnal_block_availability_swings_daily() {
        let mut p = diurnal_profile();
        p.sigma_start = 0.0;
        p.sigma_duration = 0.0;
        p.onset_spread = 0.5;
        let b = BlockSpec::bare(2, 6, p);
        let day_a = b.true_availability(12 * 3_600); // mid-window
        let night_a = b.true_availability(22 * 3_600);
        assert!(day_a > 0.8, "day {day_a}");
        // At night only the 50 stable of 150 respond: ~0.3·0.9
        assert!((night_a - 50.0 / 150.0 * 0.9).abs() < 0.05, "night {night_a}");
    }

    #[test]
    fn outage_silences_block() {
        let mut b = BlockSpec::bare(3, 7, BlockProfile::always_on(100, 1.0));
        b.outage = Some((1_000, 2_000));
        assert!(b.probe(b.slot_to_addr(0), 500));
        assert!(!b.probe(b.slot_to_addr(0), 1_500));
        assert_eq!(b.true_availability(1_500), 0.0);
        assert_eq!(b.active_count(1_500), 0);
        assert!(b.true_availability(2_000) > 0.5);
    }

    #[test]
    fn active_count_matches_profile_midday() {
        let mut p = diurnal_profile();
        p.onset_spread = 0.0;
        p.sigma_start = 0.0;
        p.sigma_duration = 0.0;
        p.duration_spread = 0.0;
        let b = BlockSpec::bare(4, 8, p);
        // At 12:00 every diurnal address (08–16h) plus all stable are up.
        assert_eq!(b.active_count(12 * 3_600), 150);
        // At 20:00 only stable.
        assert_eq!(b.active_count(20 * 3_600), 50);
    }

    #[test]
    fn per_address_parameters_vary_but_deterministically() {
        let b = BlockSpec::bare(5, 9, diurnal_profile());
        let addrs = b.ever_active_addrs();
        let d1 = b.behavior_of(addrs[60]);
        let d2 = b.behavior_of(addrs[61]);
        assert_ne!(d1, d2, "addresses should differ in jittered parameters");
        assert_eq!(d1, b.behavior_of(addrs[60]), "derivation is deterministic");
    }

    #[test]
    fn lease_blocks_cycle_at_their_period() {
        let mut b = BlockSpec::bare(12, 44, diurnal_profile());
        b.lease = Some(LeaseParams { period_hours: 9.0, duty: 0.5 });
        // Availability oscillates with period 9 h, not 24 h: samples one
        // lease-period apart match far better than samples 12 h apart.
        let series: Vec<f64> = (0..131 * 14).map(|r| b.true_availability(r * 660)).collect();
        let lag = |hours: f64| -> f64 {
            let k = (hours * 3_600.0 / 660.0).round() as usize;
            let n = series.len() - k;
            let mut d = 0.0;
            for i in 0..n {
                d += (series[i] - series[i + k]).abs();
            }
            d / n as f64
        };
        assert!(
            lag(9.0) < lag(4.5) * 0.5,
            "period self-similarity: lag9 {} vs lag4.5 {}",
            lag(9.0),
            lag(4.5)
        );
    }

    #[test]
    fn weekend_scale_dampens_weekends_only() {
        let mut b = BlockSpec::bare(11, 3, BlockProfile::always_on(100, 1.0));
        b.weekend_scale = 0.5;
        // 1970-01-01 was a Thursday: day 2 = Saturday, day 3 = Sunday.
        let thursday = 12 * 3_600;
        let saturday = 2 * 86_400 + 12 * 3_600;
        let sunday = 3 * 86_400 + 12 * 3_600;
        let monday = 4 * 86_400 + 12 * 3_600;
        assert!((b.true_availability(thursday) - 1.0).abs() < 1e-9);
        assert!((b.true_availability(saturday) - 0.5).abs() < 1e-9);
        assert!((b.true_availability(sunday) - 0.5).abs() < 1e-9);
        assert!((b.true_availability(monday) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weekend_helper_days() {
        assert!(!is_weekend(0)); // Thursday
        assert!(!is_weekend(86_400)); // Friday
        assert!(is_weekend(2 * 86_400)); // Saturday
        assert!(is_weekend(3 * 86_400)); // Sunday
        assert!(!is_weekend(4 * 86_400)); // Monday
    }

    #[test]
    fn bare_block_planted_flag_follows_majority() {
        assert!(!BlockSpec::bare(1, 1, BlockProfile::always_on(100, 0.5)).planted_diurnal);
        assert!(BlockSpec::bare(1, 1, diurnal_profile()).planted_diurnal);
    }
}
