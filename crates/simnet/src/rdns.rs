//! Reverse-DNS synthesis (generator side of §2.3.3).
//!
//! Real ISPs encode link technology in PTR records
//! (`dhcp-dialup-001.example.com`); the paper's classifier string-matches
//! 16 keywords against those names. This module produces names with the
//! same structure for the synthetic world: per-block templates derived from
//! the block's [`crate::block::LinkClass`]es, a realistic share of addresses with no PTR
//! at all, and occasional multi-keyword names.

use crate::block::BlockSpec;
use sleepwatch_geoecon::country::COUNTRIES;
use sleepwatch_geoecon::rng::KeyedRng;

/// Stream tag for name-synthesis draws.
const STREAM_RDNS: u64 = 0x7264_6e73; // "rdns"

/// Fraction of blocks whose ISP publishes no PTR records at all. The paper
/// classifies 46.3 % of blocks (22.4 % after keyword filtering); tuning
/// this reproduces that coverage.
const NO_PTR_BLOCK_FRACTION: f64 = 0.45;

/// Within a named block, fraction of individual addresses lacking a PTR.
const NO_PTR_ADDR_FRACTION: f64 = 0.15;

/// Generates the PTR name for one address of a block, or `None` where no
/// record exists. Deterministic in `(block, addr)`.
pub fn ptr_name(block: &BlockSpec, addr: u8) -> Option<String> {
    let mut blk = KeyedRng::from_parts(&[block.seed, STREAM_RDNS, block.id]);
    if blk.chance(NO_PTR_BLOCK_FRACTION) || block.links.is_empty() {
        return None;
    }
    // Per-block stable choices: domain style and whether names carry one or
    // both link keywords.
    let country = COUNTRIES[block.country_idx].code.to_ascii_lowercase();
    let style = blk.below(3);
    let both_keywords = block.links.len() > 1 && blk.chance(0.6);

    let mut ar = KeyedRng::from_parts(&[block.seed, STREAM_RDNS, block.id, addr as u64]);
    if ar.chance(NO_PTR_ADDR_FRACTION) {
        return None;
    }

    let kw1 = block.links[0].keyword();
    let tech = if both_keywords {
        format!("{}-{}", kw1, block.links[1].keyword())
    } else {
        kw1.to_string()
    };
    let host = match style {
        0 => format!("{tech}-{addr:03}"),
        1 => format!("{tech}{}-{addr}", block.id % 100),
        _ => format!("host{addr}.{tech}"),
    };
    Some(format!("{host}.isp{}.example.{country}", block.asn))
}

/// PTR names for the whole /24 (index = last octet).
pub fn ptr_names(block: &BlockSpec) -> Vec<Option<String>> {
    (0..=255u8).map(|a| ptr_name(block, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockProfile, LinkClass};

    fn block_with_links(id: u64, links: Vec<LinkClass>) -> BlockSpec {
        let mut b = BlockSpec::bare(id, 42, BlockProfile::always_on(100, 0.8));
        b.links = links;
        b.asn = 1234;
        b
    }

    #[test]
    fn names_contain_link_keyword() {
        // Scan blocks until one is named (55 % are).
        let mut found = false;
        for id in 0..40 {
            let b = block_with_links(id, vec![LinkClass::Dsl]);
            let names = ptr_names(&b);
            if let Some(name) = names.iter().flatten().next() {
                assert!(name.contains("dsl"), "{name}");
                found = true;
                break;
            }
        }
        assert!(found, "no named block in 40 tries");
    }

    #[test]
    fn deterministic_names() {
        let b = block_with_links(3, vec![LinkClass::Cable]);
        assert_eq!(ptr_name(&b, 17), ptr_name(&b, 17));
        assert_eq!(ptr_names(&b), ptr_names(&b));
    }

    #[test]
    fn some_blocks_entirely_unnamed() {
        let mut unnamed = 0;
        let n = 200;
        for id in 0..n {
            let b = block_with_links(id, vec![LinkClass::Dynamic]);
            if ptr_names(&b).iter().all(Option::is_none) {
                unnamed += 1;
            }
        }
        let frac = unnamed as f64 / n as f64;
        assert!((frac - NO_PTR_BLOCK_FRACTION).abs() < 0.12, "unnamed fraction {frac}");
    }

    #[test]
    fn named_blocks_have_gaps() {
        for id in 0..60 {
            let b = block_with_links(id, vec![LinkClass::Dhcp]);
            let names = ptr_names(&b);
            let named = names.iter().flatten().count();
            if named > 0 {
                assert!(named < 256, "even named blocks should have PTR gaps");
                assert!(named > 150, "most addresses named, got {named}");
                return;
            }
        }
        panic!("no named block found");
    }

    #[test]
    fn dual_technology_blocks_can_emit_both_keywords() {
        let mut saw_both = false;
        for id in 0..200 {
            let b = block_with_links(id, vec![LinkClass::Dhcp, LinkClass::Dialup]);
            for name in ptr_names(&b).iter().flatten() {
                if name.contains("dhcp") && name.contains("dial") {
                    saw_both = true;
                }
            }
        }
        assert!(saw_both, "expected some dhcp-dial names like the paper's example");
    }

    #[test]
    fn linkless_block_is_unnamed() {
        let b = block_with_links(1, vec![]);
        assert!(ptr_names(&b).iter().all(Option::is_none));
    }

    #[test]
    fn names_are_valid_hostnames() {
        for id in 0..30 {
            let b = block_with_links(id, vec![LinkClass::Ppp]);
            for name in ptr_names(&b).iter().flatten() {
                assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'));
                assert!(!name.starts_with('.') && !name.ends_with('.'));
            }
        }
    }
}
