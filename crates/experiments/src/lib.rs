//! Regenerates every table and figure of *"When the Internet Sleeps"*
//! (IMC 2014) from the sleepwatch pipeline.
//!
//! Each experiment is a function from a shared [`Context`] to an
//! [`ExperimentOutput`] (rendered report + headline metrics + CSV). The
//! `experiments` binary dispatches on experiment ids; EXPERIMENTS.md
//! records paper-vs-measured values per id.
//!
//! | id | paper content |
//! |---|---|
//! | `fig1`–`fig3` | sample blocks: estimates vs ground truth |
//! | `fig4`/`fig5` | Âs / Âo vs true A over a full survey |
//! | `fig6` | 35-day spectrum of the diurnal sample block |
//! | `fig7`–`fig9` | controlled-simulation detection accuracy |
//! | `fig10` | strongest-frequency CDF (incl. restart artifact) |
//! | `fig11` | long-term diurnal fraction 2009–2013 |
//! | `fig12`/`fig13` | world maps: observable / % diurnal |
//! | `fig14` | phase vs longitude |
//! | `fig15` | diurnal fraction vs allocation month |
//! | `fig16` | diurnal fraction vs per-capita GDP |
//! | `fig17` | diurnal fraction per link keyword |
//! | `table1` | diurnal-detection confusion matrix |
//! | `table2` | cross-site agreement |
//! | `table3`/`table4` | country / region league tables |
//! | `table5` | ANOVA factor screening |
//! | `usc` | §3.2.4 campus ground-truth study |
//! | `ext-*` | extensions: organizations, Internet sizing, time-of-day, outage scoring |
//! | `ablate-*` | design-choice ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod controlled;
pub mod extensions;
pub mod plot;
pub mod samples;
pub mod validation;
pub mod worldexp;

pub use common::{Context, DatasetFormat, ExperimentOutput, Options};

/// All experiment ids, in run order.
pub const ALL_IDS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "usc",
    "ext-orgs",
    "ext-size",
    "ext-timeofday",
    "ext-outages",
    "ext-dataset",
    "ext-weekend",
    "ext-lease",
    "ablate-ewma",
    "ablate-strict",
    "ablate-probes",
    "ablate-gaps",
    "ablate-acf",
    "ablate-trim",
];

/// Runs one experiment by id.
pub fn run(id: &str, ctx: &Context) -> Option<ExperimentOutput> {
    Some(match id {
        "fig1" => samples::fig1(ctx),
        "fig2" => samples::fig2(ctx),
        "fig3" => samples::fig3(ctx),
        "fig4" => validation::fig4(ctx),
        "fig5" => validation::fig5(ctx),
        "fig6" => samples::fig6(ctx),
        "fig7" => controlled::fig7(ctx),
        "fig8" => controlled::fig8(ctx),
        "fig9" => controlled::fig9(ctx),
        "fig10" => worldexp::fig10(ctx),
        "fig11" => worldexp::fig11(ctx),
        "fig12" => worldexp::fig12(ctx),
        "fig13" => worldexp::fig13(ctx),
        "fig14" => worldexp::fig14(ctx),
        "fig15" => worldexp::fig15(ctx),
        "fig16" => worldexp::fig16(ctx),
        "fig17" => worldexp::fig17(ctx),
        "table1" => validation::table1(ctx),
        "table2" => worldexp::table2(ctx),
        "table3" => worldexp::table3(ctx),
        "table4" => worldexp::table4(ctx),
        "table5" => worldexp::table5(ctx),
        "usc" => extensions::usc(ctx),
        "ext-orgs" => extensions::ext_orgs(ctx),
        "ext-size" => extensions::ext_size(ctx),
        "ext-timeofday" => extensions::ext_timeofday(ctx),
        "ext-outages" => extensions::ext_outages(ctx),
        "ext-dataset" => extensions::ext_dataset(ctx),
        "ext-weekend" => extensions::ext_weekend(ctx),
        "ext-lease" => extensions::ext_lease(ctx),
        "ablate-ewma" => ablations::ablate_ewma(ctx),
        "ablate-strict" => controlled::ablate_strict(ctx),
        "ablate-probes" => ablations::ablate_probes(ctx),
        "ablate-gaps" => ablations::ablate_gaps(ctx),
        "ablate-acf" => ablations::ablate_acf(ctx),
        "ablate-trim" => ablations::ablate_trim(ctx),
        _ => return None,
    })
}
