//! Terminal plotting: line charts and sparklines for experiment reports.
//!
//! The paper's figures are timeseries and curves; rendering them directly
//! in the report (instead of only as CSV) makes `experiments fig3` show
//! the 14 daily bumps the caption promises.

/// Renders `series` as a `width × height` ASCII line chart with a y-axis.
/// Values are averaged into `width` columns; each column paints one cell.
pub fn line_chart(series: &[f64], width: usize, height: usize) -> String {
    if series.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    let cols = downsample(series, width);
    let lo = cols.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = cols.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    let mut rows = vec![vec![b' '; cols.len()]; height];
    for (x, &v) in cols.iter().enumerate() {
        let level = ((v - lo) / span * (height as f64 - 1.0)).round() as usize;
        rows[height - 1 - level][x] = b'*';
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("{hi:6.2} |")
        } else if i == height - 1 {
            format!("{lo:6.2} |")
        } else {
            "       |".to_string()
        };
        out.push_str(&label);
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!("       +{}\n", "-".repeat(cols.len())));
    out
}

/// One-line unicode sparkline (8 levels).
pub fn sparkline(series: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    series
        .iter()
        .map(|&v| {
            let idx = ((v - lo) / span * 7.0).round() as usize;
            TICKS[idx.min(7)]
        })
        .collect()
}

/// Averages `series` into at most `width` buckets.
pub fn downsample(series: &[f64], width: usize) -> Vec<f64> {
    let n = series.len();
    if n <= width {
        return series.to_vec();
    }
    (0..width)
        .map(|i| {
            let a = i * n / width;
            let b = ((i + 1) * n / width).max(a + 1);
            series[a..b].iter().sum::<f64>() / (b - a) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_dimensions() {
        let series: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).sin()).collect();
        let chart = line_chart(&series, 60, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 11, "height rows + axis");
        for line in &lines[..10] {
            assert!(line.len() <= 8 + 60);
            assert!(line.contains('|'));
        }
        assert!(lines[10].contains('+'));
    }

    #[test]
    fn chart_shows_extremes_on_axis() {
        let series = vec![0.0, 0.5, 1.0, 0.5, 0.0];
        let chart = line_chart(&series, 5, 5);
        assert!(chart.contains("1.00"), "{chart}");
        assert!(chart.contains("0.00"), "{chart}");
        // One star per column.
        assert_eq!(chart.matches('*').count(), 5);
    }

    #[test]
    fn chart_handles_degenerate_input() {
        assert_eq!(line_chart(&[], 10, 5), "");
        assert_eq!(line_chart(&[1.0], 0, 5), "");
        let flat = line_chart(&vec![0.7; 50], 20, 4);
        assert!(flat.matches('*').count() == 20, "{flat}");
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn downsample_preserves_mean() {
        let series: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = downsample(&series, 10);
        assert_eq!(d.len(), 10);
        let mean_orig = series.iter().sum::<f64>() / 1000.0;
        let mean_down = d.iter().sum::<f64>() / 10.0;
        assert!((mean_orig - mean_down).abs() < 1.0);
        // Short series pass through untouched.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn diurnal_series_paints_daily_bumps() {
        // 7 days of a daily square wave: the chart's top row should carry
        // several distinct bumps.
        let rpd = 131;
        let series: Vec<f64> =
            (0..7 * rpd).map(|i| if (i % rpd) < rpd / 3 { 0.9 } else { 0.3 }).collect();
        let chart = line_chart(&series, 70, 8);
        let top_row = chart.lines().next().unwrap();
        let groups = top_row.split(' ').filter(|s| s.contains('*')).count();
        assert!(groups >= 5, "expected distinct daily bumps, got {groups} in: {top_row}");
    }
}
