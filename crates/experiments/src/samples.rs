//! Figures 1–3 and 6: the paper's sample blocks.
//!
//! Three representative /24s, mirroring §3.1.1: a sparse but highly
//! available block with a mid-survey outage (Fig. 1), a dense low-
//! availability block (Fig. 2), and a diurnal block (Fig. 3, re-observed
//! over 35 days for Fig. 6). Each is surveyed for ground truth and probed
//! adaptively, and the report compares `Âs`/`Âo` to true `A` and shows the
//! spectrum.

use crate::common::{f, render_table, to_csv, Context, ExperimentOutput};
use sleepwatch_availability::cleaning::clean_series;
use sleepwatch_core::analyze_series;
use sleepwatch_probing::{survey_block, TrinocularConfig, TrinocularProber};
use sleepwatch_simnet::{BlockProfile, BlockSpec, ROUND_SECONDS, S51W_START};
use sleepwatch_spectral::{DiurnalConfig, Spectrum};
use sleepwatch_stats::pearson;

/// Fig. 1's block: 42 ever-active addresses, A ≈ 0.735, outage at round 957.
fn sparse_block(seed: u64) -> BlockSpec {
    let mut b = BlockSpec::bare(1_921, seed, BlockProfile::always_on(42, 0.735));
    b.hist_avail = 0.45; // deliberately stale start, as in the figure
    b.outage = Some((S51W_START + 957 * ROUND_SECONDS, S51W_START + 975 * ROUND_SECONDS));
    b
}

/// Fig. 2's block: |E(b)| = 245, A ≈ 0.191.
fn dense_block(seed: u64) -> BlockSpec {
    let mut b = BlockSpec::bare(93_208_233, seed, BlockProfile::always_on(245, 0.191));
    b.hist_avail = 0.25;
    b
}

/// Fig. 3's block: |E(b)| = 256, A ≈ 0.598, strongly diurnal (UTC+8).
fn diurnal_block(seed: u64) -> BlockSpec {
    BlockSpec::bare(
        27_186_009,
        seed,
        BlockProfile {
            n_stable: 100,
            n_diurnal: 156,
            stable_avail: 0.9,
            diurnal_avail: 0.9,
            onset_hours: 8.0,
            onset_spread: 1.5,
            duration_hours: 10.0,
            duration_spread: 1.0,
            sigma_start: 0.5,
            sigma_duration: 0.5,
            utc_offset_hours: 8.0,
        },
    )
}

/// Shared machinery: survey + adaptive probing of one block over `rounds`
/// from `start`, producing the Fig.-1-style comparison.
fn sample_figure(
    id: &'static str,
    title: &str,
    block: &BlockSpec,
    start: u64,
    rounds: u64,
) -> ExperimentOutput {
    let survey = survey_block(block, start, rounds);
    let truth = survey.availability_series();

    let mut prober = TrinocularProber::new(block, TrinocularConfig::default());
    let run = prober.run(block, start, rounds);
    let (a_short, _) =
        clean_series(&run.a_short_observations(), rounds as usize, start, ROUND_SECONDS);
    let (a_oper, _) =
        clean_series(&run.a_operational_observations(), rounds as usize, start, ROUND_SECONDS);

    let n = truth.len().min(a_short.len());
    let corr = pearson(&truth[..n], &a_short[..n]).unwrap_or(0.0);
    // Âo should not overestimate once past the stale start: skip warm-up.
    let warm = 200.min(n / 4);
    let under = (warm..n).filter(|&i| a_oper[i] <= truth[i] + 1e-9).count() as f64
        / (n - warm).max(1) as f64;

    let (diurnal, _) = analyze_series(&a_short[..n], &DiurnalConfig::default());
    let spectrum = Spectrum::compute_rounds(&a_short[..n]);
    let mut top: Vec<(usize, f64)> = spectrum.half_amplitudes().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    top.truncate(5);

    let outage_round = run.outages.first().map(|o| o.start_round);

    let mut rows = vec![
        vec!["ever-active |E(b)|".into(), survey.ever_count().to_string()],
        vec!["mean true A".into(), f(survey.mean_availability())],
        vec!["corr(Âs, A)".into(), f(corr)],
        vec!["P(Âo ≤ A) after warm-up".into(), f(under)],
        vec!["mean probes/round".into(), f(run.mean_probes_per_round())],
        vec!["probes/hour".into(), f(run.probes_per_hour())],
        vec!["diurnal class".into(), format!("{:?}", diurnal.class)],
        vec![
            "strongest bins (k, |α|)".into(),
            top.iter().map(|(k, a)| format!("{k}:{:.1}", a)).collect::<Vec<_>>().join(" "),
        ],
    ];
    if let Some(r) = outage_round {
        rows.push(vec!["outage detected at round".into(), r.to_string()]);
    }

    let mut report = render_table(title, &["metric", "value"], &rows);
    report.push_str("\ntrue A (top) vs Âs (bottom):\n");
    report.push_str(&crate::plot::line_chart(&truth[..n], 72, 7));
    report.push_str(&crate::plot::line_chart(&a_short[..n], 72, 7));
    let headline = vec![
        ("mean_A".to_string(), f(survey.mean_availability())),
        ("corr_as_a".to_string(), f(corr)),
        ("frac_ao_under".to_string(), f(under)),
        ("probes_per_round".to_string(), f(run.mean_probes_per_round())),
        ("class".to_string(), format!("{:?}", diurnal.class)),
        (
            "outage_round".to_string(),
            outage_round.map(|r| r.to_string()).unwrap_or_else(|| "none".into()),
        ),
    ];

    // CSV: the per-round comparison the paper plots.
    let probes_by_round: std::collections::HashMap<u64, u32> =
        run.records.iter().map(|r| (r.round, r.probes)).collect();
    let csv_rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            vec![
                i.to_string(),
                f(truth[i]),
                f(a_short[i]),
                f(a_oper[i]),
                probes_by_round.get(&(i as u64)).copied().unwrap_or(0).to_string(),
            ]
        })
        .collect();
    let csv = to_csv(&["round", "a_true", "a_short", "a_oper", "probes"], &csv_rows);

    ExperimentOutput { id, report, headline, csv }
}

/// Fig. 1: sparse, high-availability block with an outage.
pub fn fig1(ctx: &Context) -> ExperimentOutput {
    let rounds = 1_833; // 14 days
    sample_figure(
        "fig1",
        "Fig. 1 — sparse high-availability block (42 addrs, A≈0.735, outage @957)",
        &sparse_block(ctx.opts.seed),
        S51W_START,
        rounds,
    )
}

/// Fig. 2: dense, low-availability block.
pub fn fig2(ctx: &Context) -> ExperimentOutput {
    sample_figure(
        "fig2",
        "Fig. 2 — dense low-availability block (|E|=245, A≈0.191)",
        &dense_block(ctx.opts.seed),
        S51W_START,
        1_833,
    )
}

/// Fig. 3: diurnal block over the two-week survey.
pub fn fig3(ctx: &Context) -> ExperimentOutput {
    sample_figure(
        "fig3",
        "Fig. 3 — diurnal block (|E|=256, A≈0.598, 14 daily bumps)",
        &diurnal_block(ctx.opts.seed),
        S51W_START,
        1_833,
    )
}

/// Fig. 6: the Fig. 3 block observed for 35 days in the adaptive dataset;
/// the daily peak moves to k = N_d = 35 (≈34 after midnight trimming).
pub fn fig6(ctx: &Context) -> ExperimentOutput {
    let block = diurnal_block(ctx.opts.seed);
    let start = sleepwatch_simnet::A12W_START;
    let rounds = 4_582u64; // 35 days
    let mut prober = TrinocularProber::new(&block, TrinocularConfig::a12w());
    let run = prober.run(&block, start, rounds);
    let (series, _) =
        clean_series(&run.a_short_observations(), rounds as usize, start, ROUND_SECONDS);
    let spectrum = Spectrum::compute_rounds(&series);
    let nd = spectrum.diurnal_bin();
    let peak = spectrum.strongest_bin().unwrap_or(0);
    let (diurnal, _) = analyze_series(&series, &DiurnalConfig::default());

    let rows = vec![
        vec!["series length (rounds)".into(), series.len().to_string()],
        vec!["N_d (expected daily bin)".into(), nd.to_string()],
        vec!["strongest bin".into(), peak.to_string()],
        vec!["strongest bin cycles/day".into(), f(spectrum.cycles_per_day(peak))],
        vec!["|α| at daily bin".into(), f(spectrum.amplitude(nd))],
        vec!["class".into(), format!("{:?}", diurnal.class)],
    ];
    let report =
        render_table("Fig. 6 — 35-day spectrum of the diurnal block", &["metric", "value"], &rows);
    let headline = vec![
        ("nd".to_string(), nd.to_string()),
        ("peak_bin".to_string(), peak.to_string()),
        ("peak_cpd".to_string(), f(spectrum.cycles_per_day(peak))),
        ("class".to_string(), format!("{:?}", diurnal.class)),
    ];
    let csv_rows: Vec<Vec<String>> = spectrum
        .half_amplitudes()
        .take(200)
        .map(|(k, a)| vec![k.to_string(), f(spectrum.cycles_per_day(k)), f(a)])
        .collect();
    let csv = to_csv(&["k", "cycles_per_day", "amplitude"], &csv_rows);
    ExperimentOutput { id: "fig6", report, headline, csv }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Options;

    fn ctx() -> Context {
        Context::new(Options { out_dir: None, ..Default::default() })
    }

    #[test]
    fn fig1_tracks_sparse_block() {
        let out = fig1(&ctx());
        let corr: f64 = out.metric("corr_as_a").unwrap().parse().unwrap();
        assert!(corr > 0.0, "some positive tracking, got {corr}");
        let under: f64 = out.metric("frac_ao_under").unwrap().parse().unwrap();
        assert!(under > 0.85, "Âo must underestimate, got {under}");
        // EWMA smoothing reddens the noise spectrum, so a flat block can
        // land in the loose Relaxed class by chance — but never Strict.
        assert_ne!(out.metric("class").unwrap(), "Strict");
        // The injected outage is found near round 957.
        let r: u64 = out.metric("outage_round").unwrap().parse().unwrap();
        assert!((955..=962).contains(&r), "outage at {r}");
    }

    #[test]
    fn fig2_low_availability_needs_more_probes() {
        let out = fig2(&ctx());
        let probes: f64 = out.metric("probes_per_round").unwrap().parse().unwrap();
        assert!(probes > 3.0, "low-A block should cost probes, got {probes}");
        assert_ne!(out.metric("class").unwrap(), "Strict");
    }

    #[test]
    fn fig3_is_diurnal() {
        let out = fig3(&ctx());
        assert_eq!(out.metric("class").unwrap(), "Strict");
        let a: f64 = out.metric("mean_A").unwrap().parse().unwrap();
        assert!((a - 0.598).abs() < 0.08, "mean A {a}");
    }

    #[test]
    fn fig6_peak_at_daily_bin() {
        let out = fig6(&ctx());
        let nd: usize = out.metric("nd").unwrap().parse().unwrap();
        let peak: usize = out.metric("peak_bin").unwrap().parse().unwrap();
        assert!((33..=36).contains(&nd));
        assert!(peak.abs_diff(nd) <= 1, "peak {peak} vs nd {nd}");
    }
}
