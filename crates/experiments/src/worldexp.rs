//! World-scale experiments: Figs. 10–17 and Tables 2–5, all derived from
//! the shared 35-day `A12w`-style world run (plus a second vantage point
//! for Table 2 and a survey series over time for Fig. 11).

use crate::common::{f, render_table, to_csv, Context, ExperimentOutput};
use sleepwatch_core::{analyze_world, AnalysisConfig, WorldAnalysis};
use sleepwatch_geoecon::country::by_code;
use sleepwatch_probing::TrinocularConfig;
use sleepwatch_simnet::evolution::{propensity_scale_at, survey_calendar};
use sleepwatch_simnet::{World, WorldConfig};
use sleepwatch_stats::{linfit, spearman, wilson_interval, Histogram};

/// Fig. 10: CDF of the strongest frequency per block.
pub fn fig10(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let mut hist = Histogram::new(0.0, 12.0, 120);
    hist.extend(analysis.reports.iter().map(|r| r.summary.strongest_cpd));

    let frac_in = |lo: f64, hi: f64| {
        analysis.reports.iter().filter(|r| (lo..hi).contains(&r.summary.strongest_cpd)).count()
            as f64
            / analysis.len() as f64
    };
    let daily = frac_in(0.9, 1.15);
    let artifact = frac_in(4.1, 4.6);
    let (strict_n, strict_f) = analysis.strict_fraction();
    let (either_n, either_f) = analysis.diurnal_fraction();

    let cdf = hist.cdf();
    let rows: Vec<Vec<String>> = cdf.iter().step_by(5).map(|&(x, c)| vec![f(x), f(c)]).collect();
    let mut report = render_table(
        "Fig. 10 — CDF of strongest frequency (cycles/day)",
        &["cycles/day ≤", "CDF"],
        &rows,
    );
    report.push_str(&format!(
        "\npeak at 1 cycle/day: {:.1}% of blocks (paper: ~25%)\n\
         restart artifact near 4.36 cyc/day: {:.1}% (paper: ~3%)\n\
         strictly diurnal: {} ({:.1}%; paper: 11%)   strict-or-relaxed: {} ({:.1}%; paper: 25%)\n\
         stationary blocks: {:.1}% (paper: 80.3%)\n",
        100.0 * daily,
        100.0 * artifact,
        strict_n,
        100.0 * strict_f,
        either_n,
        100.0 * either_f,
        100.0 * analysis.stationary_fraction(),
    ));
    let headline = vec![
        ("frac_daily_peak".to_string(), f(daily)),
        ("frac_artifact".to_string(), f(artifact)),
        ("strict_frac".to_string(), f(strict_f)),
        ("either_frac".to_string(), f(either_f)),
        ("stationary_frac".to_string(), f(analysis.stationary_fraction())),
    ];
    let csv_rows: Vec<Vec<String>> = cdf.iter().map(|&(x, c)| vec![f(x), f(c)]).collect();
    let csv = to_csv(&["cycles_per_day", "cdf"], &csv_rows);
    ExperimentOutput { id: "fig10", report, headline, csv }
}

/// Rough unix time of a year-month (month-level precision is all Fig. 11
/// needs).
fn ym_unix(ym: sleepwatch_geoecon::YearMonth) -> u64 {
    const EPOCH_1983: u64 = 410_227_200; // 1983-01-01 00:00 UTC
    EPOCH_1983 + ym.months_since_epoch() as u64 * 2_629_746
}

/// Fig. 11: fraction of diurnal blocks across the long-term survey archive.
pub fn fig11(ctx: &Context) -> ExperimentOutput {
    let n_blocks = ctx.opts.scaled(400, 50);
    let calendar = survey_calendar();
    let reporter = sleepwatch_obs::Reporter::new("[fig11]");
    reporter.note(&format!("{} surveys × {} blocks…", calendar.len(), n_blocks));
    let mut rows = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, &(date, site)) in calendar.iter().enumerate() {
        let world = World::generate(WorldConfig {
            seed: ctx.opts.seed ^ (0x000F_1611_u64 + i as u64),
            num_blocks: n_blocks,
            start_time: ym_unix(date),
            span_days: 14.0,
            propensity_scale: propensity_scale_at(date),
            ..Default::default()
        });
        let cfg = AnalysisConfig::over_days(world.cfg.start_time, 14.0);
        let analysis = analyze_world(&world, &cfg, ctx.opts.threads, None);
        let (_, frac) = analysis.strict_fraction();
        rows.push(vec![date.to_string(), site.to_string(), f(frac)]);
        xs.push(date.months_since_epoch() as f64);
        ys.push(frac);
        reporter.report(i + 1, calendar.len());
    }
    // Decline after 2012?
    let m2012 = sleepwatch_geoecon::YearMonth::new(2012, 1).months_since_epoch() as f64;
    let late: Vec<usize> = (0..xs.len()).filter(|&i| xs[i] >= m2012).collect();
    let late_fit = linfit(
        &late.iter().map(|&i| xs[i]).collect::<Vec<_>>(),
        &late.iter().map(|&i| ys[i]).collect::<Vec<_>>(),
    );
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;

    let mut report = render_table(
        "Fig. 11 — fraction of diurnal blocks, long-term surveys 2009–2013",
        &["survey", "site", "frac diurnal"],
        &rows,
    );
    let late_slope = late_fit.map(|l| l.slope).unwrap_or(0.0);
    report.push_str(&format!(
        "\nmean fraction {:.3}; slope after 2012: {:+.5}/month (paper: marked decline)\n",
        mean, late_slope
    ));
    let headline =
        vec![("mean_frac".to_string(), f(mean)), ("post2012_slope".to_string(), f(late_slope))];
    let csv = to_csv(&["date", "site", "frac_diurnal"], &rows);
    ExperimentOutput { id: "fig11", report, headline, csv }
}

/// Renders a grid as an ASCII world map (lat rows top-down).
fn ascii_map(
    grid: &sleepwatch_stats::DensityGrid,
    normalize: Option<&sleepwatch_stats::DensityGrid>,
) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for iy in (0..grid.ny()).rev() {
        for ix in 0..grid.nx() {
            let c = grid.count(ix, iy);
            let ch = match normalize {
                // Fraction mode: cell value / reference cell value.
                Some(base) => {
                    let b = base.count(ix, iy);
                    if b == 0 {
                        b' '
                    } else {
                        let frac = c as f64 / b as f64;
                        SHADES[((frac * (SHADES.len() - 1) as f64).round() as usize)
                            .min(SHADES.len() - 1)]
                    }
                }
                None => {
                    if c == 0 {
                        b' '
                    } else {
                        let max = grid.max_count().max(1);
                        let level = ((c as f64).ln_1p() / (max as f64).ln_1p()
                            * (SHADES.len() - 1) as f64)
                            .round() as usize;
                        SHADES[level.clamp(1, SHADES.len() - 1)]
                    }
                }
            };
            out.push(ch as char);
        }
        out.push('\n');
    }
    out
}

fn grid_csv(
    all: &sleepwatch_stats::DensityGrid,
    diurnal: &sleepwatch_stats::DensityGrid,
) -> String {
    let mut rows = Vec::new();
    for (ix, iy, c) in all.nonzero() {
        let d = diurnal.count(ix, iy);
        rows.push(vec![
            f(all.x_center(ix)),
            f(all.y_center(iy)),
            c.to_string(),
            d.to_string(),
            f(d as f64 / c as f64),
        ]);
    }
    to_csv(&["lon", "lat", "blocks", "diurnal", "frac_diurnal"], &rows)
}

/// Fig. 12: where the observable blocks are.
pub fn fig12(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let (all, diurnal) = analysis.world_grids(2.0);
    let (coarse_all, _) = analysis.world_grids(4.0);
    let located: u64 = all.total();
    let mut report = format!(
        "== Fig. 12 — observable blocks per grid cell (log shading) ==\n{}",
        ascii_map(&coarse_all, None)
    );
    report.push_str(&format!(
        "geolocated blocks: {} of {} ({:.1}%; paper: 93%)\n",
        located,
        analysis.len(),
        100.0 * located as f64 / analysis.len() as f64
    ));
    let headline = vec![
        ("located".to_string(), located.to_string()),
        ("coverage".to_string(), f(located as f64 / analysis.len() as f64)),
    ];
    let csv = grid_csv(&all, &diurnal);
    ExperimentOutput { id: "fig12", report, headline, csv }
}

/// Fig. 13: the percentage of blocks per cell that are diurnal.
pub fn fig13(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let (all, diurnal) = analysis.world_grids(2.0);
    let (coarse_all, coarse_diurnal) = analysis.world_grids(4.0);
    let mut report = format!(
        "== Fig. 13 — percent of observable blocks that are diurnal ==\n{}",
        ascii_map(&coarse_diurnal, Some(&coarse_all))
    );
    // Contrast line: US vs CN cells.
    let frac_for = |code: &str| {
        let c = by_code(code).unwrap();
        let mut blocks = 0u64;
        let mut d = 0u64;
        for (ix, iy, n) in all.nonzero() {
            let lon = all.x_center(ix);
            let lat = all.y_center(iy);
            if (lon - c.lon).abs() < c.lon_spread * 1.5 && (lat - c.lat).abs() < c.lat_spread * 1.5
            {
                blocks += n;
                d += diurnal.count(ix, iy);
            }
        }
        d as f64 / blocks.max(1) as f64
    };
    let us = frac_for("US");
    let cn = frac_for("CN");
    report.push_str(&format!(
        "diurnal share near US centroid: {:.3}; near CN centroid: {:.3} (paper: US≈0.002, CN≈0.5)\n",
        us, cn
    ));
    let headline = vec![("us_frac".to_string(), f(us)), ("cn_frac".to_string(), f(cn))];
    let csv = grid_csv(&all, &diurnal);
    ExperimentOutput { id: "fig13", report, headline, csv }
}

/// Fig. 14: phase vs longitude.
pub fn fig14(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let r_strict = analysis.phase_longitude_correlation(false).unwrap_or(0.0);
    let r_relaxed = analysis.phase_longitude_correlation(true).unwrap_or(0.0);
    let predictor = analysis.phase_longitude_predictor(25);

    let rows: Vec<Vec<String>> = predictor
        .iter()
        .map(|&(phase, mean_lon, sd, n)| vec![f(phase), f(mean_lon), f(sd), n.to_string()])
        .collect();
    let mut report = render_table(
        "Fig. 14c — longitude predictor from phase (relaxed diurnal blocks)",
        &["phase (rad)", "mean lon (°)", "σ lon (°)", "blocks"],
        &rows,
    );
    report.push_str(&format!(
        "\n(a) unrolled phase vs longitude, strict:  r = {:.3} (paper: 0.835)\n\
         (b) unrolled phase vs longitude, relaxed: r = {:.3} (paper: 0.763)\n",
        r_strict, r_relaxed
    ));
    let headline =
        vec![("r_strict".to_string(), f(r_strict)), ("r_relaxed".to_string(), f(r_relaxed))];
    // CSV: the raw (lon, unrolled phase) pairs, capped.
    let pairs = analysis.phase_longitude_pairs(true);
    let csv_rows: Vec<Vec<String>> =
        pairs.iter().take(50_000).map(|&(lon, ph)| vec![f(lon), f(ph)]).collect();
    let csv = to_csv(&["longitude", "unrolled_phase"], &csv_rows);
    ExperimentOutput { id: "fig14", report, headline, csv }
}

/// Fig. 15: diurnal fraction vs /8 allocation month.
pub fn fig15(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let hist = analysis.allocation_histogram();
    let min_blocks = (analysis.len() / 500).max(5);
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .filter(|&&(_, n, _)| n >= min_blocks)
        .map(|&(ym, _, frac)| (ym.months_since_epoch() as f64, frac))
        .collect();
    let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let fit = linfit(&xs, &ys);
    let (slope_pct, r) = fit.map(|l| (l.slope * 100.0, l.r)).unwrap_or((0.0, 0.0));

    let rows: Vec<Vec<String>> = hist
        .iter()
        .filter(|&&(_, n, _)| n >= min_blocks)
        .map(|&(ym, n, frac)| vec![ym.to_string(), n.to_string(), f(frac)])
        .collect();
    let mut report = render_table(
        "Fig. 15 — percentage of diurnal blocks by /8 allocation month",
        &["alloc month", "blocks", "frac diurnal"],
        &rows,
    );
    report.push_str(&format!(
        "\nlinear fit: {:+.3} %/month, r = {:.3} (paper: +0.08 %/month, r = 0.609)\n",
        slope_pct, r
    ));
    let headline = vec![("slope_pct_per_month".to_string(), f(slope_pct)), ("r".to_string(), f(r))];
    let csv = to_csv(&["alloc_month", "blocks", "frac_diurnal"], &rows);
    ExperimentOutput { id: "fig15", report, headline, csv }
}

/// Fig. 16: country diurnal fraction vs per-capita GDP.
pub fn fig16(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let min_blocks = (analysis.len() / 2_000).max(5);
    let stats = analysis.country_stats(min_blocks);
    let xs: Vec<f64> = stats.iter().map(|s| s.gdp).collect();
    let ys: Vec<f64> = stats.iter().map(|s| s.frac_diurnal).collect();
    let fit = linfit(&xs, &ys);
    let r = fit.map(|l| l.r).unwrap_or(0.0);

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| vec![s.code.to_string(), f(s.gdp), f(s.frac_diurnal), s.blocks.to_string()])
        .collect();
    let mut report = render_table(
        "Fig. 16 — diurnalness vs per-capita GDP (all countries)",
        &["country", "GDP (US$)", "frac diurnal", "blocks"],
        &rows,
    );
    let rho = spearman(&xs, &ys).unwrap_or(0.0);
    report.push_str(&format!(
        "\ncorrelation r = {:.3} (paper: −0.526); Spearman ρ = {:.3} (robustness check)\n",
        r, rho
    ));
    let headline = vec![
        ("r".to_string(), f(r)),
        ("spearman".to_string(), f(rho)),
        ("countries".to_string(), stats.len().to_string()),
    ];
    let csv = to_csv(&["country", "gdp", "frac_diurnal", "blocks"], &rows);
    ExperimentOutput { id: "fig16", report, headline, csv }
}

/// Fig. 17: diurnal fraction per access-link keyword.
pub fn fig17(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let stats = analysis.link_stats();
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|&(feat, n, frac)| vec![feat.keyword().to_string(), n.to_string(), f(frac)])
        .collect();
    let mut report = render_table(
        "Fig. 17 — fraction of diurnal blocks per access keyword",
        &["keyword", "blocks", "frac diurnal"],
        &rows,
    );
    report.push_str(&format!(
        "\nclassified blocks: {:.1}% (paper: 22.4% after keyword filtering)\n\
         (paper shape: dynamic ≈19% > dsl ≈11% >> dialup <3%)\n",
        100.0 * analysis.link_coverage()
    ));
    let get = |kw: &str| {
        stats.iter().find(|(ft, _, _)| ft.keyword() == kw).map(|&(_, _, fr)| fr).unwrap_or(0.0)
    };
    let headline = vec![
        ("dyn".to_string(), f(get("dyn"))),
        ("dsl".to_string(), f(get("dsl"))),
        ("dial".to_string(), f(get("dial"))),
        ("coverage".to_string(), f(analysis.link_coverage())),
    ];
    let csv = to_csv(&["keyword", "blocks", "frac_diurnal"], &rows);
    ExperimentOutput { id: "fig17", report, headline, csv }
}

/// Table 2: stability across measurement sites (a second vantage point
/// observes the same world, offset by half a round — different packet
/// timing, same Internet).
pub fn table2(ctx: &Context) -> ExperimentOutput {
    let (world, first) = ctx.world_run();
    let mut cfg = AnalysisConfig::over_days(world.cfg.start_time + 330, Context::WORLD_DAYS);
    cfg.trinocular = TrinocularConfig::a12w();
    sleepwatch_obs::Reporter::new("[table2]").note("second vantage point…");
    let second = analyze_world(world, &cfg, ctx.opts.threads, None);

    // Cross-tab with the paper's overlapping categories: d (strict),
    // e (strict or relaxed), N (neither).
    let in_cat = |a: &WorldAnalysis, i: usize, cat: u8| -> bool {
        let c = a.reports[i].summary.class;
        match cat {
            0 => c.is_strict(),
            1 => c.is_diurnal(),
            _ => !c.is_diurnal(),
        }
    };
    let names = ["d", "e", "N"];
    let mut rows = Vec::new();
    let mut cells = [[0usize; 3]; 3];
    for (wi, w_cat) in names.iter().enumerate() {
        let mut row = vec![w_cat.to_string()];
        for (ji, cell) in cells[wi].iter_mut().enumerate() {
            let n = (0..first.len())
                .filter(|&i| in_cat(first, i, wi as u8) && in_cat(&second, i, ji as u8))
                .count();
            *cell = n;
            row.push(n.to_string());
        }
        rows.push(row);
    }
    let d_w = cells[0][0] + cells[0][2]; // strict at w, split by j
    let d_total: usize = (0..first.len()).filter(|&i| in_cat(first, i, 0)).count();
    let agree_strict = cells[0][0] as f64 / d_total.max(1) as f64;
    let agree_either = cells[0][1] as f64 / d_total.max(1) as f64;
    let _ = d_w;

    let mut report = render_table(
        "Table 2 — cross-site agreement (rows: site w, cols: site j)",
        &["w \\ j", "d", "e", "N"],
        &rows,
    );
    report.push_str(&format!(
        "\nof site-w diurnal blocks: {:.1}% strict at j, {:.1}% strict-or-relaxed at j\n\
         (paper: 85% strict, 98.8% either)\n",
        100.0 * agree_strict,
        100.0 * agree_either
    ));
    let headline = vec![
        ("agree_strict".to_string(), f(agree_strict)),
        ("agree_either".to_string(), f(agree_either)),
    ];
    let csv = to_csv(&["w_cat", "j_d", "j_e", "j_N"], &rows);
    ExperimentOutput { id: "table2", report, headline, csv }
}

/// Table 3: top-20 countries by diurnal fraction, plus the United States.
pub fn table3(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let min_blocks = (analysis.len() / 2_000).max(5);
    let stats = analysis.country_stats(min_blocks);
    let row_of = |s: &sleepwatch_core::CountryStat| {
        let (lo, hi) = wilson_interval(s.diurnal as u64, s.blocks as u64, 1.96);
        vec![
            s.code.to_string(),
            s.region.name().to_string(),
            s.blocks.to_string(),
            f(s.frac_diurnal),
            format!("[{:.3}, {:.3}]", lo, hi),
            format!("{:.0}", s.gdp),
        ]
    };
    let mut rows: Vec<Vec<String>> = stats.iter().take(20).map(row_of).collect();
    if let Some(us) = stats.iter().find(|s| s.code == "US") {
        rows.push(row_of(us));
    }
    let report = render_table(
        "Table 3 — fraction of diurnal blocks, top 20 countries (+US)",
        &["country", "region", "blocks", "frac diurnal", "95% CI", "GDP (US$)"],
        &rows,
    );
    let top = stats.first();
    let headline = vec![
        ("top_country".to_string(), top.map(|s| s.code.to_string()).unwrap_or_default()),
        ("top_frac".to_string(), top.map(|s| f(s.frac_diurnal)).unwrap_or_default()),
        (
            "us_frac".to_string(),
            stats.iter().find(|s| s.code == "US").map(|s| f(s.frac_diurnal)).unwrap_or_default(),
        ),
    ];
    let csv = to_csv(&["country", "region", "blocks", "frac_diurnal", "gdp"], &rows);
    ExperimentOutput { id: "table3", report, headline, csv }
}

/// Table 4: diurnal fraction by region.
pub fn table4(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let stats = analysis.region_stats();
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|&(region, n, frac)| vec![region.name().to_string(), n.to_string(), f(frac)])
        .collect();
    let report = render_table(
        "Table 4 — fraction of diurnal blocks by region (ascending)",
        &["region", "blocks", "frac diurnal"],
        &rows,
    );
    let bottom = stats.first().map(|&(r, _, fr)| (r.name(), fr));
    let top = stats.last().map(|&(r, _, fr)| (r.name(), fr));
    let headline = vec![
        ("least_diurnal".to_string(), bottom.map(|(n, _)| n.to_string()).unwrap_or_default()),
        ("least_frac".to_string(), bottom.map(|(_, x)| f(x)).unwrap_or_default()),
        ("most_diurnal".to_string(), top.map(|(n, _)| n.to_string()).unwrap_or_default()),
        ("most_frac".to_string(), top.map(|(_, x)| f(x)).unwrap_or_default()),
    ];
    let csv = to_csv(&["region", "blocks", "frac_diurnal"], &rows);
    ExperimentOutput { id: "table4", report, headline, csv }
}

/// Table 5: ANOVA of diurnal fraction against five factors, single and
/// pairwise.
pub fn table5(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let factors = analysis.anova_factors(5);
    let names: Vec<&str> = factors.factors.iter().map(|(n, _)| *n).collect();
    let k = names.len();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut headline = Vec::new();
    for i in 0..k {
        let mut row = vec![names[i].to_string()];
        for j in 0..k {
            let p = if i == j {
                factors.single_p(i).unwrap_or(f64::NAN)
            } else if i < j {
                factors.pair_p(i, j).unwrap_or(f64::NAN)
            } else {
                // Lower triangle mirrors the upper (interaction is
                // symmetric under our sequential ordering convention).
                factors.pair_p(j, i).unwrap_or(f64::NAN)
            };
            let mark = if p < 0.05 { "*" } else { "" };
            row.push(format!("{}{}", f(p), mark));
            csv_rows.push(vec![names[i].to_string(), names[j].to_string(), f(p)]);
            if i == j {
                headline.push((format!("p_{}", names[i]), f(p)));
            }
        }
        rows.push(row);
    }
    let header: Vec<&str> = std::iter::once("factor").chain(names.iter().copied()).collect();
    let mut report = render_table(
        "Table 5 — ANOVA p-values: diagonal = single factor, off-diagonal = interaction (* = p < 0.05)",
        &header,
        &rows,
    );
    report.push_str(&format!(
        "\ncountries: {} (paper found: gdp p=6.6e-8; electricity:age_mean p=1.5e-3; age_mean p=0.031)\n",
        factors.countries
    ));
    let csv = to_csv(&["factor_a", "factor_b", "p"], &csv_rows);
    ExperimentOutput { id: "table5", report, headline, csv }
}
