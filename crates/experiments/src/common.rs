//! Shared infrastructure for the experiment harness: options, the cached
//! world run, table rendering and CSV output.

use sleepwatch_core::{
    analyze_world_resumable_with_report, analyze_world_with_report, AnalysisConfig, WorldAnalysis,
};
use sleepwatch_obs::{Reporter, RunReport};
use sleepwatch_probing::TrinocularConfig;
use sleepwatch_simnet::{World, WorldConfig};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Output format for the `ext-dataset` artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DatasetFormat {
    /// TSV only (`results/ext-dataset.csv`), the paper's §2.5 shape.
    #[default]
    Tsv,
    /// TSV plus the compact seed-joined binary container
    /// (`results/ext-dataset.bin`).
    Bin,
}

/// Command-line options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Master seed.
    pub seed: u64,
    /// Scale multiplier on default population sizes (1.0 = defaults
    /// documented in DESIGN.md; the paper's full 3.7 M-block scale would be
    /// roughly `--scale 370`).
    pub scale: f64,
    /// Worker threads for world-scale analysis.
    pub threads: usize,
    /// Directory for CSV outputs (`None` disables writing).
    pub out_dir: Option<PathBuf>,
    /// Directory for the world-run checkpoint journal (`None` disables
    /// journaling). With a journal, an interrupted world run resumes from
    /// its completed blocks instead of starting over.
    pub journal: Option<PathBuf>,
    /// Dataset artifact format for `ext-dataset`.
    pub format: DatasetFormat,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 1,
            scale: 1.0,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            out_dir: Some(PathBuf::from("results")),
            journal: None,
            format: DatasetFormat::default(),
        }
    }
}

impl Options {
    /// Scales a default count, with a floor.
    pub fn scaled(&self, default: usize, min: usize) -> usize {
        ((default as f64 * self.scale) as usize).max(min)
    }
}

/// Result of one experiment: a rendered report plus machine-readable rows.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Identifier (e.g. `fig14`, `table5`).
    pub id: &'static str,
    /// Human-readable report, printed to stdout.
    pub report: String,
    /// Headline `(metric, value)` pairs for EXPERIMENTS.md bookkeeping.
    pub headline: Vec<(String, String)>,
    /// CSV body (with header row) written to `results/<id>.csv`.
    pub csv: String,
}

impl ExperimentOutput {
    /// Fetches a headline metric by name.
    pub fn metric(&self, name: &str) -> Option<&str> {
        self.headline.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Execution context: options plus the lazily shared world run (several
/// figures and tables read the same 35-day analysis).
pub struct Context {
    /// Options in effect.
    pub opts: Options,
    world_run: OnceLock<(World, WorldAnalysis)>,
    world_report: OnceLock<RunReport>,
    survey_study: OnceLock<crate::validation::SurveyStudy>,
}

impl Context {
    /// Creates a context.
    pub fn new(opts: Options) -> Self {
        Context {
            opts,
            world_run: OnceLock::new(),
            world_report: OnceLock::new(),
            survey_study: OnceLock::new(),
        }
    }

    /// The shared survey-vs-adaptive study (Figs. 4–5, Table 1).
    pub fn survey_study(&self) -> &crate::validation::SurveyStudy {
        self.survey_study.get_or_init(|| crate::validation::SurveyStudy::compute(self))
    }

    /// Default block count of the main world run at scale 1.0.
    pub const WORLD_BLOCKS: usize = 10_000;

    /// Observation span of the main world run, days (the paper's `A12w`).
    pub const WORLD_DAYS: f64 = 35.0;

    /// The shared `A12w`-style world run: synthesized once, probed once
    /// with the restart-afflicted prober, analyzed once.
    pub fn world_run(&self) -> &(World, WorldAnalysis) {
        self.world_run.get_or_init(|| {
            let world = World::generate(WorldConfig {
                seed: self.opts.seed,
                num_blocks: self.opts.scaled(Self::WORLD_BLOCKS, 200),
                span_days: Self::WORLD_DAYS,
                ..Default::default()
            });
            let mut cfg = AnalysisConfig::over_days(world.cfg.start_time, Self::WORLD_DAYS);
            cfg.trinocular = TrinocularConfig::a12w();
            let reporter = Reporter::new("[world]");
            reporter.note(&format!(
                "analyzing {} blocks over {} days…",
                world.blocks.len(),
                Self::WORLD_DAYS
            ));
            let progress = |done: usize, total: usize| reporter.report(done, total);
            let (analysis, report) = match &self.opts.journal {
                Some(dir) => {
                    // One journal per (seed, size) pair: a different run
                    // must never resume from this file.
                    let path = dir.join(format!(
                        "world-s{}-b{}.journal",
                        world.cfg.seed,
                        world.blocks.len()
                    ));
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        reporter.note(&format!(
                            "journal dir {} unusable ({e}); running without checkpoints",
                            dir.display()
                        ));
                        analyze_world_with_report(
                            &world,
                            &cfg,
                            self.opts.threads,
                            Some(&progress),
                            "world",
                        )
                    } else {
                        match analyze_world_resumable_with_report(
                            &world,
                            &cfg,
                            self.opts.threads,
                            &path,
                            Some(&progress),
                            "world",
                        ) {
                            Ok(pair) => pair,
                            Err(e) => {
                                reporter.note(&format!(
                                    "journal {} unusable ({e}); running without checkpoints",
                                    path.display()
                                ));
                                analyze_world_with_report(
                                    &world,
                                    &cfg,
                                    self.opts.threads,
                                    Some(&progress),
                                    "world",
                                )
                            }
                        }
                    }
                }
                None => analyze_world_with_report(
                    &world,
                    &cfg,
                    self.opts.threads,
                    Some(&progress),
                    "world",
                ),
            };
            // Memory telemetry (stderr only — never part of any golden
            // artifact): the largest per-worker scratch arena of the run.
            let peak = report.snapshot.counter("world.peak_block_bytes");
            if peak > 0 {
                reporter.note(&format!("peak per-worker scratch arena: {} KiB", peak / 1024));
            }
            let _ = self.world_report.set(report);
            (world, analysis)
        })
    }

    /// The [`RunReport`] of the shared world run, if it has been computed.
    pub fn world_report(&self) -> Option<&RunReport> {
        self.world_run();
        self.world_report.get()
    }
}

/// Renders an aligned text table: `header` row then `rows`, all columns
/// left-padded to the widest cell.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("== {title} ==\n");
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Builds a CSV string from a header and rows (naive quoting: fields are
/// numeric or simple identifiers throughout this harness).
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = header.join(",");
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    s
}

/// Formats an f64 compactly for tables.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() < 0.001 {
        format!("{x:.2e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_applies_floor() {
        let opts = Options { scale: 0.001, ..Default::default() };
        assert_eq!(opts.scaled(10_000, 200), 200);
        let big = Options { scale: 2.0, ..Default::default() };
        assert_eq!(big.scaled(100, 10), 200);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "demo",
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2.5".into()]],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_formatting() {
        let c = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12_345.6), "12346");
        assert_eq!(f(0.5), "0.5000");
        assert!(f(1e-9).contains('e'));
    }

    #[test]
    fn metric_lookup() {
        let o = ExperimentOutput {
            id: "x",
            report: String::new(),
            headline: vec![("r".into(), "0.9".into())],
            csv: String::new(),
        };
        assert_eq!(o.metric("r"), Some("0.9"));
        assert_eq!(o.metric("nope"), None);
    }
}
