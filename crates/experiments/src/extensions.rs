//! Beyond the paper's figures: the §3.2.4 campus ground-truth study and
//! the extensions the paper sketches (§2.3.2 per-organization analysis,
//! §5.2 phase→time-of-day, §5.6 applications, outage scoring).

use crate::common::{f, render_table, to_csv, Context, ExperimentOutput};
use sleepwatch_availability::cleaning::clean_series;
use sleepwatch_core::{
    analyze_series, estimate_size, peak_local_hour, timeofday::activity_pattern,
    timeofday::ActivityPattern, write_dataset,
};
use sleepwatch_geoecon::AsOrgMapper;
use sleepwatch_probing::{run_census, CensusConfig, TrinocularConfig, TrinocularProber};
use sleepwatch_simnet::{generate_campus, CampusConfig, ROUND_SECONDS};
use sleepwatch_spectral::{DiurnalClass, DiurnalConfig};
use std::collections::BTreeMap;

/// §3.2.4: the USC-style campus study — census bootstrap, policy
/// exclusions, and per-role detection outcomes.
pub fn usc(ctx: &Context) -> ExperimentOutput {
    let campus_cfg = CampusConfig { seed: ctx.opts.seed ^ 0x0055_5343, ..Default::default() };
    let campus = generate_campus(&campus_cfg);
    // Recent-activity screen: an address must answer at least twice across
    // the census to count toward E(b).
    let census_cfg = CensusConfig { min_responses: 2, ..Default::default() };
    let rounds = 4_582u64; // 35 days, like A12w
    let start = sleepwatch_simnet::A12W_START;

    #[derive(Default, Clone)]
    struct RoleAcc {
        total: usize,
        excluded: usize,
        strict: usize,
        relaxed: usize,
        non: usize,
    }
    let mut acc: BTreeMap<&'static str, RoleAcc> = BTreeMap::new();

    let reporter = sleepwatch_obs::Reporter::new("[usc]");
    reporter.note(&format!("{} campus blocks…", campus.len()));
    for (bi, (block, role)) in campus.iter().enumerate() {
        reporter.report(bi, campus.len());
        let a = acc.entry(role.label()).or_default();
        a.total += 1;
        let census = run_census(block, start, &census_cfg);
        let Some(mut prober) =
            TrinocularProber::from_census(block, &census, &census_cfg, TrinocularConfig::a12w())
        else {
            a.excluded += 1;
            continue;
        };
        let run = prober.run(block, start, rounds);
        let (series, _) =
            clean_series(&run.a_short_observations(), rounds as usize, start, ROUND_SECONDS);
        let (report, _) = analyze_series(&series, &DiurnalConfig::default());
        match report.class {
            DiurnalClass::Strict => a.strict += 1,
            DiurnalClass::Relaxed => a.relaxed += 1,
            DiurnalClass::NonDiurnal => a.non += 1,
        }
    }
    reporter.report(campus.len(), campus.len());

    let rows: Vec<Vec<String>> = acc
        .iter()
        .map(|(role, a)| {
            vec![
                role.to_string(),
                a.total.to_string(),
                a.excluded.to_string(),
                a.strict.to_string(),
                a.relaxed.to_string(),
                a.non.to_string(),
            ]
        })
        .collect();
    let mut report = render_table(
        "USC-style campus study (§3.2.4): census policy + detection per role",
        &["role", "blocks", "excluded (<15 active)", "strict", "relaxed", "non-diurnal"],
        &rows,
    );
    let wireless = &acc["wireless"];
    let dynamic = &acc["dynamic"];
    let pocket = &acc["general+pocket"];
    report.push_str(&format!(
        "\npaper: 119 of 142 wireless excluded by policy; probed wireless rarely detected;\n\
         dynamic pools detected; pockets of 16 dynamic addresses surface as diurnal in\n\
         otherwise general-use blocks. Here: {}/{} wireless excluded; {}/{} probed dynamic\n\
         blocks detected (strict or relaxed); {}/{} pocket blocks detected.\n",
        wireless.excluded,
        wireless.total,
        dynamic.strict + dynamic.relaxed,
        dynamic.total - dynamic.excluded,
        pocket.strict + pocket.relaxed,
        pocket.total - pocket.excluded,
    ));
    let headline = vec![
        ("wireless_excluded".to_string(), wireless.excluded.to_string()),
        ("wireless_total".to_string(), wireless.total.to_string()),
        (
            "dynamic_detected_frac".to_string(),
            f((dynamic.strict + dynamic.relaxed) as f64
                / (dynamic.total - dynamic.excluded).max(1) as f64),
        ),
        (
            "pocket_detected_frac".to_string(),
            f((pocket.strict + pocket.relaxed) as f64
                / (pocket.total - pocket.excluded).max(1) as f64),
        ),
        ("server_strict".to_string(), acc["server"].strict.to_string()),
    ];
    let csv = to_csv(&["role", "blocks", "excluded", "strict", "relaxed", "non"], &rows);
    ExperimentOutput { id: "usc", report, headline, csv }
}

/// §2.3.2 extension: the organization league table.
pub fn ext_orgs(ctx: &Context) -> ExperimentOutput {
    let (world, analysis) = ctx.world_run();
    let mapper = AsOrgMapper::cluster(&world.as_records);
    let min_blocks = (analysis.len() / 500).max(5);
    let orgs = analysis.organization_stats(&mapper, min_blocks);
    let rows: Vec<Vec<String>> = orgs
        .iter()
        .take(25)
        .map(|o| {
            vec![o.org.clone(), o.asns.len().to_string(), o.blocks.to_string(), f(o.frac_diurnal)]
        })
        .collect();
    let report = render_table(
        "Extension — diurnal fraction per organization (AS→org clustering)",
        &["organization", "ASes", "blocks", "frac diurnal"],
        &rows,
    );
    let headline = vec![
        ("orgs".to_string(), orgs.len().to_string()),
        ("top_org".to_string(), orgs.first().map(|o| o.org.clone()).unwrap_or_default()),
    ];
    let csv = to_csv(&["organization", "ases", "blocks", "frac_diurnal"], &rows);
    ExperimentOutput { id: "ext-orgs", report, headline, csv }
}

/// §5.6 extension: sizing the active Internet with diurnal-aware error
/// bars.
pub fn ext_size(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let e = estimate_size(analysis);
    let rows = vec![
        vec!["blocks".into(), e.blocks.to_string()],
        vec!["diurnal blocks".into(), e.diurnal_blocks.to_string()],
        vec!["mean active addresses".into(), format!("{:.0}", e.mean_active)],
        vec!["trough (all diurnal asleep)".into(), format!("{:.0}", e.trough_active)],
        vec!["peak (all diurnal awake)".into(), format!("{:.0}", e.peak_active)],
        vec!["one-shot snapshot uncertainty".into(), format!("{:.0}", e.snapshot_uncertainty())],
        vec!["relative uncertainty".into(), f(e.relative_uncertainty())],
    ];
    let report = render_table(
        "Extension — active-address population with diurnal-aware bounds (§5.6)",
        &["metric", "value"],
        &rows,
    );
    let headline = vec![
        ("mean_active".to_string(), format!("{:.0}", e.mean_active)),
        ("relative_uncertainty".to_string(), f(e.relative_uncertainty())),
    ];
    let csv = to_csv(&["metric", "value"], &rows);
    ExperimentOutput { id: "ext-size", report, headline, csv }
}

/// §5.2 extension: calibrating phase to local time of day.
pub fn ext_timeofday(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let mut buckets: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut hours = Vec::new();
    for r in &analysis.reports {
        let (Some(loc), Some(phase)) = (r.location, r.summary.phase) else { continue };
        if !r.summary.class.is_strict() {
            continue;
        }
        let local = peak_local_hour(phase, loc.lon);
        hours.push(local);
        let label = match activity_pattern(local) {
            ActivityPattern::Morning => "morning (06–12)",
            ActivityPattern::Afternoon => "afternoon (12–18)",
            ActivityPattern::Evening => "evening (18–24)",
            ActivityPattern::Night => "night (00–06)",
        };
        *buckets.entry(label).or_default() += 1;
    }
    let total: usize = buckets.values().sum();
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|(label, n)| {
            vec![label.to_string(), n.to_string(), f(*n as f64 / total.max(1) as f64)]
        })
        .collect();
    let daytime = hours.iter().filter(|&&h| (7.0..20.0).contains(&h)).count() as f64
        / hours.len().max(1) as f64;
    let mut report = render_table(
        "Extension — local time of the daily activity peak (phase calibration)",
        &["local peak window", "blocks", "share"],
        &rows,
    );
    report.push_str(&format!(
        "\n{:.1}% of diurnal blocks peak between 07:00 and 20:00 local — \
         human working hours, as §5.2 anticipates.\n",
        100.0 * daytime
    ));
    let headline = vec![
        ("daytime_share".to_string(), f(daytime)),
        ("blocks".to_string(), hours.len().to_string()),
    ];
    let csv = to_csv(&["window", "blocks", "share"], &rows);
    ExperimentOutput { id: "ext-timeofday", report, headline, csv }
}

/// Outage scoring: injected ground truth vs single-site Trinocular and vs
/// the two-site consensus (§3.3's extra vantage points put to work — a
/// block down from one site but fine from another is a path problem, not
/// an edge outage).
pub fn ext_outages(ctx: &Context) -> ExperimentOutput {
    use sleepwatch_probing::{merge_states, merged_outages};
    use sleepwatch_simnet::{World, WorldConfig};

    let n_blocks = ctx.opts.scaled(1_500, 150);
    let rounds = 1_833u64; // two weeks
    let world = World::generate(WorldConfig {
        seed: ctx.opts.seed ^ 0x0074_A9E5,
        num_blocks: n_blocks,
        span_days: 14.0,
        ..Default::default()
    });
    let reporter = sleepwatch_obs::Reporter::new("[ext-outages]");
    reporter.note(&format!("{} blocks × 2 sites…", n_blocks));

    #[derive(Default)]
    struct Score {
        tp: usize,
        fneg: usize,
        fp: usize,
    }
    impl Score {
        fn add(&mut self, injected: bool, detected: bool) {
            match (injected, detected) {
                (true, true) => self.tp += 1,
                (true, false) => self.fneg += 1,
                (false, true) => self.fp += 1,
                (false, false) => {}
            }
        }
        fn recall(&self) -> f64 {
            self.tp as f64 / (self.tp + self.fneg).max(1) as f64
        }
        fn precision(&self) -> f64 {
            self.tp as f64 / (self.tp + self.fp).max(1) as f64
        }
    }

    let mut single = Score::default();
    let mut consensus = Score::default();
    let mut injected_total = 0usize;
    for (bi, block) in world.blocks.iter().enumerate() {
        reporter.report(bi, world.blocks.len());
        let injected = block.outage.is_some();
        injected_total += injected as usize;
        let mut p1 = TrinocularProber::new(block, TrinocularConfig::default());
        let mut p2 = TrinocularProber::new(block, TrinocularConfig::default());
        let r1 = p1.run(block, world.cfg.start_time, rounds);
        // Site two probes each round 330 s later.
        let r2 = p2.run(block, world.cfg.start_time + 330, rounds);
        single.add(injected, !r1.outages.is_empty());
        let merged = merge_states(&[&r1, &r2], rounds);
        consensus.add(injected, !merged_outages(&merged).is_empty());
    }
    reporter.report(world.blocks.len(), world.blocks.len());

    let rows = vec![
        vec!["blocks with injected outage".into(), injected_total.to_string()],
        vec!["single-site recall".into(), f(single.recall())],
        vec!["single-site precision".into(), f(single.precision())],
        vec!["single-site false alarms".into(), single.fp.to_string()],
        vec!["consensus recall".into(), f(consensus.recall())],
        vec!["consensus precision".into(), f(consensus.precision())],
        vec!["consensus false alarms".into(), consensus.fp.to_string()],
    ];
    let mut report = render_table(
        "Extension — outage detection: one vantage point vs two-site consensus",
        &["metric", "value"],
        &rows,
    );
    report.push_str(
        "\n(remaining false alarms sit on diurnal blocks, where both sites see the\n\
         same nightly silence — the failure mode that motivated the paper; only\n\
         diurnal-awareness, not more vantage points, removes those)\n",
    );
    let headline = vec![
        ("single_recall".to_string(), f(single.recall())),
        ("single_precision".to_string(), f(single.precision())),
        ("consensus_recall".to_string(), f(consensus.recall())),
        ("consensus_precision".to_string(), f(consensus.precision())),
    ];
    let csv = to_csv(&["metric", "value"], &rows);
    ExperimentOutput { id: "ext-outages", report, headline, csv }
}

/// Publishes the world run as a TSV dataset, like the paper's public data
/// releases (§2.5). The "CSV" output slot carries the dataset itself.
pub fn ext_dataset(ctx: &Context) -> ExperimentOutput {
    let (_, analysis) = ctx.world_run();
    let mut buf = Vec::new();
    write_dataset(&mut buf, analysis).expect("writing to memory cannot fail");
    let tsv = String::from_utf8(buf).expect("dataset is ASCII");
    let preview: String = tsv.lines().take(6).collect::<Vec<_>>().join("\n");
    let report = format!(
        "== Extension — per-block dataset export (§2.5-style public data) ==\n\
         {} rows written; first lines:\n{}\n",
        analysis.len(),
        preview
    );
    let headline = vec![
        ("rows".to_string(), analysis.len().to_string()),
        ("bytes".to_string(), tsv.len().to_string()),
    ];
    ExperimentOutput { id: "ext-dataset", report, headline, csv: tsv }
}

/// Writes the compact binary twin of [`ext_dataset`]'s TSV artifact:
/// `<dir>/ext-dataset.bin`, seed-joined against the shared world run so
/// the seed-derivable columns cost nothing on disk. Returns the path
/// written.
pub fn write_dataset_bin(
    ctx: &Context,
    dir: &std::path::Path,
) -> Result<std::path::PathBuf, sleepwatch_core::ExportError> {
    let (world, analysis) = ctx.world_run();
    let path = dir.join("ext-dataset.bin");
    sleepwatch_core::write_dataset_bin_file(&path, analysis, Some(&world.cfg))?;
    Ok(path)
}

/// Robustness extension: does the daily classifier survive weekly
/// (weekend) periodicity? Real blocks carry a 7-day component the paper's
/// strict test must not mistake for — or be masked by — the daily line.
pub fn ext_weekend(ctx: &Context) -> ExperimentOutput {
    use sleepwatch_core::{analyze_block, AnalysisConfig};
    use sleepwatch_simnet::{BlockProfile, BlockSpec};

    let per = ctx.opts.scaled(40, 10) as u64;
    let analysis_cfg = AnalysisConfig::over_days(0, 28.0);
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for scale in [1.0, 0.8, 0.6, 0.4] {
        let mut detected = 0u64;
        let mut flat_strict = 0u64;
        for exp in 0..per {
            // A diurnal block whose weekends are also quieter.
            let mut b = BlockSpec::bare(
                exp,
                ctx.opts.seed ^ 0xEE7,
                BlockProfile {
                    n_stable: 40,
                    n_diurnal: 160,
                    stable_avail: 0.9,
                    diurnal_avail: 0.85,
                    onset_hours: 8.0,
                    onset_spread: 2.0,
                    duration_hours: 9.0,
                    duration_spread: 1.0,
                    sigma_start: 0.5,
                    sigma_duration: 0.5,
                    utc_offset_hours: 0.0,
                },
            );
            b.weekend_scale = scale;
            if analyze_block(&b, &analysis_cfg).diurnal.class.is_strict() {
                detected += 1;
            }
            // A flat block with ONLY the weekly pattern: must not read as
            // (daily) diurnal.
            let mut flat = BlockSpec::bare(
                exp + 10_000,
                ctx.opts.seed ^ 0xEE8,
                BlockProfile::always_on(150, 0.85),
            );
            flat.weekend_scale = scale;
            if analyze_block(&flat, &analysis_cfg).diurnal.class.is_strict() {
                flat_strict += 1;
            }
        }
        rows.push(vec![
            f(scale),
            f(detected as f64 / per as f64),
            f(flat_strict as f64 / per as f64),
        ]);
        headline.push((format!("det@{scale}"), f(detected as f64 / per as f64)));
        headline.push((format!("weekly_fp@{scale}"), f(flat_strict as f64 / per as f64)));
    }
    let mut report = render_table(
        "Extension — weekly (weekend) periodicity vs the daily classifier",
        &["weekend scale", "diurnal still detected", "weekly-only misread as daily"],
        &rows,
    );
    report.push_str(
        "\n(a weekly line is a non-harmonic competitor to the daily bin; the 2x\n\
         strict margin must tolerate mild weekend quieting without false daily calls)\n",
    );
    let csv = to_csv(&["weekend_scale", "detected", "weekly_false_daily"], &rows);
    ExperimentOutput { id: "ext-weekend", report, headline, csv }
}

/// §4's lease-cycle periodicity: blocks swept by a DHCP pool of period `p`
/// show spectral peaks at `24/p` cycles/day. The classifier must keep them
/// out of the strict class unless `p` is a day (and the 12-hour case lands
/// in the relaxed class via the first harmonic, as the paper's definition
/// allows).
pub fn ext_lease(ctx: &Context) -> ExperimentOutput {
    use sleepwatch_core::{analyze_block, AnalysisConfig};
    use sleepwatch_simnet::{BlockProfile, BlockSpec, LeaseParams};
    use sleepwatch_spectral::Spectrum;

    let per = ctx.opts.scaled(30, 8) as u64;
    let cfg = AnalysisConfig::over_days(0, 28.0);
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for period_h in [6.0, 8.0, 12.0, 24.0, 48.0] {
        let mut strict = 0u64;
        let mut relaxed = 0u64;
        let mut peak_cpd_sum = 0.0;
        for exp in 0..per {
            let mut b = BlockSpec::bare(
                exp,
                ctx.opts.seed ^ 0x1ea5e ^ (period_h as u64) << 8,
                BlockProfile {
                    n_stable: 30,
                    n_diurnal: 170,
                    stable_avail: 0.85,
                    diurnal_avail: 0.85,
                    onset_hours: 0.0,
                    onset_spread: 0.0,
                    duration_hours: 0.0,
                    duration_spread: 0.0,
                    sigma_start: 0.0,
                    sigma_duration: 0.0,
                    utc_offset_hours: 0.0,
                },
            );
            b.lease = Some(LeaseParams { period_hours: period_h, duty: 0.55 });
            let a = analyze_block(&b, &cfg);
            match a.diurnal.class {
                sleepwatch_spectral::DiurnalClass::Strict => strict += 1,
                sleepwatch_spectral::DiurnalClass::Relaxed => relaxed += 1,
                sleepwatch_spectral::DiurnalClass::NonDiurnal => {}
            }
            let spec = Spectrum::compute_rounds(&a.series);
            if let Some(k) = spec.strongest_bin() {
                peak_cpd_sum += spec.cycles_per_day(k);
            }
        }
        let mean_peak = peak_cpd_sum / per as f64;
        rows.push(vec![
            f(period_h),
            f(24.0 / period_h),
            f(mean_peak),
            f(strict as f64 / per as f64),
            f(relaxed as f64 / per as f64),
        ]);
        headline.push((format!("peak_cpd@{period_h}h"), f(mean_peak)));
        headline.push((format!("strict@{period_h}h"), f(strict as f64 / per as f64)));
    }
    let mut report = render_table(
        "Extension — DHCP lease-cycle periodicity (§4): peak location vs classification",
        &["lease period (h)", "expected cyc/day", "measured peak cyc/day", "strict", "relaxed"],
        &rows,
    );
    report.push_str(
        "\n(only the 24 h lease may be strict; 12 h lands at the first harmonic →\n\
         relaxed, per the paper's definition; others must stay non-diurnal)\n",
    );
    let csv = to_csv(&["period_h", "expected_cpd", "measured_cpd", "strict", "relaxed"], &rows);
    ExperimentOutput { id: "ext-lease", report, headline, csv }
}
