//! Ablation experiments for the design choices DESIGN.md calls out:
//! the separate-(p,t) EWMA vs the legacy direct-ratio EWMA (§2.1.2's
//! note), and the Trinocular per-round probe budget (§3.2.4's policy
//! trade-off).

use crate::common::{f, render_table, to_csv, Context, ExperimentOutput};
use sleepwatch_availability::cleaning::clean_series;
use sleepwatch_availability::{AvailabilityEstimator, DirectEwmaEstimator, EwmaConfig};
use sleepwatch_core::analyze_series;
use sleepwatch_probing::{TrinocularConfig, TrinocularProber};
use sleepwatch_simnet::{BlockProfile, BlockSpec, ROUND_SECONDS};
use sleepwatch_spectral::{acf_diurnal, AcfConfig, DiurnalConfig, LombScargle};

/// Ablation: paper estimator vs direct-ratio EWMA under adaptive probing
/// bias, across true availability levels.
pub fn ablate_ewma(ctx: &Context) -> ExperimentOutput {
    let rounds = ctx.opts.scaled(4_000, 1_000) as u64;
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for truth_target in [0.15, 0.3, 0.5, 0.7, 0.9] {
        let block = BlockSpec::bare(
            (truth_target * 100.0) as u64,
            ctx.opts.seed ^ 0xE3A,
            BlockProfile::always_on(180, truth_target),
        );
        let truth = block.true_availability(0);
        let mut prober = TrinocularProber::new(&block, TrinocularConfig::default());
        let mut paper = AvailabilityEstimator::new(truth, EwmaConfig::default());
        let mut direct = DirectEwmaEstimator::new(truth, 0.1);
        let mut sum_paper = 0.0;
        let mut sum_direct = 0.0;
        let mut n = 0.0;
        for r in 0..rounds {
            if let Some(rec) = prober.round(&block, r, r * 660) {
                paper.observe(rec.positives, rec.probes);
                direct.observe(rec.positives, rec.probes);
                if r > rounds / 4 {
                    sum_paper += paper.a_short();
                    sum_direct += direct.a();
                    n += 1.0;
                }
            }
        }
        let bias_paper = sum_paper / n - truth;
        let bias_direct = sum_direct / n - truth;
        rows.push(vec![f(truth), f(bias_paper), f(bias_direct)]);
        headline.push((format!("paper_bias@{truth_target}"), f(bias_paper)));
        headline.push((format!("direct_bias@{truth_target}"), f(bias_direct)));
    }
    let mut report = render_table(
        "Ablation — estimator bias under stop-on-first-positive probing",
        &["true A", "bias: separate (p,t) EWMA", "bias: direct ratio EWMA"],
        &rows,
    );
    report.push_str("\n(§2.1.2: the direct variant consistently over-estimates)\n");
    let csv = to_csv(&["true_a", "bias_paper", "bias_direct"], &rows);
    ExperimentOutput { id: "ablate-ewma", report, headline, csv }
}

/// Ablation: probe budget per round vs estimator error and probing cost.
pub fn ablate_probes(ctx: &Context) -> ExperimentOutput {
    let rounds = ctx.opts.scaled(3_000, 800) as u64;
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for max_probes in [1u32, 2, 3, 5, 8, 15] {
        let block = BlockSpec::bare(
            max_probes as u64,
            ctx.opts.seed ^ 0xAB9,
            BlockProfile::always_on(150, 0.35),
        );
        let truth = block.true_availability(0);
        let cfg = TrinocularConfig { max_probes_per_round: max_probes, ..Default::default() };
        let mut prober = TrinocularProber::new(&block, cfg);
        let mut se = 0.0;
        let mut n = 0.0;
        for r in 0..rounds {
            if let Some(rec) = prober.round(&block, r, r * 660) {
                if r > rounds / 4 {
                    let err = rec.a_short - truth;
                    se += err * err;
                    n += 1.0;
                }
            }
        }
        let rmse = (se / n).sqrt();
        let pph = prober.total_probes() as f64 / (rounds as f64 * 660.0 / 3_600.0);
        let unknown_free = prober.outages().is_empty();
        rows.push(vec![
            max_probes.to_string(),
            f(rmse),
            f(pph),
            if unknown_free { "yes".into() } else { "no".into() },
        ]);
        headline.push((format!("rmse@{max_probes}"), f(rmse)));
        headline.push((format!("pph@{max_probes}"), f(pph)));
    }
    let mut report = render_table(
        "Ablation — probes/round budget: estimator error vs probing cost (A≈0.35)",
        &["max probes", "RMSE(Âs)", "probes/hour", "no false outage"],
        &rows,
    );
    report.push_str(
        "\n(§3.2.4: the 15-probe budget keeps cost <20 probes/hour while bounding error)\n",
    );
    let csv = to_csv(&["max_probes", "rmse", "probes_per_hour"], &rows);
    ExperimentOutput { id: "ablate-probes", report, headline, csv }
}

/// Ablation: the paper's clean-then-FFT pipeline vs a Lomb–Scargle
/// periodogram that consumes the gappy observations directly, as the
/// missing-data fraction grows.
pub fn ablate_gaps(ctx: &Context) -> ExperimentOutput {
    let per = ctx.opts.scaled(25, 8) as u64;
    let rounds = 917u64; // one week: a weaker signal exposes the contrast
    let diurnal_profile = BlockProfile {
        n_stable: 130,
        n_diurnal: 45,
        stable_avail: 0.9,
        diurnal_avail: 0.85,
        onset_hours: 8.0,
        onset_spread: 2.0,
        duration_hours: 9.0,
        duration_spread: 1.0,
        sigma_start: 0.5,
        sigma_duration: 0.5,
        utc_offset_hours: 0.0,
    };
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for loss in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let mut fft_hits = 0u64;
        let mut ls_hits = 0u64;
        for exp in 0..per {
            let block = BlockSpec::bare(exp, ctx.opts.seed ^ 0x6a95, diurnal_profile);
            // Heavy observation loss: every round is a restart candidate.
            let cfg = TrinocularConfig {
                restart_interval_rounds: Some(1),
                restart_loss_chance: loss,
                restart_negative_chance: 0.0,
                ..Default::default()
            };
            let mut prober = TrinocularProber::new(&block, cfg);
            let run = prober.run(&block, 0, rounds);

            // Paper path: clean to a dense series, FFT, strict test.
            let (series, _) =
                clean_series(&run.a_short_observations(), rounds as usize, 0, ROUND_SECONDS);
            let (rep, _) = analyze_series(&series, &DiurnalConfig::default());
            if rep.class.is_strict() {
                fft_hits += 1;
            }

            // Lomb–Scargle path: gappy observations, no repair.
            let samples: Vec<(f64, f64)> = run
                .records
                .iter()
                .map(|rec| (rec.round as f64 * ROUND_SECONDS as f64, rec.a_short))
                .collect();
            let ls = LombScargle::compute(&samples, 0.2, 6.0, 240);
            if ls.is_diurnal(0.08, 8.0) {
                ls_hits += 1;
            }
        }
        rows.push(vec![f(loss), f(fft_hits as f64 / per as f64), f(ls_hits as f64 / per as f64)]);
        headline.push((format!("fft@{loss}"), f(fft_hits as f64 / per as f64)));
        headline.push((format!("ls@{loss}"), f(ls_hits as f64 / per as f64)));
    }
    let mut report = render_table(
        "Ablation — missing observations: clean+FFT vs Lomb–Scargle detection",
        &["loss fraction", "clean+FFT strict", "Lomb–Scargle diurnal"],
        &rows,
    );
    report.push_str(
        "\n(§2.2 cleans because the FFT needs even sampling; Lomb–Scargle skips the\n\
         repair and degrades more gracefully under heavy loss)\n",
    );
    let csv = to_csv(&["loss", "fft_detect", "ls_detect"], &rows);
    ExperimentOutput { id: "ablate-gaps", report, headline, csv }
}

/// Ablation: the paper's frequency-domain strict rule vs a time-domain
/// autocorrelation detector, across signal quality and confounders.
pub fn ablate_acf(ctx: &Context) -> ExperimentOutput {
    use sleepwatch_core::analyze_block;
    use sleepwatch_core::AnalysisConfig;
    use sleepwatch_simnet::LeaseParams;

    let per = ctx.opts.scaled(30, 10) as u64;
    let cfg = AnalysisConfig::over_days(0, 14.0);
    let acf_cfg = AcfConfig::default();

    // Scenario builders: (name, make block, is truly diurnal).
    type Maker = Box<dyn Fn(u64) -> BlockSpec>;
    let scenarios: Vec<(&str, Maker, bool)> = vec![
        (
            "clean diurnal",
            Box::new(|e| {
                BlockSpec::bare(
                    e,
                    0xACF1,
                    BlockProfile {
                        n_stable: 40,
                        n_diurnal: 160,
                        stable_avail: 0.9,
                        diurnal_avail: 0.85,
                        onset_hours: 8.0,
                        onset_spread: 2.0,
                        duration_hours: 9.0,
                        duration_spread: 1.0,
                        sigma_start: 0.5,
                        sigma_duration: 0.5,
                        utc_offset_hours: 0.0,
                    },
                )
            }),
            true,
        ),
        (
            "noisy minority diurnal",
            Box::new(|e| {
                BlockSpec::bare(
                    e,
                    0xACF2,
                    BlockProfile {
                        n_stable: 140,
                        n_diurnal: 50,
                        stable_avail: 0.7,
                        diurnal_avail: 0.8,
                        onset_hours: 8.0,
                        onset_spread: 3.0,
                        duration_hours: 9.0,
                        duration_spread: 2.0,
                        sigma_start: 1.0,
                        sigma_duration: 1.5,
                        utc_offset_hours: 0.0,
                    },
                )
            }),
            true,
        ),
        (
            "flat",
            Box::new(|e| BlockSpec::bare(e, 0xACF3, BlockProfile::always_on(150, 0.7))),
            false,
        ),
        (
            "8h lease cycle",
            Box::new(|e| {
                let mut b = BlockSpec::bare(
                    e,
                    0xACF4,
                    BlockProfile {
                        n_stable: 30,
                        n_diurnal: 170,
                        stable_avail: 0.85,
                        diurnal_avail: 0.85,
                        onset_hours: 0.0,
                        onset_spread: 0.0,
                        duration_hours: 0.0,
                        duration_spread: 0.0,
                        sigma_start: 0.0,
                        sigma_duration: 0.0,
                        utc_offset_hours: 0.0,
                    },
                );
                b.lease = Some(LeaseParams { period_hours: 8.0, duty: 0.55 });
                b
            }),
            false,
        ),
    ];

    let mut rows = Vec::new();
    let mut headline = Vec::new();
    for (name, make, truly_diurnal) in &scenarios {
        let mut fft = 0u64;
        let mut acf = 0u64;
        for e in 0..per {
            let block = make(e);
            let analysis = analyze_block(&block, &cfg);
            if analysis.diurnal.class.is_strict() {
                fft += 1;
            }
            if acf_diurnal(&analysis.series, &acf_cfg).diurnal {
                acf += 1;
            }
        }
        rows.push(vec![
            name.to_string(),
            if *truly_diurnal { "yes" } else { "no" }.into(),
            f(fft as f64 / per as f64),
            f(acf as f64 / per as f64),
        ]);
        headline.push((format!("fft@{}", name.replace(' ', "_")), f(fft as f64 / per as f64)));
        headline.push((format!("acf@{}", name.replace(' ', "_")), f(acf as f64 / per as f64)));
    }
    let mut report = render_table(
        "Ablation — FFT strict rule vs time-domain ACF detector",
        &["scenario", "truly diurnal", "FFT detects", "ACF detects"],
        &rows,
    );
    report.push_str(
        "\n(both must accept real diurnal blocks and reject flat and non-daily\n\
         lease periodicity; disagreements mark each method's blind spots)\n",
    );
    let csv = to_csv(&["scenario", "truly_diurnal", "fft", "acf"], &rows);
    ExperimentOutput { id: "ablate-acf", report, headline, csv }
}

/// Ablation: §2.2 trims series to whole days "to reduce noise in FFT
/// analysis of diurnal frequencies". Quantify it: classify identical runs
/// with and without the midnight trim, across measurement start offsets.
pub fn ablate_trim(ctx: &Context) -> ExperimentOutput {
    use sleepwatch_availability::cleaning::{bucket_rounds, fill_gaps, midnight_trim};
    use sleepwatch_core::analyze_series;

    let per = ctx.opts.scaled(25, 8) as u64;
    let rounds = 1_900u64; // a partial extra day past two weeks
    let profile = BlockProfile {
        n_stable: 120,
        n_diurnal: 60,
        stable_avail: 0.8,
        diurnal_avail: 0.85,
        onset_hours: 8.0,
        onset_spread: 2.0,
        duration_hours: 9.0,
        duration_spread: 1.0,
        sigma_start: 0.8,
        sigma_duration: 1.0,
        utc_offset_hours: 0.0,
    };
    let mut rows = Vec::new();
    let mut headline = Vec::new();
    // Start mid-afternoon vs near midnight: partial edge days differ.
    for (label, start) in
        [("17:18 start", 62_280u64), ("23:50 start", 85_800u64), ("midnight start", 0u64)]
    {
        let mut trimmed_hits = 0u64;
        let mut raw_hits = 0u64;
        for exp in 0..per {
            let block = BlockSpec::bare(exp, ctx.opts.seed ^ 0x7219, profile);
            let mut prober = TrinocularProber::new(&block, TrinocularConfig::default());
            let run = prober.run(&block, start, rounds);
            let sparse = bucket_rounds(&run.a_short_observations(), rounds as usize);
            let (dense, _) = fill_gaps(&sparse);

            // Paper path: trim to whole days.
            let range = midnight_trim(start, rounds as usize, ROUND_SECONDS);
            let (rep_t, _) = analyze_series(&dense[range], &DiurnalConfig::default());
            if rep_t.class.is_strict() {
                trimmed_hits += 1;
            }
            // Untrimmed path: partial edge days stay in.
            let (rep_r, _) = analyze_series(&dense, &DiurnalConfig::default());
            if rep_r.class.is_strict() {
                raw_hits += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            f(trimmed_hits as f64 / per as f64),
            f(raw_hits as f64 / per as f64),
        ]);
        headline.push((
            format!("trim@{}", label.split(' ').next().unwrap_or(label)),
            f(trimmed_hits as f64 / per as f64),
        ));
        headline.push((
            format!("raw@{}", label.split(' ').next().unwrap_or(label)),
            f(raw_hits as f64 / per as f64),
        ));
    }
    let mut report = render_table(
        "Ablation — midnight trimming (§2.2) vs classifying the raw span",
        &["measurement start", "trimmed detection", "untrimmed detection"],
        &rows,
    );
    report.push_str(
        "\n(partial edge days smear energy out of the N_d bin; trimming to whole\n\
         days keeps the daily line sharp regardless of when collection began)\n",
    );
    let csv = to_csv(&["start", "trimmed", "raw"], &rows);
    ExperimentOutput { id: "ablate-trim", report, headline, csv }
}
