//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [OPTIONS] <ID>...
//!   <ID>            fig1..fig17, table1..table5, ablate-ewma,
//!                   ablate-strict, ablate-probes, or `all`
//!   --seed <N>      world seed (default 1)
//!   --scale <X>     population scale multiplier (default 1.0)
//!   --threads <N>   worker threads (default: available parallelism)
//!   --out <DIR>     CSV output directory (default: results; `-` disables)
//!   --journal <DIR> checkpoint the shared world run to DIR and resume
//!                   from an earlier interrupted run's journal
//!   --format <F>    dataset artifact format: tsv (default) or bin, which
//!                   also writes `ext-dataset.bin` (compact seed-joined
//!                   binary) next to the TSV
//!   --list          print all experiment ids
//! ```

use sleepwatch_experiments::extensions::write_dataset_bin;
use sleepwatch_experiments::{run, Context, DatasetFormat, Options, ALL_IDS};
use sleepwatch_obs::{RunReport, Snapshot};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--seed N] [--scale X] [--threads N] [--out DIR] [--journal DIR] \
         [--format tsv|bin] [--list] <ID|all>..."
    );
    std::process::exit(2);
}

/// Reports exactly which flag was malformed, then exits: `--seed x` and
/// `--threads x` must not fall into the same generic usage message.
fn bad_flag(flag: &str, value: Option<&str>) -> ! {
    match value {
        Some(v) => eprintln!("error: invalid value {v:?} for {flag}"),
        None => eprintln!("error: {flag} requires a value"),
    }
    std::process::exit(2);
}

/// Parses the value of `flag`, naming the flag in any error.
fn parse_flag<T: std::str::FromStr>(flag: &str, args: &mut impl Iterator<Item = String>) -> T {
    let Some(raw) = args.next() else { bad_flag(flag, None) };
    match raw.parse() {
        Ok(v) => v,
        Err(_) => bad_flag(flag, Some(&raw)),
    }
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => opts.seed = parse_flag("--seed", &mut args),
            "--scale" => opts.scale = parse_flag("--scale", &mut args),
            "--threads" => opts.threads = parse_flag("--threads", &mut args),
            "--out" => {
                let Some(dir) = args.next() else { bad_flag("--out", None) };
                opts.out_dir = if dir == "-" { None } else { Some(dir.into()) };
            }
            "--journal" => {
                let Some(dir) = args.next() else { bad_flag("--journal", None) };
                opts.journal = Some(dir.into());
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("tsv") => DatasetFormat::Tsv,
                    Some("bin") => DatasetFormat::Bin,
                    Some(v) => bad_flag("--format", Some(v)),
                    None => bad_flag("--format", None),
                }
            }
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other}");
                usage();
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    let ctx = Context::new(opts);
    let mut failed = false;
    for id in &ids {
        let start = std::time::Instant::now();
        let before = Snapshot::capture(sleepwatch_obs::global());
        match run(id, &ctx) {
            Some(out) => {
                println!("{}", out.report);
                if !out.headline.is_empty() {
                    let parts: Vec<String> =
                        out.headline.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    println!("[{}] {}", out.id, parts.join("  "));
                }
                println!("[{}] done in {:.1?}\n", out.id, start.elapsed());
                if let Some(dir) = &ctx.opts.out_dir {
                    if let Err(e) = std::fs::create_dir_all(dir)
                        .and_then(|_| std::fs::write(dir.join(format!("{}.csv", out.id)), &out.csv))
                    {
                        eprintln!("[{}] could not write CSV: {e}", out.id);
                        failed = true;
                    }
                    if out.id == "ext-dataset" && ctx.opts.format == DatasetFormat::Bin {
                        match write_dataset_bin(&ctx, dir) {
                            Ok(path) => println!("[{}] binary dataset: {}", out.id, path.display()),
                            Err(e) => {
                                eprintln!("[{}] could not write binary dataset: {e}", out.id);
                                failed = true;
                            }
                        }
                    }
                    // Observability artifact: the run's metric activity
                    // (snapshot delta) next to its CSV. Shared-world cost
                    // lands in whichever experiment triggered the run.
                    let report = RunReport {
                        label: out.id.to_string(),
                        threads: ctx.opts.threads,
                        wall_seconds: start.elapsed().as_secs_f64(),
                        snapshot: Snapshot::capture(sleepwatch_obs::global()).delta(&before),
                    };
                    if let Err(e) =
                        std::fs::write(dir.join(format!("{}.report.tsv", out.id)), report.to_tsv())
                    {
                        eprintln!("[{}] could not write report: {e}", out.id);
                        failed = true;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
